"""Camouflage: memory traffic shaping to mitigate timing attacks.

A full reproduction of Zhou, Wagh, Mittal & Wentzlaff (HPCA 2017):
the Camouflage bin-based request/response traffic shapers, every
baseline the paper compares against (FR-FCFS, constant-rate shaping,
temporal partitioning, fixed service with bank partitioning), and the
complete simulation substrate they run on — a DDR3 DRAM model, a
shared memory controller, private cache hierarchies, a shared NoC and
trace-driven out-of-order cores.

Quick start::

    from repro import SystemBuilder, RequestShapingPlan, BinConfiguration
    from repro.workloads import make_trace

    builder = SystemBuilder(seed=1)
    builder.add_core(
        make_trace("mcf", 2000),
        request_shaping=RequestShapingPlan(
            config=BinConfiguration((8, 8, 8, 8, 4, 4, 2, 2, 1, 1))
        ),
    )
    report = builder.build().run(20_000)
    print(report.summary_lines())

See DESIGN.md for the system inventory and the per-figure experiment
index, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core.bins import (
    BinConfiguration,
    BinSpec,
    constant_rate_config,
    uniform_config,
)
from repro.core.distribution import InterArrivalHistogram
from repro.sim.stats import CoreStats, SystemReport
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    System,
    SystemBuilder,
)

__version__ = "1.0.0"

__all__ = [
    "BinConfiguration",
    "BinSpec",
    "CoreStats",
    "InterArrivalHistogram",
    "RequestShapingPlan",
    "ResponseShapingPlan",
    "System",
    "SystemBuilder",
    "SystemReport",
    "constant_rate_config",
    "uniform_config",
    "__version__",
]

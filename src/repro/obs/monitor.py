"""Live shaping monitor: running TVD/MI over the shaped streams.

The paper's guarantee is distributional: the post-shaper stream must
follow the configured bin distribution regardless of what the program
does.  End-of-run aggregates can hide a mid-run excursion (a window
where the shaper tracked the intrinsic stream and leaked); this
monitor evaluates the guarantee *while the run is going*, at fixed
cycle checkpoints, from the same intrinsic/shaped inter-arrival
histograms the shapers already maintain:

* ``tvd_target`` — total-variation distance between the shaped
  distribution and the configured target.  This is the guarantee
  itself: once enough releases have been observed, a value above the
  threshold is flagged as a :class:`ShapingViolation`.
* ``tvd_intrinsic`` — TVD between intrinsic and shaped distributions
  (how much work the shaper is doing; ~0 means the shaped stream just
  mirrors the program).
* ``mi_bits`` — plug-in mutual information between the paired
  intrinsic and shaped inter-arrival bin sequences over a sliding
  window (the section IV-B leakage estimate, evaluated online).

Checkpoints use the same advance/fill discipline as the interval
sampler, so the history and violation stream are identical under the
per-cycle and next-event engines (histograms only change inside
``tick``, never across a skipped span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import CATEGORY_MONITOR
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # import-leaf discipline: repro.obs must not pull
    # the simulator stack in at import time (components import the
    # tracer, and cycles would follow); heavyweight deps load lazily.
    from repro.core.distribution import InterArrivalHistogram


@dataclass(frozen=True)
class ShapingViolation:
    """One checkpoint at which a shaped stream broke its guarantee."""

    cycle: int
    core_id: int
    direction: str
    tvd_target: float
    threshold: float
    events_observed: int


@dataclass(frozen=True)
class DegradedMode:
    """One graceful-degradation activation, flagged live.

    The resilience contract (docs/resilience.md): when a component
    exhausts a budget it falls back to a *safe* policy — e.g. the
    shaper dropping randomized jitter for strict constant-rate release
    once its jitter budget runs out — and the fallback is recorded
    here, never applied silently.  ``reason`` is a stable machine key
    (``"jitter_budget_exhausted"``, ...); ``detail`` is human prose.
    """

    cycle: int
    core_id: int
    direction: str
    reason: str
    detail: str


@dataclass(frozen=True)
class MonitorSample:
    """One checkpoint's estimates for one monitored stream."""

    cycle: int
    core_id: int
    direction: str
    events_observed: int
    tvd_target: Optional[float]
    tvd_intrinsic: float
    mi_bits: float


class _WatchedStream:
    """One (core, direction) pair under observation."""

    __slots__ = ("core_id", "direction", "intrinsic", "shaped", "target")

    def __init__(
        self,
        core_id: int,
        direction: str,
        intrinsic: "InterArrivalHistogram",
        shaped: "InterArrivalHistogram",
        target: Optional[Tuple[float, ...]],
    ) -> None:
        self.core_id = core_id
        self.direction = direction
        self.intrinsic = intrinsic
        self.shaped = shaped
        self.target = target


class ShapingMonitor:
    """Periodic TVD/MI checkpoints with mid-run violation flagging."""

    def __init__(
        self,
        interval: int = 2048,
        tvd_threshold: float = 0.25,
        min_events: int = 32,
        mi_window: int = 4096,
        tracer=NULL_TRACER,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("monitor interval must be positive")
        if not 0.0 <= tvd_threshold <= 1.0:
            raise ConfigurationError("tvd_threshold must be in [0, 1]")
        if min_events < 1:
            raise ConfigurationError("min_events must be at least 1")
        if mi_window < 2:
            raise ConfigurationError("mi_window must be at least 2")
        self.interval = interval
        self.tvd_threshold = tvd_threshold
        self.min_events = min_events
        self.mi_window = mi_window
        self.tracer = tracer
        self._next = interval
        self._streams: List[_WatchedStream] = []
        self.history: List[MonitorSample] = []
        self.violations: List[ShapingViolation] = []
        self.degradations: List[DegradedMode] = []
        self._metrics = None

    # -- wiring ------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Mirror monitor state into first-class registry gauges.

        ``monitor.checkpoints`` / ``monitor.violations`` /
        ``monitor.degradations`` plus per-stream
        ``monitor.core{K}.{dir}.{tvd_target,tvd_intrinsic,mi_bits,
        events}`` update at every checkpoint (and on each degradation
        flag), so ``/metrics`` shows jitter-budget exhaustion and
        guarantee breaches without parsing traces.  Checkpoint cycles
        and values are engine-invariant, so binding never perturbs the
        cross-engine equivalence of registry or snapshot state.
        """
        self._metrics = registry
        registry.gauge("monitor.checkpoints").set(len(self.history))
        registry.gauge("monitor.violations").set(len(self.violations))
        registry.gauge("monitor.degradations").set(len(self.degradations))

    def watch(
        self,
        core_id: int,
        direction: str,
        intrinsic: "InterArrivalHistogram",
        shaped: "InterArrivalHistogram",
        target_frequencies: Optional[Sequence[float]] = None,
    ) -> None:
        """Observe one stream pair; ``target_frequencies`` (normalized,
        one per bin) enables guarantee checking against the configured
        distribution."""
        target: Optional[Tuple[float, ...]] = None
        if target_frequencies is not None:
            target = tuple(target_frequencies)
            if len(target) != shaped.spec.num_bins:
                raise ConfigurationError(
                    "target distribution has wrong number of bins"
                )
        self._streams.append(
            _WatchedStream(core_id, direction, intrinsic, shaped, target)
        )

    @property
    def watched_count(self) -> int:
        return len(self._streams)

    @property
    def next_check_cycle(self) -> int:
        return self._next

    # -- checkpointing -----------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Run any checkpoints reached by the tick at ``cycle``."""
        while cycle >= self._next:
            self._check(self._next)
            self._next += self.interval

    def fill(self, up_to_cycle: int) -> None:
        """Checkpoints inside a skipped span (state is frozen, so the
        current histograms are exact at every boundary)."""
        while self._next <= up_to_cycle:
            self._check(self._next)
            self._next += self.interval

    def _update_stream_gauges(self, sample: MonitorSample) -> None:
        prefix = f"monitor.core{sample.core_id}.{sample.direction}"
        metrics = self._metrics
        if sample.tvd_target is not None:
            metrics.gauge(f"{prefix}.tvd_target").set(sample.tvd_target)
        metrics.gauge(f"{prefix}.tvd_intrinsic").set(sample.tvd_intrinsic)
        metrics.gauge(f"{prefix}.mi_bits").set(sample.mi_bits)
        metrics.gauge(f"{prefix}.events").set(sample.events_observed)

    def _check(self, stamp: int) -> None:
        for stream in self._streams:
            shaped = stream.shaped
            observed = shaped.total
            tvd_intrinsic = stream.intrinsic.total_variation_distance(shaped)
            mi = self._windowed_mi(stream)
            tvd_target: Optional[float] = None
            if stream.target is not None:
                tvd_target = 0.5 * sum(
                    abs(a - b)
                    for a, b in zip(shaped.frequencies(), stream.target)
                )
            sample = MonitorSample(
                cycle=stamp,
                core_id=stream.core_id,
                direction=stream.direction,
                events_observed=observed,
                tvd_target=tvd_target,
                tvd_intrinsic=tvd_intrinsic,
                mi_bits=mi,
            )
            self.history.append(sample)
            if self._metrics is not None:
                self._update_stream_gauges(sample)
            if (
                tvd_target is not None
                and observed >= self.min_events
                and tvd_target > self.tvd_threshold
            ):
                violation = ShapingViolation(
                    cycle=stamp,
                    core_id=stream.core_id,
                    direction=stream.direction,
                    tvd_target=tvd_target,
                    threshold=self.tvd_threshold,
                    events_observed=observed,
                )
                self.violations.append(violation)
                if self._metrics is not None:
                    self._metrics.gauge("monitor.violations").set(
                        len(self.violations)
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        stamp, CATEGORY_MONITOR, "monitor.violation",
                        core_id=stream.core_id,
                        direction=stream.direction,
                        tvd_target=round(tvd_target, 6),
                        threshold=self.tvd_threshold,
                        events=observed,
                    )
        if self._metrics is not None:
            self._metrics.gauge("monitor.checkpoints").set(len(self.history))

    def flag_degraded(
        self,
        cycle: int,
        core_id: int,
        direction: str,
        reason: str,
        detail: str = "",
    ) -> DegradedMode:
        """Record a graceful-degradation activation (pushed by the
        degrading component, not polled at checkpoints, so the flag is
        stamped at the exact cycle the policy flipped)."""
        mode = DegradedMode(
            cycle=cycle,
            core_id=core_id,
            direction=direction,
            reason=reason,
            detail=detail,
        )
        self.degradations.append(mode)
        if self._metrics is not None:
            self._metrics.gauge("monitor.degradations").set(
                len(self.degradations)
            )
        if self.tracer.enabled:
            self.tracer.emit(
                cycle, CATEGORY_MONITOR, "monitor.degraded",
                core_id=core_id,
                direction=direction,
                reason=reason,
            )
        return mode

    def _windowed_mi(self, stream: _WatchedStream) -> float:
        """Plug-in MI over the last ``mi_window`` paired releases."""
        from repro.security.mutual_information import mutual_information_bits

        intrinsic_gaps = stream.intrinsic.gaps
        shaped_gaps = stream.shaped.gaps
        paired = min(len(intrinsic_gaps), len(shaped_gaps))
        if paired < 2:
            return 0.0
        start = max(0, paired - self.mi_window)
        spec = stream.shaped.spec
        x = [spec.bin_of(g) for g in intrinsic_gaps[start:paired]]
        y = [spec.bin_of(g) for g in shaped_gaps[start:paired]]
        return mutual_information_bits(x, y)

    # -- reporting -----------------------------------------------------------

    def latest(
        self, core_id: int, direction: str
    ) -> Optional[MonitorSample]:
        """The most recent checkpoint for one stream, if any."""
        for sample in reversed(self.history):
            if sample.core_id == core_id and sample.direction == direction:
                return sample
        return None

    def summary_rows(self) -> List[List[object]]:
        """Latest checkpoint per stream (for the stats CLI)."""
        rows: List[List[object]] = []
        for stream in self._streams:
            sample = self.latest(stream.core_id, stream.direction)
            if sample is None:
                continue
            rows.append([
                sample.core_id,
                sample.direction,
                sample.events_observed,
                "-" if sample.tvd_target is None
                else f"{sample.tvd_target:.4f}",
                f"{sample.tvd_intrinsic:.4f}",
                f"{sample.mi_bits:.4f}",
            ])
        return rows

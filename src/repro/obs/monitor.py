"""Live shaping monitor: running TVD/MI over the shaped streams.

The paper's guarantee is distributional: the post-shaper stream must
follow the configured bin distribution regardless of what the program
does.  End-of-run aggregates can hide a mid-run excursion (a window
where the shaper tracked the intrinsic stream and leaked); this
monitor evaluates the guarantee *while the run is going*, at fixed
cycle checkpoints, from the same intrinsic/shaped inter-arrival
histograms the shapers already maintain:

* ``tvd_target`` — total-variation distance between the shaped
  distribution and the configured target.  This is the guarantee
  itself: once enough releases have been observed, a value above the
  threshold is flagged as a :class:`ShapingViolation`.
* ``tvd_intrinsic`` — TVD between intrinsic and shaped distributions
  (how much work the shaper is doing; ~0 means the shaped stream just
  mirrors the program).
* ``mi_bits`` — plug-in mutual information between the paired
  intrinsic and shaped inter-arrival bin sequences over a sliding
  window (the section IV-B leakage estimate, evaluated online).

Checkpoints use the same advance/fill discipline as the interval
sampler, so the history and violation stream are identical under the
per-cycle and next-event engines (histograms only change inside
``tick``, never across a skipped span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.obs.events import CATEGORY_DETECT, CATEGORY_MONITOR
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # import-leaf discipline: repro.obs must not pull
    # the simulator stack in at import time (components import the
    # tracer, and cycles would follow); heavyweight deps load lazily.
    from repro.core.distribution import InterArrivalHistogram


@dataclass(frozen=True)
class ShapingViolation:
    """One checkpoint at which a shaped stream broke its guarantee."""

    cycle: int
    core_id: int
    direction: str
    tvd_target: float
    threshold: float
    events_observed: int


@dataclass(frozen=True)
class DetectViolation:
    """One checkpoint at which a zoo attacker beat its threshold.

    ``metric`` is ``"auc"`` (a trained classifier separates the shaped
    stream from its target) or ``"xcorr"`` (the observed rate series
    still tracks the intrinsic one).
    """

    cycle: int
    core_id: int
    direction: str
    metric: str
    value: float
    threshold: float


@dataclass(frozen=True)
class DegradedMode:
    """One graceful-degradation activation, flagged live.

    The resilience contract (docs/resilience.md): when a component
    exhausts a budget it falls back to a *safe* policy — e.g. the
    shaper dropping randomized jitter for strict constant-rate release
    once its jitter budget runs out — and the fallback is recorded
    here, never applied silently.  ``reason`` is a stable machine key
    (``"jitter_budget_exhausted"``, ...); ``detail`` is human prose.
    """

    cycle: int
    core_id: int
    direction: str
    reason: str
    detail: str


@dataclass(frozen=True)
class MonitorSample:
    """One checkpoint's estimates for one monitored stream."""

    cycle: int
    core_id: int
    direction: str
    events_observed: int
    tvd_target: Optional[float]
    tvd_intrinsic: float
    mi_bits: float
    #: paired releases the MI window actually covered
    mi_pairs: int = 0
    #: True when the window cannot support an MI estimate (fewer than
    #: two pairs, or a marginal collapsed into one bin) — ``mi_bits``
    #: is then a vacuous 0.0, not evidence of no leakage
    mi_degenerate: bool = False
    #: detectability-lab scores (None when detect checks are off or
    #: the window was too small / had no target distribution)
    auc: Optional[float] = None
    xcorr: Optional[float] = None


class _WatchedStream:
    """One (core, direction) pair under observation."""

    __slots__ = (
        "core_id", "direction", "intrinsic", "shaped", "target",
        "pairs_at_check",
    )

    def __init__(
        self,
        core_id: int,
        direction: str,
        intrinsic: "InterArrivalHistogram",
        shaped: "InterArrivalHistogram",
        target: Optional[Tuple[float, ...]],
    ) -> None:
        self.core_id = core_id
        self.direction = direction
        self.intrinsic = intrinsic
        self.shaped = shaped
        self.target = target
        # Paired releases already covered by the last periodic check;
        # finalize() uses it to decide whether an un-checked tail is
        # worth a final partial-window evaluation.
        self.pairs_at_check = 0


class ShapingMonitor:
    """Periodic TVD/MI checkpoints with mid-run violation flagging."""

    def __init__(
        self,
        interval: int = 2048,
        tvd_threshold: float = 0.25,
        min_events: int = 32,
        mi_window: int = 4096,
        tracer=NULL_TRACER,
        detect: bool = False,
        detect_window: int = 256,
        detect_min_pairs: int = 32,
        auc_threshold: float = 0.8,
        xcorr_threshold: float = 0.9,
        detect_seed: int = 0,
        final_min_pairs: int = 8,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("monitor interval must be positive")
        if not 0.0 <= tvd_threshold <= 1.0:
            raise ConfigurationError("tvd_threshold must be in [0, 1]")
        if min_events < 1:
            raise ConfigurationError("min_events must be at least 1")
        if mi_window < 2:
            raise ConfigurationError("mi_window must be at least 2")
        if detect_window < 2:
            raise ConfigurationError("detect_window must be at least 2")
        if detect_min_pairs < 1:
            raise ConfigurationError("detect_min_pairs must be at least 1")
        if not 0.0 <= auc_threshold <= 1.0:
            raise ConfigurationError("auc_threshold must be in [0, 1]")
        if not 0.0 <= xcorr_threshold <= 1.0:
            raise ConfigurationError("xcorr_threshold must be in [0, 1]")
        if final_min_pairs < 2:
            raise ConfigurationError("final_min_pairs must be at least 2")
        self.interval = interval
        self.tvd_threshold = tvd_threshold
        self.min_events = min_events
        self.mi_window = mi_window
        self.tracer = tracer
        self.detect = detect
        self.detect_window = detect_window
        self.detect_min_pairs = detect_min_pairs
        self.auc_threshold = auc_threshold
        self.xcorr_threshold = xcorr_threshold
        self.detect_seed = int(detect_seed)
        self.final_min_pairs = final_min_pairs
        self._next = interval
        self._streams: List[_WatchedStream] = []
        self.history: List[MonitorSample] = []
        self.violations: List[ShapingViolation] = []
        self.detect_violations: List[DetectViolation] = []
        self.degradations: List[DegradedMode] = []
        # Final partial-window state; REPLACED wholesale by finalize()
        # (never appended), so it is a pure function of histogram state
        # at the last cycle and stays resume/engine-invariant.
        self.final_samples: List[MonitorSample] = []
        self.final_violations: List[ShapingViolation] = []
        self.final_detect_violations: List[DetectViolation] = []
        self._metrics = None

    # -- wiring ------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Mirror monitor state into first-class registry gauges.

        ``monitor.checkpoints`` / ``monitor.violations`` /
        ``monitor.degradations`` plus per-stream
        ``monitor.core{K}.{dir}.{tvd_target,tvd_intrinsic,mi_bits,
        events}`` update at every checkpoint (and on each degradation
        flag), so ``/metrics`` shows jitter-budget exhaustion and
        guarantee breaches without parsing traces.  Checkpoint cycles
        and values are engine-invariant, so binding never perturbs the
        cross-engine equivalence of registry or snapshot state.
        """
        self._metrics = registry
        registry.gauge("monitor.checkpoints").set(len(self.history))
        registry.gauge("monitor.violations").set(len(self.violations))
        registry.gauge("monitor.degradations").set(len(self.degradations))

    def watch(
        self,
        core_id: int,
        direction: str,
        intrinsic: "InterArrivalHistogram",
        shaped: "InterArrivalHistogram",
        target_frequencies: Optional[Sequence[float]] = None,
    ) -> None:
        """Observe one stream pair; ``target_frequencies`` (normalized,
        one per bin) enables guarantee checking against the configured
        distribution."""
        target: Optional[Tuple[float, ...]] = None
        if target_frequencies is not None:
            target = tuple(target_frequencies)
            if len(target) != shaped.spec.num_bins:
                raise ConfigurationError(
                    "target distribution has wrong number of bins"
                )
        self._streams.append(
            _WatchedStream(core_id, direction, intrinsic, shaped, target)
        )

    @property
    def watched_count(self) -> int:
        return len(self._streams)

    @property
    def next_check_cycle(self) -> int:
        return self._next

    # -- checkpointing -----------------------------------------------------

    def advance(self, cycle: int) -> None:
        """Run any checkpoints reached by the tick at ``cycle``."""
        while cycle >= self._next:
            self._check(self._next)
            self._next += self.interval

    def fill(self, up_to_cycle: int) -> None:
        """Checkpoints inside a skipped span (state is frozen, so the
        current histograms are exact at every boundary)."""
        while self._next <= up_to_cycle:
            self._check(self._next)
            self._next += self.interval

    def _update_stream_gauges(self, sample: MonitorSample) -> None:
        prefix = f"monitor.core{sample.core_id}.{sample.direction}"
        metrics = self._metrics
        if sample.tvd_target is not None:
            metrics.gauge(f"{prefix}.tvd_target").set(sample.tvd_target)
        metrics.gauge(f"{prefix}.tvd_intrinsic").set(sample.tvd_intrinsic)
        metrics.gauge(f"{prefix}.mi_bits").set(sample.mi_bits)
        metrics.gauge(f"{prefix}.events").set(sample.events_observed)
        detect_prefix = f"detect.core{sample.core_id}.{sample.direction}"
        if sample.auc is not None:
            metrics.gauge(f"{detect_prefix}.auc").set(sample.auc)
        if sample.xcorr is not None:
            metrics.gauge(f"{detect_prefix}.xcorr").set(sample.xcorr)

    def _paired(self, stream: _WatchedStream) -> int:
        return min(len(stream.intrinsic.gaps), len(stream.shaped.gaps))

    def _detect_scores(
        self, index: int, stream: _WatchedStream, stamp: int
    ) -> Tuple[Optional[float], Optional[float]]:
        """Windowed zoo scores for one stream at one checkpoint.

        The RNG (target synthesis + train/test split inside the lab) is
        a pure function of ``(detect_seed, stamp, stream index)``, so
        checkpoint scores are engine- and resume-invariant.
        """
        from repro.security.detect import windowed_detect_scores

        if self._paired(stream) < self.detect_min_pairs:
            return None, None
        rng = DeterministicRng(self.detect_seed).fork(stamp).fork(index)
        return windowed_detect_scores(
            stream.intrinsic.gaps,
            stream.shaped.gaps,
            stream.shaped.spec,
            stream.target,
            rng,
            window_pairs=self.detect_window,
        )

    def _evaluate(
        self, index: int, stream: _WatchedStream, stamp: int
    ) -> Tuple[
        MonitorSample, Optional[ShapingViolation], List[DetectViolation]
    ]:
        """Build one stream's sample + violations at ``stamp``.

        Pure in (histogram state, stamp); shared by the periodic
        ``_check`` and the run-end ``finalize``.
        """
        shaped = stream.shaped
        observed = shaped.total
        tvd_intrinsic = stream.intrinsic.total_variation_distance(shaped)
        mi, mi_pairs, mi_degenerate = self._windowed_mi(stream)
        tvd_target: Optional[float] = None
        if stream.target is not None:
            tvd_target = 0.5 * sum(
                abs(a - b)
                for a, b in zip(shaped.frequencies(), stream.target)
            )
        auc: Optional[float] = None
        xcorr: Optional[float] = None
        detect_violations: List[DetectViolation] = []
        if self.detect:
            auc, xcorr = self._detect_scores(index, stream, stamp)
            for metric, value, threshold in (
                ("auc", auc, self.auc_threshold),
                ("xcorr", xcorr, self.xcorr_threshold),
            ):
                if value is not None and value > threshold:
                    detect_violations.append(DetectViolation(
                        cycle=stamp,
                        core_id=stream.core_id,
                        direction=stream.direction,
                        metric=metric,
                        value=value,
                        threshold=threshold,
                    ))
        sample = MonitorSample(
            cycle=stamp,
            core_id=stream.core_id,
            direction=stream.direction,
            events_observed=observed,
            tvd_target=tvd_target,
            tvd_intrinsic=tvd_intrinsic,
            mi_bits=mi,
            mi_pairs=mi_pairs,
            mi_degenerate=mi_degenerate,
            auc=auc,
            xcorr=xcorr,
        )
        violation: Optional[ShapingViolation] = None
        if (
            tvd_target is not None
            and observed >= self.min_events
            and tvd_target > self.tvd_threshold
        ):
            violation = ShapingViolation(
                cycle=stamp,
                core_id=stream.core_id,
                direction=stream.direction,
                tvd_target=tvd_target,
                threshold=self.tvd_threshold,
                events_observed=observed,
            )
        return sample, violation, detect_violations

    def _check(self, stamp: int) -> None:
        for index, stream in enumerate(self._streams):
            sample, violation, detect_violations = self._evaluate(
                index, stream, stamp
            )
            stream.pairs_at_check = self._paired(stream)
            self.history.append(sample)
            if self._metrics is not None:
                self._update_stream_gauges(sample)
            if violation is not None:
                self.violations.append(violation)
                if self._metrics is not None:
                    self._metrics.gauge("monitor.violations").set(
                        len(self.violations)
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        stamp, CATEGORY_MONITOR, "monitor.violation",
                        core_id=stream.core_id,
                        direction=stream.direction,
                        tvd_target=round(violation.tvd_target, 6),
                        threshold=self.tvd_threshold,
                        events=violation.events_observed,
                    )
            for dv in detect_violations:
                self.detect_violations.append(dv)
                if self._metrics is not None:
                    self._metrics.gauge("detect.violations").set(
                        len(self.detect_violations)
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        stamp, CATEGORY_DETECT, "detect.violation",
                        core_id=dv.core_id,
                        direction=dv.direction,
                        metric=dv.metric,
                        value=round(dv.value, 6),
                        threshold=dv.threshold,
                    )
        if self._metrics is not None:
            self._metrics.gauge("monitor.checkpoints").set(len(self.history))

    def finalize(self, cycle: int) -> None:
        """Evaluate the un-checked tail at run end (the final partial
        window the periodic schedule never reaches).

        A stream is finalized only when it accrued at least
        ``final_min_pairs`` new paired releases since its last periodic
        check — a smaller tail cannot support the estimators and would
        only add small-sample noise.

        Overwrite semantics: the ``final_*`` lists are REPLACED
        wholesale on every call, making finalize a pure function of
        histogram state at ``cycle``.  An interrupted run finalizes at
        the cut, but resuming and finalizing again at the true end
        converges to exactly the straight run's final state.  For the
        same reason finalize emits no trace events and touches no
        gauges — both are append-only / time-sampled and must stay
        byte-identical across engines and snapshot-resume paths.
        """
        samples: List[MonitorSample] = []
        violations: List[ShapingViolation] = []
        detect_violations: List[DetectViolation] = []
        for index, stream in enumerate(self._streams):
            new_pairs = self._paired(stream) - stream.pairs_at_check
            if new_pairs < self.final_min_pairs:
                continue
            sample, violation, dvs = self._evaluate(index, stream, cycle)
            samples.append(sample)
            if violation is not None:
                violations.append(violation)
            detect_violations.extend(dvs)
        self.final_samples = samples
        self.final_violations = violations
        self.final_detect_violations = detect_violations

    @property
    def violation_count(self) -> int:
        """Total guarantee breaches: periodic checks + run-end tail."""
        return len(self.violations) + len(self.final_violations)

    @property
    def detect_violation_count(self) -> int:
        """Total zoo-attacker breaches: periodic checks + run-end tail."""
        return len(self.detect_violations) + len(self.final_detect_violations)

    def flag_degraded(
        self,
        cycle: int,
        core_id: int,
        direction: str,
        reason: str,
        detail: str = "",
    ) -> DegradedMode:
        """Record a graceful-degradation activation (pushed by the
        degrading component, not polled at checkpoints, so the flag is
        stamped at the exact cycle the policy flipped)."""
        mode = DegradedMode(
            cycle=cycle,
            core_id=core_id,
            direction=direction,
            reason=reason,
            detail=detail,
        )
        self.degradations.append(mode)
        if self._metrics is not None:
            self._metrics.gauge("monitor.degradations").set(
                len(self.degradations)
            )
        if self.tracer.enabled:
            self.tracer.emit(
                cycle, CATEGORY_MONITOR, "monitor.degraded",
                core_id=core_id,
                direction=direction,
                reason=reason,
            )
        return mode

    def _windowed_mi(
        self, stream: _WatchedStream
    ) -> Tuple[float, int, bool]:
        """Plug-in MI over the last ``mi_window`` paired releases.

        Returns ``(mi_bits, pairs_evaluated, degenerate)``.  The window
        is *degenerate* — MI is a vacuous 0.0, not evidence of no
        leakage — when fewer than two pairs exist or either marginal
        collapsed into a single bin (a constant sequence has zero
        entropy, so its MI with anything is identically zero no matter
        how much the streams actually co-vary at finer granularity).
        """
        from repro.security.mutual_information import mutual_information_bits

        intrinsic_gaps = stream.intrinsic.gaps
        shaped_gaps = stream.shaped.gaps
        paired = min(len(intrinsic_gaps), len(shaped_gaps))
        if paired < 2:
            return 0.0, paired, True
        start = max(0, paired - self.mi_window)
        spec = stream.shaped.spec
        x = [spec.bin_of(g) for g in intrinsic_gaps[start:paired]]
        y = [spec.bin_of(g) for g in shaped_gaps[start:paired]]
        degenerate = len(set(x)) <= 1 or len(set(y)) <= 1
        return mutual_information_bits(x, y), len(x), degenerate

    # -- reporting -----------------------------------------------------------

    def latest(
        self, core_id: int, direction: str
    ) -> Optional[MonitorSample]:
        """The most recent checkpoint for one stream, if any."""
        for sample in reversed(self.history):
            if sample.core_id == core_id and sample.direction == direction:
                return sample
        return None

    def final_for(
        self, core_id: int, direction: str
    ) -> Optional[MonitorSample]:
        """The run-end partial-window sample for one stream, if any."""
        for sample in self.final_samples:
            if sample.core_id == core_id and sample.direction == direction:
                return sample
        return None

    def _display_sample(
        self, core_id: int, direction: str
    ) -> Optional[MonitorSample]:
        """Freshest view of one stream: the run-end tail sample when it
        postdates the last periodic checkpoint, else the checkpoint."""
        checked = self.latest(core_id, direction)
        final = self.final_for(core_id, direction)
        if final is None:
            return checked
        if checked is None or final.cycle >= checked.cycle:
            return final
        return checked

    def summary_rows(self) -> List[List[object]]:
        """Latest estimate per stream (for the stats CLI).

        Base columns are [core, direction, events, tvd_target,
        tvd_intrinsic, mi]; two detect columns (auc, xcorr) are
        appended only when detect checks are enabled.  A degenerate MI
        window renders as ``insufficient_support`` rather than a clean
        0.0000 — zero evidence is not evidence of zero leakage.
        """
        rows: List[List[object]] = []
        for stream in self._streams:
            sample = self._display_sample(stream.core_id, stream.direction)
            if sample is None:
                continue
            row: List[object] = [
                sample.core_id,
                sample.direction,
                sample.events_observed,
                "-" if sample.tvd_target is None
                else f"{sample.tvd_target:.4f}",
                f"{sample.tvd_intrinsic:.4f}",
                "insufficient_support" if sample.mi_degenerate
                else f"{sample.mi_bits:.4f}",
            ]
            if self.detect:
                row.append(
                    "-" if sample.auc is None else f"{sample.auc:.4f}"
                )
                row.append(
                    "-" if sample.xcorr is None else f"{sample.xcorr:.4f}"
                )
            rows.append(row)
        return rows

"""Deterministic engine self-profiler: where did the simulated work go?

The profiler attributes a run's work to pipeline stations and engine
phases so perf PRs can show *what changed* rather than just a total
wall-time delta:

* cycle accounting — simulated cycles split into *stepped* (a real
  ``tick`` ran) and *skipped* (a next-event/columnar span jump), with
  a span-length histogram of every skip;
* per-station work — under the columnar engine, how many times each
  station's kernel actually ran vs. how many scheduled slots it
  skipped (cores, request/response shaper paths, NoC links, memory
  controller, fault injector);
* engine internals — columnar dirty-row re-polls, horizon-ledger
  refreshes, and fallback-to-full-tick events (the injector path that
  abandons columnar stepping for a cycle);
* degradation context — the rollup folds in the shaping monitor's
  violation/degradation counts when one is attached, so the profile of
  a run that fell back to strict constant-rate release says so.

Determinism contract
--------------------

Everything above is **integer arithmetic on simulated cycles** and is
bit-identical across the ``cycle``, ``next_event`` and ``columnar``
engines' *shared quantities* (total simulated cycles); engine-specific
quantities (skip spans, station skips) describe the engine, not the
simulated hardware, and are intentionally engine-variant.  None of it
enters reports, traces, samples or digests: the profiler keeps its own
state and only materialises registry families when
:meth:`EngineProfiler.export_to` is called (by the serve publisher or
the ``repro profile`` CLI verb).

Wall-clock time is measured too — it is the point of profiling — but
it is quarantined: accumulated in :attr:`EngineProfiler.wall_ns`,
surfaced only in ``rollup(include_wall=True)`` and ``/healthz``, never
exported into the metrics registry and never pickled.  Snapshots
(``REPROSNAP``) therefore stay byte-identical whether or not a
profiled run preceded them: :meth:`__getstate__` persists only the
``enabled`` flag, so a restored system re-profiles from scratch.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["EngineProfiler", "SKIP_SPAN_EDGES"]

#: Upper edges (inclusive, cycles) of the skip-span histogram — powers
#: of four past the short spans, wide enough that a monitor-interval
#: jump (2048 cycles) and an idle-phase jump (tens of thousands) land
#: in distinct buckets.
SKIP_SPAN_EDGES = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536,
)


def _wall_ns() -> int:
    """Monotonic wall clock for run bracketing.

    Observability-only: the value feeds the profiler rollup artifact
    and ``/healthz`` uptime, never cycle state, reports or digests —
    see the module docstring's determinism contract.
    """
    # repro-lint: disable-next-line=RL001
    return time.perf_counter_ns()


class EngineProfiler:
    """Per-run work attribution with zero per-tick overhead.

    The stepped/skipped split is closed-form — ``stepped = (end -
    start) - skipped`` — so the per-cycle engines pay nothing per tick;
    the columnar engine's per-station increments sit behind a single
    local ``if prof:`` in its step loop.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.runs = 0
        self.engines: Dict[str, int] = {}
        self.last_engine = ""
        self.simulated_cycles = 0
        self.stepped_cycles = 0
        self.skipped_cycles = 0
        self.skip_count = 0
        self.skip_span_counts: List[int] = [0] * (len(SKIP_SPAN_EDGES) + 1)
        self.station_ticks: Dict[str, int] = {}
        self.station_skips: Dict[str, int] = {}
        self.horizon_refreshes = 0
        self.dirty_repolls = 0
        self.full_tick_fallbacks = 0
        self.wall_ns = 0
        self._run_start_cycle = 0
        self._skipped_at_begin = 0
        self._wall_start: Optional[int] = None
        self._exported: Dict[str, int] = {}

    # -- run bracketing ------------------------------------------------------

    def begin_run(self, engine: str, start_cycle: int) -> None:
        self.runs += 1
        self.engines[engine] = self.engines.get(engine, 0) + 1
        self.last_engine = engine
        self._run_start_cycle = start_cycle
        self._skipped_at_begin = self.skipped_cycles
        self._wall_start = _wall_ns()

    def end_run(self, end_cycle: int) -> None:
        span = max(0, end_cycle - self._run_start_cycle)
        self.simulated_cycles += span
        self.stepped_cycles += span - (
            self.skipped_cycles - self._skipped_at_begin
        )
        if self._wall_start is not None:
            self.wall_ns += _wall_ns() - self._wall_start
            self._wall_start = None

    # -- engine hooks (integer cycle arithmetic only) ------------------------

    def record_skip(self, span: int) -> None:
        """A clock jump of ``span`` cycles landed (next_event/columnar)."""
        if span <= 0:
            return
        self.skipped_cycles += span
        self.skip_count += 1
        for index, edge in enumerate(SKIP_SPAN_EDGES):
            if span <= edge:
                self.skip_span_counts[index] += 1
                break
        else:
            self.skip_span_counts[-1] += 1

    def record_station(self, station: str, ticks: int = 0,
                       skips: int = 0) -> None:
        """Columnar per-station attribution: kernel ran / slot skipped."""
        if ticks:
            self.station_ticks[station] = (
                self.station_ticks.get(station, 0) + ticks
            )
        if skips:
            self.station_skips[station] = (
                self.station_skips.get(station, 0) + skips
            )

    def record_horizon_refresh(self, dirty_rows: int) -> None:
        self.horizon_refreshes += 1
        self.dirty_repolls += dirty_rows

    def record_full_tick_fallback(self) -> None:
        self.full_tick_fallbacks += 1

    # -- reporting -----------------------------------------------------------

    def rollup(self, include_wall: bool = False,
               monitor=None) -> Dict[str, Any]:
        """Flame-style per-station summary, top stations first.

        Deterministic by default; ``include_wall=True`` adds the
        quarantined wall-clock total (CLI display and the CI artifact
        only).  ``monitor`` (a ShapingMonitor) folds in shaper
        violation/degradation accounting.
        """
        total_ticks = sum(self.station_ticks.values())
        stations = sorted(
            set(self.station_ticks) | set(self.station_skips)
        )
        station_rows = [
            {
                "station": station,
                "ticks": self.station_ticks.get(station, 0),
                "skips": self.station_skips.get(station, 0),
                "share": (
                    round(self.station_ticks.get(station, 0) / total_ticks, 6)
                    if total_ticks else 0.0
                ),
            }
            for station in stations
        ]
        station_rows.sort(key=lambda row: (-row["ticks"], row["station"]))
        doc: Dict[str, Any] = {
            "version": 1,
            "runs": self.runs,
            "engines": dict(sorted(self.engines.items())),
            "cycles": {
                "simulated": self.simulated_cycles,
                "stepped": self.stepped_cycles,
                "skipped": self.skipped_cycles,
            },
            "skip_spans": {
                "edges": list(SKIP_SPAN_EDGES),
                "counts": list(self.skip_span_counts),
                "total": self.skip_count,
                "sum": self.skipped_cycles,
            },
            "stations": station_rows,
            "columnar": {
                "horizon_refreshes": self.horizon_refreshes,
                "dirty_repolls": self.dirty_repolls,
                "full_tick_fallbacks": self.full_tick_fallbacks,
            },
        }
        if monitor is not None:
            doc["shaping"] = {
                "checkpoints": len(monitor.history),
                "violations": len(monitor.violations),
                "degradations": len(monitor.degradations),
            }
        if include_wall:
            doc["wall"] = {
                "ns": self.wall_ns,
                "ms": round(self.wall_ns / 1e6, 3),
            }
        return doc

    # -- registry export -----------------------------------------------------

    def _export_counter(self, registry: MetricsRegistry, name: str,
                        value: int) -> None:
        """Idempotent absolute export: counters advance by the delta
        since the last export, so a publish cadence never double-counts."""
        last = self._exported.get(name, 0)
        if value > last:
            registry.counter(name).inc(value - last)
            self._exported[name] = value

    def export_to(self, registry: MetricsRegistry) -> None:
        """Materialise the profiler families into ``registry``.

        Called on each publish cadence by the serve publisher and once
        by ``repro profile``; safe to call repeatedly.
        """
        self._export_counter(registry, "profiler.runs", self.runs)
        self._export_counter(
            registry, "profiler.cycles.simulated", self.simulated_cycles
        )
        self._export_counter(
            registry, "profiler.cycles.stepped", self.stepped_cycles
        )
        self._export_counter(
            registry, "profiler.cycles.skipped", self.skipped_cycles
        )
        self._export_counter(
            registry, "profiler.columnar.horizon_refreshes",
            self.horizon_refreshes,
        )
        self._export_counter(
            registry, "profiler.columnar.dirty_repolls", self.dirty_repolls
        )
        self._export_counter(
            registry, "profiler.columnar.full_tick_fallbacks",
            self.full_tick_fallbacks,
        )
        registry.histogram(
            "profiler.skip_span", SKIP_SPAN_EDGES
        ).load(
            list(self.skip_span_counts), self.skip_count,
            self.skipped_cycles,
        )
        for station in sorted(
            set(self.station_ticks) | set(self.station_skips)
        ):
            self._export_counter(
                registry, f"profiler.station.{station}.ticks",
                self.station_ticks.get(station, 0),
            )
            self._export_counter(
                registry, f"profiler.station.{station}.skips",
                self.station_skips.get(station, 0),
            )

    # -- pickling (snapshots) ------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Persist only the ``enabled`` flag: profiler counters are
        engine-variant diagnostics, and including them would make a
        snapshot's bytes depend on which engine (and how much wall
        time) preceded :meth:`take_checkpoint`.  A restored system
        re-profiles from scratch."""
        return {"enabled": self.enabled}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(enabled=state.get("enabled", True))

"""``repro serve``: a live metrics endpoint over the obs registry.

Two pieces:

* :class:`MetricsServer` — a stdlib :mod:`http.server` endpoint
  (ThreadingHTTPServer on a daemon thread, loopback by default, port 0
  = ephemeral) serving three read-only routes:

  - ``/metrics``  — the OpenMetrics text exposition,
  - ``/healthz``  — liveness JSON (status, published cycle, scrape
    count, uptime),
  - ``/monitor``  — the live shaping-monitor state (latest TVD/MI per
    stream, violations, degradations) as JSON.

  The server never touches live simulator state: it serves the last
  *published* snapshot strings under a lock.  Publication happens on
  the simulation thread, between cycles, so a scrape can never observe
  a half-ticked system and the run loop never blocks on a slow client.

* :class:`ServePublisher` — the cadence hook wired into
  :meth:`Observability.on_cycle_end` / :meth:`on_skip` with the same
  advance/fill discipline as the interval sampler.  Every ``interval``
  cycles it refreshes the derived gauges (probe values, profiler
  families), renders the exposition and monitor document, and pushes
  them to the server.

The publisher holds thread and socket handles, so it is excluded from
pickling by :meth:`Observability.__getstate__` — snapshots taken
during a served run restore cleanly into a non-served system.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.common.errors import ConfigurationError
from repro.obs.export import EXPOSITION_CONTENT_TYPE

if TYPE_CHECKING:
    from repro.obs.hub import Observability

__all__ = ["MetricsServer", "ServePublisher", "DEFAULT_PUBLISH_INTERVAL"]

#: Default publish cadence in simulated cycles — coarse enough that
#: rendering cost is invisible next to the simulation itself, fine
#: enough that a scraper polling every few seconds sees fresh state on
#: any realistically-sized run.
DEFAULT_PUBLISH_INTERVAL = 4096

_EMPTY_EXPOSITION = "# EOF\n"


def _uptime_ns_base() -> int:
    """Monotonic base for ``/healthz`` uptime — operational metadata
    only, never part of any deterministic output.
    """
    # repro-lint: disable-next-line=RL001
    return time.perf_counter_ns()


class MetricsServer:
    """Threaded HTTP endpoint serving the last published snapshot."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._lock = threading.Lock()
        self._exposition = _EMPTY_EXPOSITION
        self._monitor_doc: Dict[str, Any] = {"enabled": False}
        self._status = "starting"
        self._published_cycle = -1
        self._publishes = 0
        self._scrapes = 0
        self._started_ns = _uptime_ns_base()
        server = self

        class _Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body, content_type = server._metrics_response()
                elif path == "/healthz":
                    body, content_type = server._healthz_response()
                elif path == "/monitor":
                    body, content_type = server._monitor_response()
                else:
                    body = b'{"error":"not found"}\n'
                    self._reply(404, body, "application/json")
                    return
                self._reply(200, body, content_type)

            def _reply(self, code: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: Any) -> None:
                """Silence the default per-request stderr chatter."""

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "MetricsServer":
        if self._thread is not None:
            raise ConfigurationError("metrics server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- publication (simulation thread) -------------------------------------

    def publish(
        self,
        exposition: str,
        monitor_doc: Optional[Dict[str, Any]] = None,
        cycle: int = -1,
        status: str = "ok",
    ) -> None:
        """Swap in a new snapshot; called between cycles, never mid-tick."""
        with self._lock:
            self._exposition = exposition
            if monitor_doc is not None:
                self._monitor_doc = monitor_doc
            self._published_cycle = cycle
            self._publishes += 1
            self._status = status

    def mark_draining(self) -> None:
        """Flip ``/healthz`` to ``draining`` while SIGTERM shutdown
        (checkpoint + final publish) is in progress."""
        with self._lock:
            self._status = "draining"

    # -- responses (server threads) ------------------------------------------

    def _metrics_response(self):
        with self._lock:
            self._scrapes += 1
            return self._exposition.encode("utf-8"), EXPOSITION_CONTENT_TYPE

    def _healthz_response(self):
        uptime_ns = _uptime_ns_base() - self._started_ns
        with self._lock:
            doc = {
                "status": self._status,
                "cycle": self._published_cycle,
                "publishes": self._publishes,
                "scrapes": self._scrapes,
                "uptime_ms": round(uptime_ns / 1e6, 3),
            }
        body = json.dumps(doc, sort_keys=True) + "\n"
        return body.encode("utf-8"), "application/json"

    def _monitor_response(self):
        with self._lock:
            doc = self._monitor_doc
        body = json.dumps(doc, sort_keys=True) + "\n"
        return body.encode("utf-8"), "application/json"


class ServePublisher:
    """Cycle-cadence bridge from an :class:`Observability` hub to a
    :class:`MetricsServer`.

    ``advance``/``fill`` follow the sampler's closed-form discipline;
    a span skip that crosses several publish boundaries publishes once,
    at the span end, with the (unchanged) span-start state.
    """

    def __init__(
        self,
        obs: "Observability",
        server: MetricsServer,
        interval: int = DEFAULT_PUBLISH_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("publish interval must be positive")
        self.obs = obs
        self.server = server
        self.interval = interval
        self._next = interval

    @property
    def next_publish_cycle(self) -> int:
        return self._next

    def advance(self, cycle: int) -> None:
        if cycle >= self._next:
            while self._next <= cycle:
                self._next += self.interval
            self.publish(cycle)

    def fill(self, up_to_cycle: int) -> None:
        if up_to_cycle >= self._next:
            while self._next <= up_to_cycle:
                self._next += self.interval
            self.publish(up_to_cycle)

    def publish(self, cycle: int, status: str = "ok") -> None:
        """Refresh derived gauges, render, and push to the server."""
        self.server.publish(
            self.obs.render_exposition(at_cycle=cycle),
            monitor_doc=self.obs.monitor_doc(),
            cycle=cycle,
            status=status,
        )

"""Process-global diagnostics channel for code outside any System.

The event tracer (:class:`~repro.obs.tracer.EventTracer`) is wired
per-system, but some observations happen where no system exists yet:
experiment drivers deriving configurations, the parallel sweep
executor scheduling work across processes, the result cache deciding
hit or miss.  This module gives that code one shared, bounded, always-on
recorder so diagnostics are inspectable in tests and surfaced by the
CLI without threading a tracer through every analysis signature.

Determinism: diagnostics are stamped with a monotonically increasing
sequence number (``cycle`` in the event model) rather than wall-clock
time, so a run's diagnostic stream is a pure function of the work it
performed.  :func:`reset` clears both the buffer and the sequence
counter — tests use it to isolate assertions.

The recorder is intentionally per-process: worker processes spawned by
:class:`repro.parallel.SweepExecutor` accumulate their own streams,
and the executor re-emits worker-side diagnostics it cares about in
the parent (cache and scheduling decisions all happen parent-side).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.events import CATEGORY_ANALYSIS, SYSTEM_CORE, TraceEvent
from repro.obs.ring import RingBuffer

#: Retained diagnostics; oldest evicted first.
DIAG_LIMIT = 1024

_ring: RingBuffer = RingBuffer(DIAG_LIMIT)
_sequence = 0


def emit_diagnostic(
    name: str,
    category: str = CATEGORY_ANALYSIS,
    core_id: int = SYSTEM_CORE,
    **args,
) -> TraceEvent:
    """Record one diagnostic event and return it."""
    global _sequence
    event = TraceEvent(
        cycle=_sequence,
        category=category,
        name=name,
        core_id=core_id,
        args=tuple(sorted(args.items())),
    )
    _sequence += 1
    _ring.append(event)
    return event


def recent(
    name: Optional[str] = None, category: Optional[str] = None
) -> List[TraceEvent]:
    """Retained diagnostics, oldest first, optionally filtered."""
    events = _ring.snapshot()
    if category is not None:
        events = [e for e in events if e.category == category]
    if name is not None:
        events = [e for e in events if e.name == name]
    return events


def count(name: Optional[str] = None, category: Optional[str] = None) -> int:
    """Number of retained diagnostics matching the filters."""
    return len(recent(name=name, category=category))


def reset() -> None:
    """Drop all retained diagnostics and restart the sequence counter."""
    global _ring, _sequence
    _ring = RingBuffer(DIAG_LIMIT)
    _sequence = 0

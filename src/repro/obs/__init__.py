"""Deterministic observability for the simulator stack.

``repro.obs`` provides three disabled-by-default facilities, all
stamped in simulation cycles (never wall clock) so their output is a
pure function of the run configuration:

* an event **tracer** (:class:`~repro.obs.tracer.EventTracer`) with
  ring-buffered storage and Chrome-trace / JSONL exporters, covering
  shaper credit activity, memory-controller scheduling, DRAM commands,
  and NoC grants;
* a **metrics** registry plus interval sampler
  (:mod:`repro.obs.metrics`) producing time-series that are identical
  under the per-cycle and next-event engines;
* a live **shaping monitor** (:class:`~repro.obs.monitor.ShapingMonitor`)
  computing running TVD/MI between intrinsic and shaped streams and
  flagging guarantee violations mid-run;
* an OpenMetrics/JSONL **exporter** (:mod:`repro.obs.export`) with a
  byte-deterministic text exposition and a shard-merge protocol used
  by the parallel sweep executor;
* a deterministic engine **self-profiler**
  (:class:`~repro.obs.profile.EngineProfiler`) attributing simulated
  work to pipeline stations and engine phases in integer cycles;
* a live **metrics server** (:mod:`repro.obs.server`) backing
  ``repro serve`` with `/metrics`, `/healthz` and `/monitor`.

Attach them to a system with
:meth:`repro.sim.system.SystemBuilder.with_observability`.
"""

from repro.obs.events import (
    ALL_CATEGORIES,
    CATEGORY_DRAM,
    CATEGORY_MEMCTRL,
    CATEGORY_MONITOR,
    CATEGORY_NOC,
    CATEGORY_SHAPER,
    SYSTEM_CORE,
    TraceEvent,
)
from repro.obs.export import (
    EXPOSITION_CONTENT_TYPE,
    merge_into,
    merge_serialized,
    render_jsonl,
    render_openmetrics,
    serialize_registry,
    write_jsonl,
)
from repro.obs.hub import Observability, ObservabilityConfig
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    IntervalSampler,
    MetricsRegistry,
    validate_metric_name,
)
from repro.obs.monitor import MonitorSample, ShapingMonitor, ShapingViolation
from repro.obs.profile import EngineProfiler
from repro.obs.ring import RingBuffer, make_trace_buffer
from repro.obs.server import MetricsServer, ServePublisher
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer

__all__ = [
    "EXPOSITION_CONTENT_TYPE",
    "merge_into",
    "merge_serialized",
    "render_jsonl",
    "render_openmetrics",
    "serialize_registry",
    "write_jsonl",
    "validate_metric_name",
    "EngineProfiler",
    "MetricsServer",
    "ServePublisher",
    "ALL_CATEGORIES",
    "CATEGORY_DRAM",
    "CATEGORY_MEMCTRL",
    "CATEGORY_MONITOR",
    "CATEGORY_NOC",
    "CATEGORY_SHAPER",
    "SYSTEM_CORE",
    "TraceEvent",
    "Observability",
    "ObservabilityConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "MetricsRegistry",
    "MonitorSample",
    "ShapingMonitor",
    "ShapingViolation",
    "RingBuffer",
    "make_trace_buffer",
    "NULL_TRACER",
    "EventTracer",
    "NullTracer",
]

"""Deterministic observability for the simulator stack.

``repro.obs`` provides three disabled-by-default facilities, all
stamped in simulation cycles (never wall clock) so their output is a
pure function of the run configuration:

* an event **tracer** (:class:`~repro.obs.tracer.EventTracer`) with
  ring-buffered storage and Chrome-trace / JSONL exporters, covering
  shaper credit activity, memory-controller scheduling, DRAM commands,
  and NoC grants;
* a **metrics** registry plus interval sampler
  (:mod:`repro.obs.metrics`) producing time-series that are identical
  under the per-cycle and next-event engines;
* a live **shaping monitor** (:class:`~repro.obs.monitor.ShapingMonitor`)
  computing running TVD/MI between intrinsic and shaped streams and
  flagging guarantee violations mid-run.

Attach them to a system with
:meth:`repro.sim.system.SystemBuilder.with_observability`.
"""

from repro.obs.events import (
    ALL_CATEGORIES,
    CATEGORY_DRAM,
    CATEGORY_MEMCTRL,
    CATEGORY_MONITOR,
    CATEGORY_NOC,
    CATEGORY_SHAPER,
    SYSTEM_CORE,
    TraceEvent,
)
from repro.obs.hub import Observability, ObservabilityConfig
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    IntervalSampler,
    MetricsRegistry,
)
from repro.obs.monitor import MonitorSample, ShapingMonitor, ShapingViolation
from repro.obs.ring import RingBuffer, make_trace_buffer
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer

__all__ = [
    "ALL_CATEGORIES",
    "CATEGORY_DRAM",
    "CATEGORY_MEMCTRL",
    "CATEGORY_MONITOR",
    "CATEGORY_NOC",
    "CATEGORY_SHAPER",
    "SYSTEM_CORE",
    "TraceEvent",
    "Observability",
    "ObservabilityConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalSampler",
    "MetricsRegistry",
    "MonitorSample",
    "ShapingMonitor",
    "ShapingViolation",
    "RingBuffer",
    "make_trace_buffer",
    "NULL_TRACER",
    "EventTracer",
    "NullTracer",
]

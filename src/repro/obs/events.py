"""Trace-event model: what one observable thing happening looks like.

Every event is stamped with the *simulation* cycle it occurred at —
never wall-clock time — so a trace is a pure function of the run
configuration and two runs of the same seed produce byte-identical
traces under either execution engine.  Categories partition the
simulator stack the way DESIGN.md §4's pipeline does; exporters and
the tracer's category filter both key off them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: Shaper-side events: credit replenishment, real releases, fake
#: injection, jitter holds, epoch boundaries.
CATEGORY_SHAPER = "shaper"
#: Memory-controller events: ingress enqueues and scheduler picks.
CATEGORY_MEMCTRL = "memctrl"
#: DRAM command issue: ACT / PRE / RD / WR / REF.
CATEGORY_DRAM = "dram"
#: NoC events: arbitration grants on either channel direction.
CATEGORY_NOC = "noc"
#: Live shaping-monitor checkpoints and violations.
CATEGORY_MONITOR = "monitor"
#: Resilience events: checkpoints taken, watchdog dumps, injected
#: faults, degradation-policy activations.
CATEGORY_RESILIENCE = "resilience"
#: Parallel-executor events: per-shard task lifecycle (submit, run,
#: retry, done) and result-cache hits/misses.  Stamped with the task's
#: submission index, not a simulation cycle — the executor runs
#: outside any one system's clock and the index is the deterministic
#: analogue.
CATEGORY_PARALLEL = "parallel"
#: Analysis-layer diagnostics: experiment drivers flagging surprising
#: configuration derivations (e.g. a constant-rate anchor clamped to
#: the nearest bin edge because the target interval was out of range).
CATEGORY_ANALYSIS = "analysis"
#: Multi-host dispatch events: shard leases granted/expired,
#: heartbeats, hosts retired, re-dispatches, transport faults, and
#: degradation to local execution.  Like ``parallel``, stamped with
#: the shard's submission index rather than a simulation cycle.
CATEGORY_DISPATCH = "dispatch"
#: Detectability-lab events: zoo-attacker (AUC / XCorr) threshold
#: breaches flagged at monitor checkpoints.
CATEGORY_DETECT = "detect"

ALL_CATEGORIES: Tuple[str, ...] = (
    CATEGORY_SHAPER,
    CATEGORY_MEMCTRL,
    CATEGORY_DRAM,
    CATEGORY_NOC,
    CATEGORY_MONITOR,
    CATEGORY_RESILIENCE,
    CATEGORY_PARALLEL,
    CATEGORY_ANALYSIS,
    CATEGORY_DISPATCH,
    CATEGORY_DETECT,
)

#: ``core_id`` used by events not attributable to a single core
#: (refresh, monitor checkpoints, …).
SYSTEM_CORE = -1


@dataclass(frozen=True)
class TraceEvent:
    """One cycle-stamped observation.

    ``args`` must hold only plain JSON-serialisable scalars (ints,
    floats, strings, bools): events are compared by value in the
    engine-equivalence tests and exported verbatim, so object
    references are forbidden by construction.
    """

    cycle: int
    category: str
    name: str
    core_id: int = SYSTEM_CORE
    args: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def args_dict(self) -> Dict[str, Any]:
        return dict(self.args)

    def as_jsonl_obj(self) -> Dict[str, Any]:
        """Flat dict for the JSONL exporter (one event per line)."""
        obj: Dict[str, Any] = {
            "cycle": self.cycle,
            "cat": self.category,
            "name": self.name,
            "core": self.core_id,
        }
        if self.args:
            obj["args"] = self.args_dict
        return obj

    def as_chrome_obj(self) -> Dict[str, Any]:
        """Chrome trace-event (JSON Array Format) instant event.

        ``ts`` is the simulation cycle used directly as the trace
        timestamp (microsecond units in the viewer — one cycle renders
        as one microsecond, which preserves all ordering and spacing).
        Each core gets its own thread track; system-wide events share
        track 0 of a separate "system" process.
        """
        pid, tid = _track_of(self.core_id)
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "i",
            "s": "t",
            "ts": self.cycle,
            "pid": pid,
            "tid": tid,
            "args": self.args_dict,
        }


#: Chrome trace pid for per-core tracks / system-wide tracks.
CHROME_PID_CORES = 1
CHROME_PID_SYSTEM = 2


def _track_of(core_id: int) -> Tuple[int, int]:
    if core_id >= 0:
        return CHROME_PID_CORES, core_id
    return CHROME_PID_SYSTEM, 0


def freeze_args(**args: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) representation of event args."""
    return tuple(sorted(args.items()))

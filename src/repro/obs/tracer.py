"""The cycle-stamped event tracer and its exporters.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Every instrumented component
   holds a tracer reference (the shared :data:`NULL_TRACER` by
   default) and guards each emission with ``if tracer.enabled:`` — one
   attribute load and a branch on the hot path, nothing else.
2. **Deterministic.**  Events are stamped with simulation cycles, the
   ring drops oldest-first, and category filtering is a pure set test:
   two runs of the same seed produce identical event streams under
   both execution engines (enforced by ``tests/test_engine_equivalence``).
3. **Bounded memory.**  The ring keeps the most recent
   ``limit`` events and counts what it evicts (:attr:`EventTracer.dropped`).

Exports: Chrome trace-event JSON (loads in ``chrome://tracing`` /
Perfetto) via :meth:`EventTracer.write_chrome`, and line-delimited
JSON via :meth:`EventTracer.write_jsonl`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, FrozenSet, IO, Iterable, List, Optional, Union

from repro.common.errors import ConfigurationError
from repro.obs.events import (
    ALL_CATEGORIES,
    CHROME_PID_CORES,
    CHROME_PID_SYSTEM,
    SYSTEM_CORE,
    TraceEvent,
)
from repro.obs.ring import RingBuffer


class NullTracer:
    """The disabled tracer: a shared, inert sink.

    ``enabled`` is always False; hot paths test it and skip the
    emission entirely, so an untraced run never builds an args dict or
    touches a ring buffer.  ``emit`` still exists (and does nothing)
    so cold paths may call it unconditionally.
    """

    enabled = False

    def emit(self, cycle: int, category: str, name: str,
             core_id: int = SYSTEM_CORE, **args: Any) -> None:
        pass

    def __reduce__(self):
        # Pickle to the module singleton: a checkpointed system whose
        # components share NULL_TRACER restores to components sharing
        # NULL_TRACER, not N private copies.
        return "NULL_TRACER"


#: The process-wide disabled tracer every component starts with.
NULL_TRACER = NullTracer()


class EventTracer:
    """Ring-buffered, category-filtered collector of trace events."""

    enabled = True

    def __init__(
        self,
        limit: int = 65536,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if limit <= 0:
            raise ConfigurationError("tracer limit must be positive")
        self._ring: RingBuffer[TraceEvent] = RingBuffer(limit)
        self.categories: Optional[FrozenSet[str]] = (
            frozenset(categories) if categories is not None else None
        )
        if self.categories is not None:
            unknown = self.categories - set(ALL_CATEGORIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories: {sorted(unknown)} "
                    f"(known: {list(ALL_CATEGORIES)})"
                )
        # Per-category emission counts (pre-ring, so drops don't hide
        # activity).  Insertion order is emission order: deterministic.
        self.counts: Dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def emit(self, cycle: int, category: str, name: str,
             core_id: int = SYSTEM_CORE, **args: Any) -> None:
        """Record one event (if its category passes the filter)."""
        if self.categories is not None and category not in self.categories:
            return
        self.counts[category] = self.counts.get(category, 0) + 1
        self._ring.append(
            TraceEvent(
                cycle=cycle,
                category=category,
                name=name,
                core_id=core_id,
                args=tuple(sorted(args.items())),
            )
        )

    # -- accessors -----------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return self._ring.snapshot()

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self._ring.dropped

    @property
    def total_emitted(self) -> int:
        return self._ring.total_appended

    def events_in(self, category: str) -> List[TraceEvent]:
        return [e for e in self._ring if e.category == category]

    # -- exporters -----------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The full trace as a Chrome trace-event JSON object."""
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": CHROME_PID_CORES,
                "tid": 0,
                "args": {"name": "repro cores"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": CHROME_PID_SYSTEM,
                "tid": 0,
                "args": {"name": "repro system"},
            },
        ]
        trace_events.extend(e.as_chrome_obj() for e in self._ring)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.obs",
                "clock": "simulation cycles (1 cycle = 1 us in the viewer)",
                "dropped_events": self.dropped,
                "category_counts": dict(self.counts),
            },
        }

    def write_chrome(self, destination: Union[str, IO[str]]) -> None:
        """Write the Chrome trace-event JSON to a path or stream."""
        payload = self.to_chrome()
        if hasattr(destination, "write"):
            json.dump(payload, destination)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)

    def write_jsonl(self, destination: Union[str, IO[str]]) -> None:
        """Write one JSON object per event (stream-friendly export)."""
        if hasattr(destination, "write"):
            self._write_jsonl_stream(destination)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                self._write_jsonl_stream(fh)

    def _write_jsonl_stream(self, fh: IO[str]) -> None:
        for event in self._ring:
            fh.write(json.dumps(event.as_jsonl_obj()))
            fh.write("\n")

"""Registry exporters: OpenMetrics text exposition, JSONL, shard merge.

Three things live here, all pure functions of a
:class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text
  exposition of a registry.  Families are sorted by name, labels are
  rendered in sorted key order, histogram buckets are cumulative with
  a ``+Inf`` terminator, counters are suffixed ``_total``.  The output
  is **byte-deterministic** for a given registry state: two registries
  holding the same instruments with the same values render to the same
  bytes, which is what lets the jobs=1 and jobs=N merged sweep
  registries be compared with ``cmp`` (docs/parallel.md).
* :func:`render_jsonl` / :func:`write_jsonl` — a line-delimited JSON
  snapshot of the same state (one instrument per line, sorted keys),
  for offline diffing and ingestion without a Prometheus parser.
* :func:`serialize_registry` / :func:`merge_into` /
  :func:`merge_serialized` — the shard-merge protocol of
  :mod:`repro.parallel`: each sweep worker serializes its registry
  into its (JSON-typed) result payload; the executor folds the shard
  documents into one cluster-level registry in submission order.
  Counters and histogram buckets add; gauges take the last write, so
  the merged registry — and therefore its exposition — is identical
  for every ``jobs`` value.

Registered names may contain ``.`` (the repo's namespacing separator,
e.g. ``memctrl.queue_depth``); the renderer escapes it to ``_``.
Names the exposition could never carry at all (``-``, leading digits)
are rejected earlier, at registration, by
:func:`repro.obs.metrics.validate_metric_name`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional

from repro.common.errors import ConfigurationError, MetricNameError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_metric_name,
)

__all__ = [
    "escape_family_name",
    "render_openmetrics",
    "render_jsonl",
    "write_jsonl",
    "serialize_registry",
    "merge_into",
    "merge_serialized",
    "validate_metric_name",
]

#: Content type ``repro serve`` answers ``/metrics`` with — the
#: classic Prometheus text format version, which every scraper
#: (including promtool's OpenMetrics mode) accepts for this output.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_family_name(name: str) -> str:
    """The exposition family name for a registered metric name."""
    return name.replace(".", "_")


def _format_value(value) -> str:
    """Deterministic sample-value rendering: ints as ints, floats via
    ``repr`` (shortest round-trip form, stable across CPython 3.x)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _with_le(labels: Mapping[str, str], le: str) -> str:
    merged = dict(labels)
    merged["le"] = le
    return _render_labels(merged)


def render_openmetrics(
    registry: MetricsRegistry,
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """The text exposition of ``registry``, byte-deterministic.

    ``labels`` (optional) are attached to every sample, rendered in
    sorted key order.  Counter families are suffixed ``_total``;
    histograms expose cumulative ``_bucket{le=...}`` samples plus
    ``_sum``/``_count``.  Ends with the OpenMetrics ``# EOF`` marker.
    """
    labels = dict(labels or {})
    for key in labels:
        validate_metric_name(key)
    families: Dict[str, object] = {}
    for name in registry.names():
        family = escape_family_name(name)
        if family in families:
            raise MetricNameError(
                f"metric names {name!r} and another registered name "
                f"collide on exposition family {family!r}",
                name=name,
            )
        families[family] = (name, registry._instruments[name])

    lines: List[str] = []
    for family in sorted(families):
        name, instrument = families[family]
        if isinstance(instrument, Counter):
            lines.append(f"# HELP {family} Counter {name!r} from the "
                         "repro metrics registry.")
            lines.append(f"# TYPE {family} counter")
            lines.append(
                f"{family}_total{_render_labels(labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Gauge):
            lines.append(f"# HELP {family} Gauge {name!r} from the "
                         "repro metrics registry.")
            lines.append(f"# TYPE {family} gauge")
            lines.append(
                f"{family}{_render_labels(labels)} "
                f"{_format_value(instrument.value)}"
            )
        elif isinstance(instrument, Histogram):
            lines.append(f"# HELP {family} Histogram {name!r} from the "
                         "repro metrics registry.")
            lines.append(f"# TYPE {family} histogram")
            cumulative = 0
            for edge, count in zip(instrument.edges, instrument.counts):
                cumulative += count
                lines.append(
                    f"{family}_bucket{_with_le(labels, str(edge))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{family}_bucket{_with_le(labels, '+Inf')} "
                f"{instrument.total}"
            )
            lines.append(
                f"{family}_sum{_render_labels(labels)} "
                f"{_format_value(instrument.sum)}"
            )
            lines.append(
                f"{family}_count{_render_labels(labels)} "
                f"{instrument.total}"
            )
        else:  # pragma: no cover - registry only holds the three kinds
            raise ConfigurationError(
                f"cannot render instrument kind {type(instrument).__name__}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- JSONL snapshot ---------------------------------------------------------


def _instrument_doc(name: str, instrument) -> Dict[str, object]:
    if isinstance(instrument, Counter):
        return {"name": name, "kind": "counter", "value": instrument.value}
    if isinstance(instrument, Gauge):
        return {"name": name, "kind": "gauge", "value": instrument.value}
    if isinstance(instrument, Histogram):
        return {
            "name": name,
            "kind": "histogram",
            "edges": list(instrument.edges),
            "counts": list(instrument.counts),
            "total": instrument.total,
            "sum": instrument.sum,
        }
    raise ConfigurationError(
        f"cannot serialize instrument kind {type(instrument).__name__}"
    )


def render_jsonl(registry: MetricsRegistry) -> str:
    """One canonical-JSON line per instrument, sorted by name."""
    lines = [
        json.dumps(
            _instrument_doc(name, registry._instruments[name]),
            sort_keys=True,
            separators=(",", ":"),
        )
        for name in registry.names()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(registry: MetricsRegistry, path: str) -> int:
    """Write the JSONL snapshot to ``path``; returns the line count."""
    text = render_jsonl(registry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return len(registry.names())


# -- shard serialization / merge (repro.parallel) ---------------------------

#: Schema tag of the serialized-registry documents sweep workers embed
#: in their result payloads.  Bump on layout changes so a stale cached
#: result is recognisable.
REGISTRY_DOC_VERSION = 1


def serialize_registry(registry: MetricsRegistry) -> Dict[str, object]:
    """A plain JSON document holding the registry's full state.

    Round-trips through :func:`merge_into` losslessly; embedding it in
    a sweep task's result keeps the result JSON-typed, so the parallel
    result cache stores and replays it byte-identically.
    """
    doc: Dict[str, object] = {
        "version": REGISTRY_DOC_VERSION,
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for name in registry.names():
        instrument = registry._instruments[name]
        if isinstance(instrument, Counter):
            doc["counters"][name] = instrument.value
        elif isinstance(instrument, Gauge):
            doc["gauges"][name] = instrument.value
        elif isinstance(instrument, Histogram):
            doc["histograms"][name] = {
                "edges": list(instrument.edges),
                "counts": list(instrument.counts),
                "total": instrument.total,
                "sum": instrument.sum,
            }
    return doc


def merge_into(
    registry: MetricsRegistry, doc: Mapping[str, object]
) -> MetricsRegistry:
    """Fold one serialized registry document into ``registry``.

    Counters and histogram buckets **add**; gauges take the document's
    value (last write wins).  Because the executor applies shard
    documents in submission order, the merged registry is a pure
    function of the task list — independent of ``jobs`` — and its
    exposition is byte-identical across worker counts.
    """
    version = doc.get("version")
    if version != REGISTRY_DOC_VERSION:
        raise ConfigurationError(
            f"unsupported registry document version {version!r} "
            f"(expected {REGISTRY_DOC_VERSION})"
        )
    for name in sorted(doc.get("counters", {})):
        registry.counter(name).inc(int(doc["counters"][name]))
    for name in sorted(doc.get("gauges", {})):
        registry.gauge(name).set(doc["gauges"][name])
    for name in sorted(doc.get("histograms", {})):
        entry = doc["histograms"][name]
        histogram = registry.histogram(name, tuple(entry["edges"]))
        if list(histogram.edges) != list(entry["edges"]):
            raise ConfigurationError(
                f"histogram {name!r}: shard edges {entry['edges']} do "
                f"not match merged edges {list(histogram.edges)}"
            )
        histogram.accumulate(
            [int(c) for c in entry["counts"]],
            int(entry["total"]),
            int(entry["sum"]),
        )
    return registry


def merge_serialized(
    docs: Iterable[Mapping[str, object]],
) -> MetricsRegistry:
    """A fresh registry holding the fold of ``docs`` in order."""
    registry = MetricsRegistry()
    for doc in docs:
        merge_into(registry, doc)
    return registry

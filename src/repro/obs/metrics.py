"""Metrics: counters, gauges, histograms and the interval sampler.

The registry is a flat namespace of named instruments any component
can update; the :class:`IntervalSampler` turns registered *probes*
(zero-argument callables reading live simulator state) into a
time-series sampled every ``interval`` cycles.

Engine correctness
------------------

The sampler must produce the *same* series under ``engine="cycle"``
and ``engine="next_event"``.  The per-cycle engine calls
:meth:`IntervalSampler.advance` at the end of every tick; the
next-event engine additionally calls :meth:`IntervalSampler.fill`
when it jumps the clock over a span in which no component can change
state.  Because nothing changes during a skipped span, extending the
current probe values across every sample boundary inside the span is
the exact closed form of what per-cycle stepping would have recorded —
*provided probes read only span-constant state* (queue depths, credit
registers, cumulative release/grant/row-hit counters).  Quantities
that accumulate inside ``skip_idle`` bookkeeping (per-cycle stall
counters) change mid-span and must not be probed; the default probe
set wired by ``repro.sim.system`` respects this.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError, MetricNameError

Number = Union[int, float]

#: Registered names may use letters, digits, ``_``, ``:`` and ``.``
#: (the repo's component namespacing separator) but must start with a
#: letter or underscore.  This is the Prometheus metric-name charset
#: plus ``.``, which the OpenMetrics exporter escapes to ``_`` at
#: render time (``repro.obs.export``); everything else — ``-``,
#: leading digits, whitespace — has no well-formed exposition and is
#: rejected at registration.
_METRIC_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.:]*\Z")


def validate_metric_name(name: str) -> str:
    """Return ``name`` if it can render as a Prometheus family.

    Raises :class:`~repro.common.errors.MetricNameError` otherwise —
    the typed registration-time guard that keeps the exporter from
    ever emitting a malformed family.
    """
    if not isinstance(name, str) or not _METRIC_NAME_RE.fullmatch(name):
        raise MetricNameError(
            f"invalid metric name {name!r}: must match "
            "[A-Za-z_][A-Za-z0-9_.:]* (no '-', no leading digit; '.' "
            "is escaped to '_' in the OpenMetrics exposition)",
            name=str(name),
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram over explicit upper edges.

    ``edges`` are inclusive upper bounds; values above the last edge
    land in the overflow bucket, so ``counts`` has ``len(edges) + 1``
    entries.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[int]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ConfigurationError("histogram edges must be sorted, non-empty")
        self.name = name
        self.edges: Tuple[int, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0

    def record(self, value: int) -> None:
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value

    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def accumulate(
        self, counts: Sequence[int], total: int, value_sum: int
    ) -> None:
        """Add another histogram's buckets (same edges) into this one.

        The merge primitive the registry serializer uses to fold shard
        registries together (``repro.obs.export.merge_into``).
        """
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram {self.name!r}: cannot accumulate "
                f"{len(counts)} buckets into {len(self.counts)}"
            )
        for index, count in enumerate(counts):
            self.counts[index] += count
        self.total += total
        self.sum += value_sum

    def load(
        self, counts: Sequence[int], total: int, value_sum: int
    ) -> None:
        """Replace this histogram's contents (idempotent exports).

        Used by publishers that re-export an externally-maintained
        histogram (e.g. the engine profiler's skip-span counts) on
        every publish cadence: ``load`` sets absolute values where
        :meth:`accumulate` would double-count.
        """
        if len(counts) != len(self.counts):
            raise ConfigurationError(
                f"histogram {self.name!r}: cannot load {len(counts)} "
                f"buckets into {len(self.counts)}"
            )
        self.counts = list(counts)
        self.total = total
        self.sum = value_sum


class MetricsRegistry:
    """Flat, name-keyed registry of instruments.

    Re-requesting an existing name returns the same instrument (so
    components can be wired independently); requesting it as a
    different kind is an error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: type, factory: Callable[[], object]):
        validate_metric_name(name)
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[int]) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, edges))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def as_dict(self) -> Dict[str, object]:
        """Plain-value snapshot (for reports and the stats CLI)."""
        out: Dict[str, object] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {
                    "edges": list(instrument.edges),
                    "counts": list(instrument.counts),
                    "mean": instrument.mean(),
                }
            else:
                out[name] = instrument.value  # type: ignore[union-attr]
        return out


class IntervalSampler:
    """Samples registered probes every ``interval`` cycles.

    A sample stamped at cycle ``s`` reflects simulator state after the
    tick that ran at cycle ``s`` (or, in a skipped span, the closed-form
    extension of the state at the span's start — identical by the
    next-event engine's no-state-change guarantee).
    """

    def __init__(self, interval: int, limit: Optional[int] = None) -> None:
        if interval <= 0:
            raise ConfigurationError("sample interval must be positive")
        if limit is not None and limit <= 0:
            raise ConfigurationError("sample limit must be positive")
        self.interval = interval
        self._next = interval
        self._probes: List[Tuple[str, Callable[[], Number]]] = []
        from repro.obs.ring import RingBuffer

        self._samples: "RingBuffer[Tuple[int, Tuple[Number, ...]]]" = (
            RingBuffer(limit)
        )

    def add_probe(self, name: str, fn: Callable[[], Number]) -> None:
        """Register a probe; ``fn`` must read only span-constant state."""
        validate_metric_name(name)
        if any(existing == name for existing, _ in self._probes):
            raise ConfigurationError(f"duplicate probe name {name!r}")
        self._probes.append((name, fn))

    @property
    def probe_names(self) -> List[str]:
        return [name for name, _ in self._probes]

    @property
    def probes(self) -> List[Tuple[str, Callable[[], Number]]]:
        """(name, fn) pairs in registration order (for gauge export)."""
        return list(self._probes)

    @property
    def next_sample_cycle(self) -> int:
        return self._next

    def _take(self, stamp: int) -> None:
        self._samples.append(
            (stamp, tuple(fn() for _, fn in self._probes))
        )

    def advance(self, cycle: int) -> None:
        """Record any sample boundaries reached by the tick at ``cycle``."""
        while cycle >= self._next:
            self._take(self._next)
            self._next += self.interval

    def fill(self, up_to_cycle: int) -> None:
        """Closed-form fill across a skipped span ending at ``up_to_cycle``.

        Emits a sample for every boundary in the span with the current
        probe values — exact because the next-event engine only skips
        spans in which no component state changes.
        """
        while self._next <= up_to_cycle:
            self._take(self._next)
            self._next += self.interval

    # -- accessors -----------------------------------------------------------

    @property
    def samples(self) -> List[Tuple[int, Tuple[Number, ...]]]:
        """(cycle, values) tuples, oldest first; values align with
        :attr:`probe_names`."""
        return self._samples.snapshot()

    @property
    def dropped(self) -> int:
        return self._samples.dropped

    def series(self, name: str) -> List[Tuple[int, Number]]:
        """The time-series of one probe as (cycle, value) pairs."""
        try:
            index = self.probe_names.index(name)
        except ValueError:
            raise ConfigurationError(f"unknown probe {name!r}") from None
        return [(cycle, values[index]) for cycle, values in self._samples]

    def rows(self) -> List[List[Number]]:
        """Table rows ``[cycle, v0, v1, ...]`` (for the stats CLI)."""
        return [
            [cycle, *values] for cycle, values in self._samples
        ]

"""The observability hub: configuration and per-system wiring root.

One :class:`Observability` instance is attached to one
:class:`~repro.sim.system.System` by
:meth:`~repro.sim.system.SystemBuilder.with_observability`.  It owns
the event tracer, the metrics registry + interval sampler, and the
live shaping monitor; the builder hands its tracer to every
instrumented component and registers the default probe set.

Everything is disabled by default: a system built without
``with_observability`` carries no hub at all, components keep the
shared :data:`~repro.obs.tracer.NULL_TRACER`, and the run loop skips
the sampling hooks entirely — reports stay bit-identical to an
uninstrumented build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.obs.events import ALL_CATEGORIES
from repro.obs.metrics import IntervalSampler, MetricsRegistry
from repro.obs.monitor import ShapingMonitor
from repro.obs.profile import EngineProfiler
from repro.obs.tracer import NULL_TRACER, EventTracer


@dataclass(frozen=True)
class ObservabilityConfig:
    """What to observe, and how much memory to spend on it.

    ``trace`` enables the event tracer (``trace_categories=None``
    records everything; otherwise a subset of
    :data:`~repro.obs.events.ALL_CATEGORIES`).  ``sample_interval``
    enables the metrics time-series at that cycle period.  ``monitor``
    enables the live shaping monitor.  ``noc_grant_trace_limit``
    bounds the NoC channels' adversary-visible grant traces — the
    observability-owned successor of the deprecated
    ``with_noc(trace_limit=...)`` knob.  ``profile`` enables the
    deterministic engine self-profiler (:mod:`repro.obs.profile`);
    its counters live outside reports/digests, so turning it on never
    perturbs results.
    """

    trace: bool = False
    trace_limit: int = 65536
    trace_categories: Optional[Tuple[str, ...]] = None
    sample_interval: Optional[int] = None
    sample_limit: Optional[int] = None
    monitor: bool = False
    monitor_interval: int = 2048
    monitor_tvd_threshold: float = 0.25
    monitor_min_events: int = 32
    monitor_mi_window: int = 4096
    monitor_detect: bool = False
    monitor_detect_window: int = 256
    monitor_detect_min_pairs: int = 32
    monitor_auc_threshold: float = 0.8
    monitor_xcorr_threshold: float = 0.9
    monitor_detect_seed: int = 0
    monitor_final_min_pairs: int = 8
    noc_grant_trace_limit: Optional[int] = None
    profile: bool = False

    def __post_init__(self) -> None:
        if self.trace_limit <= 0:
            raise ConfigurationError("trace_limit must be positive")
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")
        if (
            self.noc_grant_trace_limit is not None
            and self.noc_grant_trace_limit <= 0
        ):
            raise ConfigurationError("noc_grant_trace_limit must be positive")
        if self.trace_categories is not None:
            unknown = set(self.trace_categories) - set(ALL_CATEGORIES)
            if unknown:
                raise ConfigurationError(
                    f"unknown trace categories: {sorted(unknown)}"
                )


class Observability:
    """Tracer + metrics + monitor bundle for one system."""

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config or ObservabilityConfig()
        self.tracer = (
            EventTracer(
                limit=self.config.trace_limit,
                categories=self.config.trace_categories,
            )
            if self.config.trace
            else NULL_TRACER
        )
        self.metrics = MetricsRegistry()
        self.sampler: Optional[IntervalSampler] = (
            IntervalSampler(
                self.config.sample_interval, limit=self.config.sample_limit
            )
            if self.config.sample_interval is not None
            else None
        )
        self.monitor: Optional[ShapingMonitor] = (
            ShapingMonitor(
                interval=self.config.monitor_interval,
                tvd_threshold=self.config.monitor_tvd_threshold,
                min_events=self.config.monitor_min_events,
                mi_window=self.config.monitor_mi_window,
                tracer=self.tracer,
                detect=self.config.monitor_detect,
                detect_window=self.config.monitor_detect_window,
                detect_min_pairs=self.config.monitor_detect_min_pairs,
                auc_threshold=self.config.monitor_auc_threshold,
                xcorr_threshold=self.config.monitor_xcorr_threshold,
                detect_seed=self.config.monitor_detect_seed,
                final_min_pairs=self.config.monitor_final_min_pairs,
            )
            if self.config.monitor
            else None
        )
        if self.monitor is not None:
            self.monitor.bind_metrics(self.metrics)
        self.profiler: Optional[EngineProfiler] = (
            EngineProfiler() if self.config.profile else None
        )
        # The serve publisher (repro.obs.server.ServePublisher) is
        # attached at run time, holds thread/socket handles, and is
        # excluded from pickling — see __getstate__.
        self.publisher = None

    @property
    def has_cycle_hooks(self) -> bool:
        """Does the run loop need to call the per-tick hooks at all?"""
        return (
            self.sampler is not None
            or self.monitor is not None
            or self.publisher is not None
        )

    def attach_publisher(self, publisher) -> None:
        """Install (or clear, with ``None``) the serve publisher."""
        self.publisher = publisher

    # -- run-loop hooks (called by System) ---------------------------------

    def on_cycle_end(self, cycle: int) -> None:
        """End of the tick that ran at ``cycle``."""
        if self.sampler is not None:
            self.sampler.advance(cycle)
        if self.monitor is not None:
            self.monitor.advance(cycle)
        if self.publisher is not None:
            self.publisher.advance(cycle)

    def on_skip(self, up_to_cycle: int) -> None:
        """A next-event skip is landing; fill boundaries ≤ ``up_to_cycle``."""
        if self.sampler is not None:
            self.sampler.fill(up_to_cycle)
        if self.monitor is not None:
            self.monitor.fill(up_to_cycle)
        if self.publisher is not None:
            self.publisher.fill(up_to_cycle)

    def on_run_end(self, cycle: int) -> None:
        """The run loop finished at ``cycle``; evaluate the monitor's
        final partial window (overwrite semantics — safe to call again
        after a resumed continuation, see ShapingMonitor.finalize)."""
        if self.monitor is not None:
            self.monitor.finalize(cycle)

    # -- export (serve publisher / repro profile) ---------------------------

    def refresh_derived_gauges(self, at_cycle: int) -> None:
        """Materialise derived registry families before an export.

        Probe values become same-named gauges (the live complement of
        the sampler's time series), and the profiler's families are
        re-exported.  Called only on the export paths — between cycles
        from the publisher cadence, or once by ``repro profile`` — so
        a system that never exports keeps its registry exactly as the
        components wrote it.
        """
        self.metrics.gauge("obs.published_cycle").set(at_cycle)
        if self.sampler is not None:
            for name, fn in self.sampler.probes:
                self.metrics.gauge(name).set(fn())
        if self.profiler is not None:
            self.profiler.export_to(self.metrics)

    def render_exposition(self, at_cycle: int) -> str:
        """Refresh derived gauges and render the OpenMetrics text."""
        from repro.obs.export import render_openmetrics

        self.refresh_derived_gauges(at_cycle)
        return render_openmetrics(self.metrics)

    def monitor_doc(self) -> Dict[str, Any]:
        """Live shaping-monitor state for the ``/monitor`` endpoint."""
        if self.monitor is None:
            return {"enabled": False}
        monitor = self.monitor
        streams = []
        for stream in monitor._streams:
            sample = monitor._display_sample(stream.core_id, stream.direction)
            if sample is None:
                continue
            streams.append({
                "core_id": sample.core_id,
                "direction": sample.direction,
                "cycle": sample.cycle,
                "events_observed": sample.events_observed,
                "tvd_target": sample.tvd_target,
                "tvd_intrinsic": sample.tvd_intrinsic,
                "mi_bits": sample.mi_bits,
                "mi_degenerate": sample.mi_degenerate,
                "auc": sample.auc,
                "xcorr": sample.xcorr,
            })
        return {
            "enabled": True,
            "checkpoints": len(monitor.history),
            "detect": monitor.detect,
            "streams": streams,
            "violations": [
                {
                    "cycle": v.cycle,
                    "core_id": v.core_id,
                    "direction": v.direction,
                    "tvd_target": v.tvd_target,
                    "threshold": v.threshold,
                    "events_observed": v.events_observed,
                }
                for v in monitor.violations + monitor.final_violations
            ],
            "detect_violations": [
                {
                    "cycle": v.cycle,
                    "core_id": v.core_id,
                    "direction": v.direction,
                    "metric": v.metric,
                    "value": v.value,
                    "threshold": v.threshold,
                }
                for v in (
                    monitor.detect_violations
                    + monitor.final_detect_violations
                )
            ],
            "degradations": [
                {
                    "cycle": d.cycle,
                    "core_id": d.core_id,
                    "direction": d.direction,
                    "reason": d.reason,
                    "detail": d.detail,
                }
                for d in monitor.degradations
            ],
        }

    # -- pickling (snapshots) ------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Snapshots must restore on machines with no server running:
        drop the publisher (thread/socket handles).  The profiler
        persists via its own reduced ``__getstate__``."""
        state = dict(self.__dict__)
        state["publisher"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self.publisher = None

    # -- reporting -----------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Counts-and-state snapshot (for the trace/stats CLIs)."""
        out: Dict[str, Any] = {"metrics": self.metrics.as_dict()}
        if isinstance(self.tracer, EventTracer):
            out["trace"] = {
                "events_retained": len(self.tracer.events),
                "events_emitted": self.tracer.total_emitted,
                "dropped": self.tracer.dropped,
                "category_counts": dict(self.tracer.counts),
            }
        if self.sampler is not None:
            out["samples"] = {
                "count": len(self.sampler.samples),
                "interval": self.sampler.interval,
                "probes": self.sampler.probe_names,
                "dropped": self.sampler.dropped,
            }
        if self.monitor is not None:
            out["monitor"] = {
                "checkpoints": len(self.monitor.history),
                "violations": self.monitor.violation_count,
                "detect_violations": self.monitor.detect_violation_count,
            }
        return out

"""Bounded ring buffers for observability state.

Two consumers share this module: the event tracer (a
:class:`RingBuffer` that counts what it drops, so a truncated trace is
detectable) and the NoC grant traces (:func:`make_trace_buffer`, the
one place that decides how a bounded-vs-unbounded trace container is
built — previously duplicated ad hoc in ``repro.noc.link`` and
``repro.noc.mesh``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar, Union

from repro.common.errors import ConfigurationError

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """Append-only buffer keeping the most recent ``capacity`` items.

    ``capacity=None`` keeps everything.  :attr:`dropped` counts items
    evicted by the bound, so consumers can tell a complete trace from
    a truncated one.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("ring capacity must be positive")
        self.capacity = capacity
        self._items: Deque[T] = deque(maxlen=capacity)
        self.dropped = 0
        self.total_appended = 0

    def append(self, item: T) -> None:
        if self.capacity is not None and len(self._items) == self.capacity:
            self.dropped += 1
        self._items.append(item)
        self.total_appended += 1

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def snapshot(self) -> List[T]:
        """The retained items, oldest first, as a new list."""
        return list(self._items)

    def drain(self) -> List[T]:
        """Hand over the retained items and reset the buffer."""
        items = list(self._items)
        self._items.clear()
        return items


def make_trace_buffer(
    limit: Optional[int],
) -> Union[List, Deque]:
    """Container for a component-local trace (NoC grant traces).

    ``None`` returns a plain list — the unbounded container the
    security benchmarks index and slice freely; a positive ``limit``
    returns a bounded ring of the most recent entries.  Kept as the
    raw ``list``/``deque`` types (rather than :class:`RingBuffer`) for
    backward compatibility with every existing consumer of
    ``grant_trace``.
    """
    if limit is None:
        return []
    if limit <= 0:
        raise ConfigurationError("trace_limit must be positive")
    return deque(maxlen=limit)

"""Bandwidth accounting over link grant traces.

Utilities to turn a link's ``(cycle, port, transaction)`` grant trace
into per-core bandwidth series and utilization summaries — the raw
material of the paper's traffic plots (Figures 14/15 are exactly a
per-window bandwidth series of one core).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError


def bandwidth_series(
    grant_trace: Sequence[Tuple[int, int, object]],
    window_cycles: int,
    total_cycles: int,
    port: int = None,
    line_bytes: int = 64,
) -> np.ndarray:
    """Bytes transferred per window (optionally for one port only)."""
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    if total_cycles <= 0:
        raise ConfigurationError("total_cycles must be positive")
    num_windows = max(1, total_cycles // window_cycles)
    series = np.zeros(num_windows, dtype=np.int64)
    for cycle, grant_port, _txn in grant_trace:
        if port is not None and grant_port != port:
            continue
        index = cycle // window_cycles
        if 0 <= index < num_windows:
            series[index] += line_bytes
    return series


def per_core_bandwidth(
    grant_trace: Sequence[Tuple[int, int, object]],
    total_cycles: int,
    line_bytes: int = 64,
) -> Dict[int, float]:
    """Average bytes/cycle per port over the whole run."""
    if total_cycles <= 0:
        raise ConfigurationError("total_cycles must be positive")
    totals: Dict[int, int] = {}
    for _cycle, port, _txn in grant_trace:
        totals[port] = totals.get(port, 0) + line_bytes
    return {port: total / total_cycles for port, total in totals.items()}


def fake_traffic_fraction(
    grant_trace: Sequence[Tuple[int, int, object]],
    port: int = None,
) -> float:
    """Fraction of granted transactions that were fake.

    The cost side of Camouflage's ledger: every fake grant is
    bandwidth spent purely on hiding.
    """
    total = 0
    fake = 0
    for _cycle, grant_port, txn in grant_trace:
        if port is not None and grant_port != port:
            continue
        total += 1
        if getattr(txn, "is_fake", False):
            fake += 1
    return fake / total if total else 0.0


def utilization(
    grant_trace: Sequence[Tuple[int, int, object]],
    total_cycles: int,
) -> float:
    """Fraction of cycles the link granted a transaction."""
    if total_cycles <= 0:
        raise ConfigurationError("total_cycles must be positive")
    return min(1.0, len(grant_trace) / total_cycles)


def burstiness_index(series: Sequence[float]) -> float:
    """Coefficient of variation of a bandwidth series.

    ~0 for shaped constant traffic, large for ON/OFF patterns — a
    scalar summary of what shaping did to the envelope.
    """
    values = np.asarray(series, dtype=float)
    if values.size == 0:
        return 0.0
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.std() / mean)

"""Columnar next-event engine: batched horizon ledger, selective ticks.

``System.run(engine="next_event")`` (PR 1) skips idle *spans* but still
advances events one Python object at a time inside each stepped cycle:
every component is ticked and every ``next_event_cycle`` re-polled,
even for stations that provably cannot act.  This module rebuilds that
hot path around **columnar state**: one numpy structured array — the
*horizon ledger* — holds every station's next-event horizon, dirty
flag, kind and owning core, so the per-step scheduling decisions
(the min-reduction that picks the next stepped cycle, the runnable
set) operate on whole columns instead of a Python object walk.

Selected via ``System.run(engine="columnar")``.

Station model
-------------
Every pipeline stage of :meth:`System.tick` is a *station* with a row
in the ledger::

    row      station              kind
    -------  -------------------  ------------
    0..n-1   cores                KIND_CORE
    n..2n-1  request paths        KIND_REQ_PATH
    2n       request link         KIND_REQ_LINK
    2n+1     memory controller    KIND_CONTROLLER
    2n+2..   response paths       KIND_RESP_PATH
    3n+2     response link        KIND_RESP_LINK
    3n+3     fault injector       KIND_INJECTOR   (only when wired)

Each stepped cycle runs a station iff its cached horizon is due
(``horizon <= cycle``) **or** an upstream station fed it this cycle
(a core that ran feeds its request path; any request path feeds the
request link; fresh enqueues feed the controller; egress pops feed a
response path; any response path feeds the response link).  A station
that runs — or receives input — is marked *dirty* and only dirty rows
have ``next_event_cycle`` re-polled after the tick; clean horizons
stay cached.  This is the fix for the ``min()``-over-stations scan:
the per-cycle cost is proportional to the number of stations that
actually changed, not the station count.

Bit-identity
------------
The engine is bit-identical to ``engine="next_event"`` (and therefore
to ``engine="cycle"``) by construction:

* The stepped-cycle sequence is identical: the skip decision uses the
  same per-station ``next_event_cycle`` contracts, the same
  cross-station couplings (staged requests the controller can take,
  egress responses a path can buffer) and the same watchdog /
  checkpoint caps as :meth:`System._next_event_target`.
* Within a stepped cycle, stations run in exactly the
  :meth:`System.tick` order; a *skipped* station's tick would have
  been a pure no-op (its horizon is in the future and nothing fed it),
  except for per-cycle bookkeeping — cores and request paths replay
  that via their ``skip_idle(cycle, cycle + 1)`` contracts, exactly as
  :meth:`System._skip_idle_span` does across longer spans.
* Any cycle on which the fault injector may act falls back to the full
  :meth:`System.tick` (and marks every station dirty), so fault
  scenarios execute the injection order unchanged.

The min-reduction over the horizon column goes through
:mod:`repro.sim._kernels`: numpy by default, a ``numba.njit`` loop
when ``REPRO_NUMBA=1`` and numba is installed (graceful numpy fallback
when it is not).  For small systems without a jit the engine uses a
plain Python ``min`` over its scalar mirror of the column — numpy's
per-call overhead beats its throughput below a few dozen rows — which
is exact-integer either way, so engine output does not depend on the
reduction path.

Scheduler contract note: skipping the controller on event-free cycles
assumes ``Scheduler.tick`` is pure bookkeeping that tolerates not
being called on cycles where no transaction can advance; every shipped
scheduler's ``tick`` is a no-op hook.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.obs.tracer import NULL_TRACER
from repro.resilience.watchdog import Watchdog
from repro.sim._kernels import NO_EVENT, get_kernels

KIND_CORE = 0
KIND_REQ_PATH = 1
KIND_REQ_LINK = 2
KIND_CONTROLLER = 3
KIND_RESP_PATH = 4
KIND_RESP_LINK = 5
KIND_INJECTOR = 6

#: One ledger row per station.  ``horizon`` is the cached
#: ``next_event_cycle`` (``NO_EVENT`` for "none"); ``dirty`` marks rows
#: whose horizon must be re-polled; ``kind``/``core`` describe the
#: station for diagnostics and batched per-kind selections.
STATION_DTYPE = np.dtype(
    [
        ("horizon", np.int64),
        ("dirty", np.bool_),
        ("kind", np.uint8),
        ("core", np.int16),
    ]
)

# Below this station count a Python ``min`` over the scalar mirror is
# faster than a numpy reduction (per-call overhead dominates); the
# compiled kernel wins at any size.
_VECTOR_MIN_CUTOFF = 32


class ColumnarEngine:
    """One ``run()`` window of a :class:`~repro.sim.system.System`.

    Built fresh per ``System.run(engine="columnar")`` call (systems can
    be reconfigured between windows, e.g. by the GA), holds no state
    the System's own snapshot/resume path needs — checkpoints pickle
    the System exactly as under the other engines.
    """

    def __init__(self, system) -> None:
        self.system = system
        n = len(system.cores)
        self._n = n
        self._req0 = n
        self._reqlink = 2 * n
        self._ctrl = 2 * n + 1
        self._resp0 = 2 * n + 2
        self._resplink = 3 * n + 2
        stations: List = list(system.cores)
        stations.extend(system.request_paths)
        stations.append(system.request_link)
        stations.append(system.controller)
        stations.extend(system.response_paths)
        stations.append(system.response_link)
        self._inj: Optional[int] = None
        if system._fault_hooks:
            stations.append(system.resilience.injector)
            self._inj = len(stations) - 1
        self._stations = stations
        size = len(stations)
        self._size = size

        ledger = np.zeros(size, dtype=STATION_DTYPE)
        kinds = (
            [KIND_CORE] * n
            + [KIND_REQ_PATH] * n
            + [KIND_REQ_LINK, KIND_CONTROLLER]
            + [KIND_RESP_PATH] * n
            + [KIND_RESP_LINK]
        )
        cores_col = (
            list(range(n)) + list(range(n)) + [-1, -1] + list(range(n)) + [-1]
        )
        if self._inj is not None:
            kinds.append(KIND_INJECTOR)
            cores_col.append(-1)
        ledger["kind"] = kinds
        ledger["core"] = cores_col
        ledger["horizon"] = NO_EVENT
        ledger["dirty"] = True
        self.ledger = ledger
        self._col = ledger["horizon"]

        # Scalar mirrors of the ledger columns.  The numpy rows stay
        # authoritative for the batched reductions; the mirrors keep
        # the per-station scalar reads in the inner loop at list-index
        # cost instead of numpy-scalar boxing cost.
        self._h: List[int] = [NO_EVENT] * size
        self._dirty: List[bool] = [True] * size
        self._next_event = [s.next_event_cycle for s in stations]
        self._core_tick = [c.tick for c in system.cores]
        self._core_skip = [c.skip_idle for c in system.cores]
        self._path_tick = [p.tick for p in system.request_paths]
        self._path_skip = [
            getattr(p, "skip_idle", None) for p in system.request_paths
        ]
        self._resp_tick = [p.tick for p in system.response_paths]
        # Request-path buffer occupancy before the cores run, compared
        # after: a change means the core fed the path this cycle.
        self._path_occ = [0] * n
        self._done = [c.done for c in system.cores]
        self._undone = sum(1 for d in self._done if not d)

        self._kernels = get_kernels()
        self._vector_min = (
            self._kernels.jit_active or size >= _VECTOR_MIN_CUTOFF
        )

        # Engine self-profiler (repro.obs.profile).  ``None`` keeps
        # every instrumentation site behind a single falsy local check
        # so the disabled path stays at branch cost.
        obs = system.observability
        self._prof = obs.profiler if obs is not None else None
        names = (
            [f"core{i}" for i in range(n)]
            + [f"req_path{i}" for i in range(n)]
            + ["req_link", "memctrl"]
            + [f"resp_path{i}" for i in range(n)]
            + ["resp_link"]
        )
        if self._inj is not None:
            names.append("injector")
        self._station_names = names

    # -- ledger maintenance ---------------------------------------------

    def _refresh_horizons(self, cycle: int) -> None:
        """Re-poll ``next_event_cycle`` for dirty rows only."""
        h = self._h
        col = self._col
        dirty = self._dirty
        poll = self._next_event
        prof = self._prof
        if prof is not None:
            repolled = 0
            for i in range(self._size):
                if dirty[i]:
                    event = poll[i](cycle)
                    value = NO_EVENT if event is None else event
                    h[i] = value
                    col[i] = value
                    dirty[i] = False
                    repolled += 1
            prof.record_horizon_refresh(repolled)
            return
        for i in range(self._size):
            if dirty[i]:
                event = poll[i](cycle)
                value = NO_EVENT if event is None else event
                h[i] = value
                col[i] = value
                dirty[i] = False

    def _mark_all_dirty(self) -> None:
        dirty = self._dirty
        for i in range(self._size):
            dirty[i] = True

    def _min_horizon(self) -> int:
        if self._vector_min:
            return int(self._kernels.min_horizon(self._col))
        return min(self._h)

    def runnable_count(self, cycle: int) -> int:
        """Stations due at ``cycle`` (diagnostic; batched via kernel)."""
        return self._kernels.runnable_count(self._col, cycle)

    # -- stepping --------------------------------------------------------

    def _step(self) -> None:
        """One stepped cycle: run due/fed stations in tick order."""
        sys_ = self.system
        cycle = sys_.current_cycle
        h = self._h
        dirty = self._dirty
        n = self._n
        prof = self._prof
        names = self._station_names

        if self._inj is not None and h[self._inj] <= cycle:
            # The injector may mutate arbitrary stations this cycle
            # (bursts into shapers, staging floods, link stalls); run
            # the canonical full tick and re-poll everything.
            if prof is not None:
                prof.record_full_tick_fallback()
                prof.record_station("injector", ticks=1)
            sys_.tick()
            self._mark_all_dirty()
            done = self._done
            undone = 0
            for i, core in enumerate(sys_.cores):
                done[i] = core.done
                if not done[i]:
                    undone += 1
            self._undone = undone
            return

        stations = self._stations
        done = self._done
        path_occ = self._path_occ
        req0 = self._req0
        for i in range(n):
            path_occ[i] = stations[req0 + i].occupancy
            if done[i]:
                continue
            if h[i] <= cycle:
                self._core_tick[i](cycle)
                dirty[i] = True
                if prof is not None:
                    prof.record_station(names[i], ticks=1)
                if stations[i].done:
                    done[i] = True
                    self._undone -= 1
            else:
                # Provably a bookkeeping-only cycle for this core:
                # replay it in closed form (same contract the span
                # skip uses, over a one-cycle span).
                self._core_skip[i](cycle, cycle + 1)
                if prof is not None:
                    prof.record_station(names[i], skips=1)

        any_path_ran = False
        for i in range(n):
            j = req0 + i
            if h[j] <= cycle or stations[j].occupancy != path_occ[i]:
                self._path_tick[i](cycle)
                dirty[j] = True
                any_path_ran = True
                if prof is not None:
                    prof.record_station(names[j], ticks=1)
            else:
                skip = self._path_skip[i]
                if skip is not None:
                    skip(cycle, cycle + 1)
                if prof is not None:
                    prof.record_station(names[j], skips=1)

        controller = sys_.controller
        staging = sys_._mc_staging
        j = self._reqlink
        if h[j] <= cycle or any_path_ran:
            link = sys_.request_link
            link.tick(
                cycle,
                dest_ready=controller.can_accept() and not staging,
            )
            dirty[j] = True
            if prof is not None:
                prof.record_station("req_link", ticks=1)
            for txn in link.pop_arrivals(cycle):
                staging.append(txn)
        elif prof is not None:
            prof.record_station("req_link", skips=1)

        fed_controller = False
        if staging and controller.can_accept():
            while staging and controller.can_accept():
                controller.enqueue(staging.popleft(), cycle)
            fed_controller = True
        if h[self._ctrl] <= cycle or fed_controller:
            controller.tick(cycle)
            dirty[self._ctrl] = True
            if prof is not None:
                prof.record_station("memctrl", ticks=1)
        elif prof is not None:
            prof.record_station("memctrl", skips=1)

        any_resp_ran = False
        for i in range(n):
            j = self._resp0 + i
            path = stations[j]
            fed_path = False
            if controller.pending_response_count(i):
                while path.can_accept():
                    popped = controller.pop_responses(i, limit=1)
                    if not popped:
                        break
                    path.push_response(popped[0], cycle)
                    fed_path = True
                if fed_path:
                    # Freed egress room can unfence this core's
                    # transactions; the controller's horizon must be
                    # re-polled even if it did not run.
                    dirty[self._ctrl] = True
            if h[j] <= cycle or fed_path:
                self._resp_tick[i](cycle)
                dirty[j] = True
                any_resp_ran = True
                if prof is not None:
                    prof.record_station(names[j], ticks=1)
            elif prof is not None:
                prof.record_station(names[j], skips=1)

        j = self._resplink
        if h[j] <= cycle or any_resp_ran:
            link = sys_.response_link
            link.tick(cycle)
            dirty[j] = True
            if prof is not None:
                prof.record_station("resp_link", ticks=1)
            for txn in link.pop_arrivals(cycle):
                sys_._deliver(txn, cycle)
                core_id = txn.core_id
                # A fill wakes the core and may queue writebacks into
                # its request path.
                dirty[core_id] = True
                dirty[self._req0 + core_id] = True
        elif prof is not None:
            prof.record_station("resp_link", skips=1)

        if sys_._obs_cycle_hooks:
            sys_.observability.on_cycle_end(cycle)
        sys_.current_cycle = cycle + 1

    def _next_target(self, limit: int) -> Optional[int]:
        """Mirror of :meth:`System._next_event_target` on the ledger."""
        sys_ = self.system
        cycle = sys_.current_cycle
        controller = sys_.controller
        if sys_._mc_staging and controller.can_accept():
            return None
        response_paths = sys_.response_paths
        for i in range(self._n):
            if response_paths[i].can_accept() and (
                controller.pending_response_count(i)
            ):
                return None
        earliest = self._min_horizon()
        if earliest <= cycle:
            return None
        return earliest if earliest < limit else limit

    # -- run loop --------------------------------------------------------

    def run(
        self,
        max_cycles: int,
        stop_when_done: bool = True,
        watchdog_cycles: int = 200_000,
    ):
        """Mirror of :meth:`System.run`'s next-event loop, ledger-driven."""
        sys_ = self.system
        res = sys_.resilience
        checkpoint_every = 0
        watchdog_dump_path = ""
        if res is not None:
            checkpoint_every = res.config.checkpoint_every
            watchdog_dump_path = res.config.watchdog_dump_path
            if res.config.watchdog_cycles is not None:
                watchdog_cycles = res.config.watchdog_cycles
        watchdog = Watchdog(
            watchdog_cycles,
            dump_path=watchdog_dump_path,
            tracer=(
                sys_.observability.tracer
                if sys_.observability is not None
                else NULL_TRACER
            ),
        )
        watchdog.reset(sys_)
        obs = sys_.observability
        if obs is not None and obs.publisher is not None:
            # Serve mode only — see System.run: the stall margin is
            # observe-cadence-dependent, hence engine-variant.
            watchdog.bind_metrics(obs.metrics)
        prof = self._prof
        if prof is not None:
            prof.begin_run("columnar", sys_.current_cycle)
        try:
            end = sys_.current_cycle + max_cycles
            self._refresh_horizons(sys_.current_cycle)
            while sys_.current_cycle < end:
                if stop_when_done and not self._undone:
                    break
                self._step()
                if (
                    checkpoint_every
                    and sys_.current_cycle % checkpoint_every == 0
                ):
                    res.take_checkpoint(sys_)
                self._refresh_horizons(sys_.current_cycle)
                skipped = False
                if sys_.current_cycle < end and not (
                    stop_when_done and not self._undone
                ):
                    target = self._next_target(end)
                    if watchdog_cycles and target is not None:
                        target = min(
                            target, watchdog.horizon(sys_.current_cycle)
                        )
                    if checkpoint_every and target is not None:
                        target = min(
                            target,
                            res.next_checkpoint_boundary(sys_.current_cycle),
                        )
                    if target is not None and target > sys_.current_cycle:
                        if prof is not None:
                            prof.record_skip(target - sys_.current_cycle)
                        sys_._skip_idle_span(target)
                        skipped = True
                        if (
                            checkpoint_every
                            and sys_.current_cycle % checkpoint_every == 0
                        ):
                            res.take_checkpoint(sys_)
                if watchdog_cycles and (
                    skipped or (sys_.current_cycle & 0xFF) == 0
                ):
                    watchdog.observe(sys_)
        finally:
            if prof is not None:
                prof.end_run(sys_.current_cycle)
        if obs is not None:
            obs.on_run_end(sys_.current_cycle)
        return sys_.report()

"""Compiled inner-loop kernels for the columnar engine (optional numba).

The columnar engine (:mod:`repro.sim.columnar`) keeps every station's
next-event horizon in one numpy column and needs two reductions per
stepped cycle: the minimum horizon (the next cycle anything in the
system can change) and the count of stations runnable at the current
cycle.  Both are expressed here as standalone array kernels so they
can be swapped between a numpy implementation (always available) and a
``numba.njit``-compiled loop.

Feature flag
------------
Set ``REPRO_NUMBA=1`` in the environment to request the compiled
kernels.  When numba is not installed the request **degrades
gracefully** to the numpy implementations — no error, no warning spam,
just :data:`Kernels.jit_active` staying ``False`` (the columnar smoke
test asserts this exact behaviour).  Both implementations are pure
integer reductions with a single exact result, so engine output is
bit-identical either way.

All horizons are integer cycle counts (``int64``); ``NO_EVENT`` is the
``int64`` sentinel for "this station has no pending event".  No float
ever touches a cycle value — the integer-cycle contract (RL002) holds
at this API boundary and inside the kernels.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

#: Sentinel horizon for a station with no pending event (int64 max, so
#: it never wins a min-reduction against a real cycle number).
NO_EVENT = int(np.iinfo(np.int64).max)

ENV_FLAG = "REPRO_NUMBA"


def _min_horizon_numpy(horizons: np.ndarray) -> int:
    """Minimum horizon over the station column (exact, integer)."""
    return int(horizons.min())


def _runnable_count_numpy(horizons: np.ndarray, cycle: int) -> int:
    """How many stations could act at ``cycle`` (horizon <= cycle)."""
    return int(np.count_nonzero(horizons <= cycle))


def _min_horizon_loop(horizons):  # pragma: no cover - compiled body
    m = horizons[0]
    for i in range(1, horizons.shape[0]):
        v = horizons[i]
        if v < m:
            m = v
    return m


def _runnable_count_loop(horizons, cycle):  # pragma: no cover - compiled body
    count = 0
    for i in range(horizons.shape[0]):
        if horizons[i] <= cycle:
            count += 1
    return count


def jit_requested(env: Optional[dict] = None) -> bool:
    """Is the compiled-kernel feature flag set?"""
    source = os.environ if env is None else env
    return source.get(ENV_FLAG, "") not in ("", "0")


class Kernels:
    """Resolved kernel set: numpy by default, numba when flagged + present.

    Attributes
    ----------
    min_horizon:
        ``(horizons: int64[:]) -> int`` — minimum over the column.
    runnable_count:
        ``(horizons: int64[:], cycle: int) -> int`` — stations with
        ``horizon <= cycle``.
    jit_requested / jit_active:
        The flag as asked for vs. what actually resolved.  They differ
        exactly when numba is absent (graceful degradation).
    """

    def __init__(self, use_jit: Optional[bool] = None) -> None:
        self.jit_requested = (
            jit_requested() if use_jit is None else bool(use_jit)
        )
        self.jit_active = False
        self.min_horizon: Callable[[np.ndarray], int] = _min_horizon_numpy
        self.runnable_count: Callable[[np.ndarray, int], int] = (
            _runnable_count_numpy
        )
        if not self.jit_requested:
            return
        try:
            from numba import njit
        except ImportError:
            # Graceful degradation: the flag is a request, not a
            # requirement.  The numpy kernels give identical results.
            return
        self.min_horizon = njit(cache=True)(_min_horizon_loop)
        self.runnable_count = njit(cache=True)(_runnable_count_loop)
        self.jit_active = True


_DEFAULT: Optional[Kernels] = None


def get_kernels() -> Kernels:
    """The process-wide kernel set (resolved once per flag value).

    Re-resolves when the environment flag changes, so tests can flip
    ``REPRO_NUMBA`` via monkeypatch without reloading the module.
    """
    global _DEFAULT
    wanted = jit_requested()
    if _DEFAULT is None or _DEFAULT.jit_requested != wanted:
        _DEFAULT = Kernels(use_jit=wanted)
    return _DEFAULT

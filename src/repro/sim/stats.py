"""Statistics collection for full-system runs.

Every delivered response and every link grant is timestamped; the
report aggregates them into the quantities the paper's figures are
built from: per-core IPC, memory latencies, request/response
inter-arrival histograms (intrinsic and shaped), fake-traffic volume
and row-hit rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.util import canonical_json_digest
from repro.core.distribution import InterArrivalHistogram
from repro.memctrl.transaction import MemoryTransaction


@dataclass
class CoreStats:
    """Aggregated per-core results of one run."""

    core_id: int
    trace_name: str
    cycles: int
    retired_instructions: int
    finish_cycle: Optional[int]
    demand_requests: int
    writeback_requests: int
    fake_requests_sent: int
    fake_responses_sent: int
    memory_stall_cycles: int
    llc_misses: int
    llc_accesses: int
    request_intrinsic: InterArrivalHistogram
    request_shaped: InterArrivalHistogram
    response_intrinsic: InterArrivalHistogram
    response_shaped: InterArrivalHistogram
    memory_latencies: List[int] = field(default_factory=list)
    response_times: List[Tuple[int, int]] = field(default_factory=list)
    """(delivered_cycle, per-request latency) pairs for real responses."""

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.retired_instructions / self.cycles if self.cycles else 0.0

    @property
    def memory_stall_fraction(self) -> float:
        """MISE's α: fraction of cycles stalled waiting on memory."""
        return self.memory_stall_cycles / self.cycles if self.cycles else 0.0

    def mean_memory_latency(self) -> float:
        if not self.memory_latencies:
            return 0.0
        return float(np.mean(self.memory_latencies))

    def latency_percentile(self, q: float) -> float:
        if not self.memory_latencies:
            return 0.0
        return float(np.percentile(self.memory_latencies, q))

    def accumulated_response_time(self) -> np.ndarray:
        """Cumulative sum of per-request latencies, in delivery order.

        The Figure 9 quantity: differencing two runs' accumulated
        response-time curves reveals (or, under Camouflage, hides) the
        co-runner's behaviour.
        """
        if not self.response_times:
            return np.zeros(0)
        ordered = sorted(self.response_times)
        return np.cumsum([lat for _, lat in ordered])


@dataclass
class SystemReport:
    """Results of one full-system run."""

    cycles_run: int
    cores: List[CoreStats]
    row_hits: int
    row_misses: int
    refreshes: int
    request_link_grants: int
    response_link_grants: int
    scheduler_name: str

    def core(self, core_id: int) -> CoreStats:
        return self.cores[core_id]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def total_throughput(self) -> float:
        """Sum of per-core IPCs (the multiprogram throughput metric)."""
        return sum(c.ipc for c in self.cores)

    def weighted_speedup_vs(self, alone_ipcs: Sequence[float]) -> float:
        """Sum of IPC_shared / IPC_alone across cores."""
        if len(alone_ipcs) != len(self.cores):
            raise ValueError("need one alone-IPC per core")
        return sum(
            c.ipc / alone if alone > 0 else 0.0
            for c, alone in zip(self.cores, alone_ipcs)
        )

    def average_slowdown_vs(self, alone_ipcs: Sequence[float]) -> float:
        """Mean of IPC_alone / IPC_shared (the paper's GA objective)."""
        if len(alone_ipcs) != len(self.cores):
            raise ValueError("need one alone-IPC per core")
        slowdowns = []
        for c, alone in zip(self.cores, alone_ipcs):
            if c.ipc > 0:
                slowdowns.append(alone / c.ipc)
        return float(np.mean(slowdowns)) if slowdowns else float("inf")

    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def summary_lines(self) -> List[str]:
        """Human-readable per-core summary (used by examples)."""
        lines = [
            f"cycles={self.cycles_run} scheduler={self.scheduler_name} "
            f"row_hit_rate={self.row_hit_rate():.2f}"
        ]
        for c in self.cores:
            lines.append(
                f"  core{c.core_id} [{c.trace_name}] ipc={c.ipc:.3f} "
                f"misses={c.llc_misses} fake_req={c.fake_requests_sent} "
                f"mem_lat={c.mean_memory_latency():.0f}"
            )
        return lines


def report_digest(report: SystemReport) -> str:
    """A short deterministic fingerprint over everything in a report.

    Two reports digest equal iff every counter, histogram bin, latency
    sample and response timestamp matches — ``repro run`` prints it and
    ``repro resume`` prints it again so the bit-identical-resume
    guarantee (docs/resilience.md) is checkable from the command line.
    The same canonical-JSON fingerprinting, applied to run *inputs*
    instead of outputs, keys the parallel result cache
    (:func:`repro.parallel.cache.config_digest`).
    """
    doc = {
        "cycles_run": report.cycles_run,
        "row_hits": report.row_hits,
        "row_misses": report.row_misses,
        "refreshes": report.refreshes,
        "request_link_grants": report.request_link_grants,
        "response_link_grants": report.response_link_grants,
        "scheduler": report.scheduler_name,
        "cores": [
            {
                "core_id": c.core_id,
                "trace": c.trace_name,
                "cycles": c.cycles,
                "retired": c.retired_instructions,
                "finish": c.finish_cycle,
                "demand": c.demand_requests,
                "writebacks": c.writeback_requests,
                "fake_req": c.fake_requests_sent,
                "fake_resp": c.fake_responses_sent,
                "stalls": c.memory_stall_cycles,
                "llc_misses": c.llc_misses,
                "llc_accesses": c.llc_accesses,
                "request_intrinsic": list(c.request_intrinsic.counts),
                "request_shaped": list(c.request_shaped.counts),
                "response_intrinsic": list(c.response_intrinsic.counts),
                "response_shaped": list(c.response_shaped.counts),
                "latencies": list(c.memory_latencies),
                "response_times": [list(rt) for rt in c.response_times],
            }
            for c in report.cores
        ],
    }
    return canonical_json_digest(doc)

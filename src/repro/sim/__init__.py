"""Full-system cycle-driven simulator.

Wires cores, caches, shapers, the shared NoC links, the memory
controller and the DRAM model into one clocked system, mirroring the
paper's Figure 5 pipeline:

``core → LLC → [ReqC] → request link (SC1) → MC (SC2) → DRAM (SC3)
→ [RespC] (SC4) → response link (SC5) → core``

Build systems with :class:`SystemBuilder` (fluent configuration of
schedulers, per-core shaping and bank partitioning) and run them with
:meth:`System.run`; results come back as a :class:`SystemReport`.
"""

from repro.sim.bandwidth import (
    bandwidth_series,
    burstiness_index,
    fake_traffic_fraction,
    per_core_bandwidth,
    utilization,
)
from repro.sim.columnar import ColumnarEngine
from repro.sim.stats import CoreStats, SystemReport
from repro.sim.system import (
    EpochShapingPlan,
    RequestShapingPlan,
    ResponseShapingPlan,
    System,
    SystemBuilder,
)

__all__ = [
    "ColumnarEngine",
    "CoreStats",
    "EpochShapingPlan",
    "bandwidth_series",
    "burstiness_index",
    "fake_traffic_fraction",
    "per_core_bandwidth",
    "utilization",
    "RequestShapingPlan",
    "ResponseShapingPlan",
    "System",
    "SystemBuilder",
    "SystemReport",
]

"""System builder and the cycle-driven simulation loop.

A :class:`System` is the paper's Figure 5 made executable.  Use
:class:`SystemBuilder` to assemble one:

>>> from repro.sim import SystemBuilder
>>> from repro.workloads import make_trace
>>> builder = SystemBuilder(seed=7)
>>> _ = builder.add_core(make_trace("astar", 500))
>>> _ = builder.add_core(make_trace("mcf", 500))
>>> system = builder.build()
>>> report = system.run(20000)
>>> report.num_cores
2

Shaping is attached per core: ``request_shaping=`` for ReqC,
``response_shaping=`` for RespC, both for BDC.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.common.errors import ConfigurationError, SimulationError
from repro.common.rng import DeterministicRng
from repro.core.bins import BinConfiguration, BinSpec
from repro.core.epoch_shaper import EpochRateShaper, RateSet
from repro.core.request_shaper import PassthroughShaper, RequestCamouflage
from repro.core.response_shaper import PassthroughResponsePath, ResponseCamouflage
from repro.core.shaper import BinShaper
from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import MemoryTrace
from repro.dram.address import AddressMapping
from repro.dram.organization import DramOrganization
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming
from repro.memctrl.controller import MemoryController
from repro.memctrl.schedulers import (
    FixedServiceScheduler,
    FrFcfsScheduler,
    PriorityFrFcfsScheduler,
    Scheduler,
    TemporalPartitioningScheduler,
)
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink
from repro.noc.mesh import MeshNetwork
from repro.obs.hub import Observability, ObservabilityConfig
from repro.obs.tracer import NULL_TRACER
from repro.resilience.runtime import ResilienceConfig, ResilienceRuntime
from repro.resilience.watchdog import Watchdog
from repro.sim.stats import CoreStats, SystemReport


@dataclass(frozen=True)
class RequestShapingPlan:
    """ReqC attachment for one core.

    ``strict_binning`` selects the exact-bin release rule (tightest
    distribution matching, used for the Figure 11 accuracy experiment)
    over the default any-credited-bin rule.
    """

    config: BinConfiguration
    spec: BinSpec = BinSpec()
    generate_fake: bool = True
    strict_binning: bool = False
    jitter: bool = False


@dataclass(frozen=True)
class ResponseShapingPlan:
    """RespC attachment for one core."""

    config: BinConfiguration
    spec: BinSpec = BinSpec()
    generate_fake: bool = True
    enable_warning: bool = True
    strict_binning: bool = False
    jitter: bool = False


@dataclass(frozen=True)
class EpochShapingPlan:
    """Fletcher'14 epoch-rate shaping attachment (baseline/extension).

    Mutually exclusive with ``request_shaping`` on the same core: it
    replaces the request path with an
    :class:`~repro.core.epoch_shaper.EpochRateShaper`.
    """

    rates: Optional[RateSet] = None
    epoch_cycles: int = 8192


@dataclass
class _CorePlan:
    trace: MemoryTrace
    request_shaping: Optional[RequestShapingPlan]
    response_shaping: Optional[ResponseShapingPlan]
    epoch_shaping: Optional[EpochShapingPlan] = None


# Sampler probes and wiring callables, as module-level classes rather
# than builder closures: the wired system must pickle for
# checkpoint/restore (repro.resilience.snapshot), and locally defined
# lambdas cannot.  Every probe reads only span-constant state — the
# interval sampler's closed-form-fill contract (repro.obs.metrics).


class _OutstandingGapProbe:
    """RespC's acceleration signal: this core's misses still inside
    the memory system (outstanding minus already buffered responses)."""

    __slots__ = ("_core", "_path")

    def __init__(self, core, path) -> None:
        self._core = core
        self._path = path

    def __call__(self) -> int:
        return max(0, self._core.outstanding_misses - self._path.occupancy)


class _AttrProbe:
    """Reads one cumulative-counter attribute of one component."""

    __slots__ = ("_obj", "_attr")

    def __init__(self, obj, attr: str) -> None:
        self._obj = obj
        self._attr = attr

    def __call__(self):
        return getattr(self._obj, self._attr)


class _QueueDepthProbe:
    __slots__ = ("_controller",)

    def __init__(self, controller) -> None:
        self._controller = controller

    def __call__(self) -> int:
        return len(self._controller.queue)


class _RowHitRateProbe:
    __slots__ = ("_controller",)

    def __init__(self, controller) -> None:
        self._controller = controller

    def __call__(self) -> float:
        hits = self._controller.row_hits
        total = hits + self._controller.row_misses
        return hits / total if total else 0.0


class _CreditSumProbe:
    __slots__ = ("_path",)

    def __init__(self, path) -> None:
        self._path = path

    def __call__(self) -> int:
        return sum(self._path.shaper.credits_remaining())


class _FakeFractionProbe:
    __slots__ = ("_path",)

    def __init__(self, path) -> None:
        self._path = path

    def __call__(self) -> float:
        fake = self._path.fake_sent
        total = self._path.real_sent + fake
        return fake / total if total else 0.0


class SystemBuilder:
    """Fluent assembly of a full system."""

    def __init__(self, seed: int = 12345) -> None:
        self._seed = seed
        self._core_plans: List[_CorePlan] = []
        self._scheduler_kind = "frfcfs"
        self._scheduler_kwargs: Dict = {}
        self._timing = DramTiming()
        self._organization = DramOrganization()
        self._enable_refresh = True
        self._hierarchy_config = HierarchyConfig()
        self._core_config = CoreConfig()
        self._noc_latency = 4
        self._noc_port_capacity = 16
        self._noc_topology = "shared"
        self._noc_trace_limit: Optional[int] = None
        self._obs_config: Optional[ObservabilityConfig] = None
        self._resilience_config: Optional[ResilienceConfig] = None
        self._queue_capacity = 32
        self._page_policy = "open"
        self._write_queue_policy = None
        self._bank_partitioning = False
        self._address_space = 1 << 30

    # -- configuration -----------------------------------------------------

    def add_core(
        self,
        trace: MemoryTrace,
        request_shaping: Optional[RequestShapingPlan] = None,
        response_shaping: Optional[ResponseShapingPlan] = None,
        epoch_shaping: Optional[EpochShapingPlan] = None,
    ) -> int:
        """Register a core; returns its id (assignment order)."""
        if request_shaping is not None and epoch_shaping is not None:
            raise ConfigurationError(
                "a core takes either bin shaping or epoch-rate shaping "
                "on its request path, not both"
            )
        self._core_plans.append(
            _CorePlan(trace, request_shaping, response_shaping, epoch_shaping)
        )
        return len(self._core_plans) - 1

    def with_scheduler(self, kind: str, **kwargs) -> "SystemBuilder":
        """Select the memory scheduling policy.

        ``kind`` ∈ {"frfcfs", "priority", "tp", "fs"}; kwargs are
        forwarded to the scheduler constructor (e.g. ``turn_length``
        for TP, ``interval`` for FS).
        """
        if kind not in ("frfcfs", "priority", "tp", "fs"):
            raise ConfigurationError(f"unknown scheduler kind {kind!r}")
        self._scheduler_kind = kind
        self._scheduler_kwargs = dict(kwargs)
        return self

    def with_dram(
        self,
        timing: Optional[DramTiming] = None,
        organization: Optional[DramOrganization] = None,
        enable_refresh: Optional[bool] = None,
    ) -> "SystemBuilder":
        if timing is not None:
            self._timing = timing
        if organization is not None:
            self._organization = organization
        if enable_refresh is not None:
            self._enable_refresh = enable_refresh
        return self

    def with_noc(
        self,
        latency: int = 4,
        port_capacity: int = 16,
        topology: str = "shared",
        trace_limit: Optional[int] = None,
    ) -> "SystemBuilder":
        """Configure the on-chip channels.

        ``topology`` is ``"shared"`` (single arbitrated link, the
        default model) or ``"mesh"`` (2D mesh of input-buffered
        routers — position-dependent contention; see
        :mod:`repro.noc.mesh`).

        ``trace_limit`` bounds each channel's adversary-visible
        ``grant_trace`` to the most recent N grants (default ``None``
        keeps the full trace, which the security benchmarks need but
        grows without bound on long performance runs).

        .. deprecated::
            ``trace_limit`` moved to the observability layer; prefer
            ``with_observability(noc_grant_trace_limit=N)``.  The kwarg
            keeps working as a shim with identical semantics (the
            observability setting wins when both are given).
        """
        if topology not in ("shared", "mesh"):
            raise ConfigurationError(f"unknown NoC topology {topology!r}")
        if trace_limit is not None and trace_limit <= 0:
            raise ConfigurationError("trace_limit must be positive")
        if trace_limit is not None:
            warnings.warn(
                "with_noc(trace_limit=...) is deprecated; use "
                "with_observability(noc_grant_trace_limit=...)",
                DeprecationWarning,
                stacklevel=2,
            )
        self._noc_latency = latency
        self._noc_port_capacity = port_capacity
        self._noc_topology = topology
        self._noc_trace_limit = trace_limit
        return self

    def with_observability(
        self,
        config: Optional[ObservabilityConfig] = None,
        **kwargs,
    ) -> "SystemBuilder":
        """Attach the :mod:`repro.obs` stack to the built system.

        Pass a ready :class:`~repro.obs.hub.ObservabilityConfig`, or
        its fields as keyword arguments (``trace=True``,
        ``sample_interval=1024``, ``monitor=True``, ...).  Without this
        call the system carries no observability state at all; with it,
        only the enabled facilities cost anything.
        """
        if config is not None and kwargs:
            raise ConfigurationError(
                "pass either an ObservabilityConfig or keyword fields, "
                "not both"
            )
        self._obs_config = (
            config if config is not None else ObservabilityConfig(**kwargs)
        )
        return self

    def with_resilience(
        self,
        config: Optional[ResilienceConfig] = None,
        **kwargs,
    ) -> "SystemBuilder":
        """Attach the :mod:`repro.resilience` layer to the built system.

        Pass a ready :class:`~repro.resilience.runtime.ResilienceConfig`
        or its fields as keyword arguments (``checkpoint_every=50_000``,
        ``watchdog_cycles=10_000``, ``jitter_budget=256``,
        ``faults=(...)``, ...).  Enables periodic whole-system
        checkpoints, the diagnostic-dumping watchdog, graceful shaper
        degradation and the fault-injection harness — see
        docs/resilience.md.
        """
        if config is not None and kwargs:
            raise ConfigurationError(
                "pass either a ResilienceConfig or keyword fields, not both"
            )
        self._resilience_config = (
            config if config is not None else ResilienceConfig(**kwargs)
        )
        return self

    def with_core_config(self, config: CoreConfig) -> "SystemBuilder":
        self._core_config = config
        return self

    def with_hierarchy_config(self, config: HierarchyConfig) -> "SystemBuilder":
        self._hierarchy_config = config
        return self

    def with_queue_capacity(self, capacity: int) -> "SystemBuilder":
        self._queue_capacity = capacity
        return self

    def with_page_policy(self, policy: str) -> "SystemBuilder":
        """Row-buffer management: ``"open"`` (default) or ``"closed"``."""
        if policy not in ("open", "closed"):
            raise ConfigurationError(f"unknown page policy {policy!r}")
        self._page_policy = policy
        return self

    def with_write_queue(self, policy=None) -> "SystemBuilder":
        """Enable the controller's dedicated write path.

        ``policy`` is a :class:`~repro.memctrl.write_queue.WriteQueuePolicy`
        (defaults apply when omitted).
        """
        from repro.memctrl.write_queue import WriteQueuePolicy

        self._write_queue_policy = policy or WriteQueuePolicy()
        return self

    def with_bank_partitioning(self) -> "SystemBuilder":
        """Give each core a private subset of banks (FS pairing)."""
        self._bank_partitioning = True
        return self

    def with_address_space(self, size_bytes: int) -> "SystemBuilder":
        """Bound for fake-request target addresses."""
        self._address_space = size_bytes
        return self

    # -- assembly ---------------------------------------------------------------

    def _make_scheduler(self, num_cores: int) -> Scheduler:
        kind = self._scheduler_kind
        kwargs = dict(self._scheduler_kwargs)
        needs_priority = any(
            p.response_shaping is not None and p.response_shaping.enable_warning
            for p in self._core_plans
        )
        if kind == "frfcfs" and needs_priority:
            # RespC's acceleration warning needs a priority-capable
            # scheduler; upgrade transparently.
            kind = "priority"
        if kind == "frfcfs":
            return FrFcfsScheduler()
        if kind == "priority":
            return PriorityFrFcfsScheduler(num_cores)
        if kind == "tp":
            domain_of_core = kwargs.pop(
                "domain_of_core", list(range(num_cores))
            )
            return TemporalPartitioningScheduler(domain_of_core, **kwargs)
        if kind == "fs":
            return FixedServiceScheduler(num_cores, **kwargs)
        raise ConfigurationError(f"unknown scheduler kind {kind!r}")

    def _make_mappings(self, num_cores: int):
        default = AddressMapping(self._organization)
        if not self._bank_partitioning:
            return default, None
        banks = self._organization.banks_per_rank
        if num_cores > banks:
            raise ConfigurationError(
                f"bank partitioning needs >= one bank per core "
                f"({num_cores} cores, {banks} banks) — the scalability "
                "limit of FS the paper points out"
            )
        share = banks // num_cores
        per_core = {
            c: AddressMapping.partitioned(
                self._organization,
                list(range(c * share, (c + 1) * share)),
            )
            for c in range(num_cores)
        }
        return default, per_core

    def build(self) -> "System":
        if not self._core_plans:
            raise ConfigurationError("a system needs at least one core")
        num_cores = len(self._core_plans)
        rng = DeterministicRng(self._seed)

        dram = DramSystem(
            timing=self._timing,
            organization=self._organization,
            enable_refresh=self._enable_refresh,
        )
        scheduler = self._make_scheduler(num_cores)
        default_mapping, per_core_mapping = self._make_mappings(num_cores)
        controller = MemoryController(
            dram,
            scheduler=scheduler,
            mapping=default_mapping,
            per_core_mapping=per_core_mapping,
            queue_capacity=self._queue_capacity,
            page_policy=self._page_policy,
            write_queue_policy=self._write_queue_policy,
        )
        # The legacy with_noc(trace_limit=...) shim feeds the same knob
        # the observability config now owns; the config wins when both
        # are set.
        noc_trace_limit = self._noc_trace_limit
        if (
            self._obs_config is not None
            and self._obs_config.noc_grant_trace_limit is not None
        ):
            noc_trace_limit = self._obs_config.noc_grant_trace_limit
        if self._noc_topology == "mesh":
            request_link = MeshNetwork(
                num_cores, direction="to_hub",
                port_capacity=self._noc_port_capacity,
                trace_limit=noc_trace_limit,
            )
            response_link = MeshNetwork(
                num_cores, direction="from_hub",
                port_capacity=self._noc_port_capacity,
                trace_limit=noc_trace_limit,
            )
        else:
            request_link = SharedLink(
                num_cores, latency=self._noc_latency,
                port_capacity=self._noc_port_capacity,
                trace_limit=noc_trace_limit,
            )
            response_link = SharedLink(
                num_cores, latency=self._noc_latency,
                port_capacity=self._noc_port_capacity,
                trace_limit=noc_trace_limit,
            )

        jitter_budget = (
            self._resilience_config.jitter_budget
            if self._resilience_config is not None
            else None
        )
        request_paths = []
        for core_id, plan in enumerate(self._core_plans):
            if plan.epoch_shaping is not None:
                epoch_plan = plan.epoch_shaping
                request_paths.append(
                    EpochRateShaper(
                        core_id=core_id,
                        link=request_link,
                        port=core_id,
                        rng=rng.fork(2000 + core_id),
                        rates=epoch_plan.rates or RateSet(),
                        epoch_cycles=epoch_plan.epoch_cycles,
                        address_space_bytes=self._address_space,
                        line_bytes=self._hierarchy_config.l1.line_bytes,
                    )
                )
            elif plan.request_shaping is None:
                request_paths.append(
                    PassthroughShaper(core_id, request_link, core_id)
                )
            else:
                shaping = plan.request_shaping
                request_paths.append(
                    RequestCamouflage(
                        core_id=core_id,
                        shaper=BinShaper(
                            shaping.spec, shaping.config,
                            strict=shaping.strict_binning,
                            jitter_rng=(
                                rng.fork(3000 + core_id)
                                if shaping.jitter else None
                            ),
                            jitter_budget=jitter_budget,
                        ),
                        link=request_link,
                        port=core_id,
                        rng=rng.fork(1000 + core_id),
                        address_space_bytes=self._address_space,
                        line_bytes=self._hierarchy_config.l1.line_bytes,
                        generate_fake=shaping.generate_fake,
                    )
                )

        cores = [
            Core(
                core_id=core_id,
                trace=plan.trace,
                hierarchy=CacheHierarchy(self._hierarchy_config),
                request_sink=request_paths[core_id],
                config=self._core_config,
            )
            for core_id, plan in enumerate(self._core_plans)
        ]

        response_paths = []
        for core_id, plan in enumerate(self._core_plans):
            if plan.response_shaping is None:
                response_paths.append(
                    PassthroughResponsePath(core_id, response_link, core_id)
                )
            else:
                shaping = plan.response_shaping
                warn_target = (
                    scheduler
                    if shaping.enable_warning
                    and isinstance(scheduler, PriorityFrFcfsScheduler)
                    else None
                )
                path = ResponseCamouflage(
                    core_id=core_id,
                    shaper=BinShaper(
                        shaping.spec, shaping.config,
                        strict=shaping.strict_binning,
                        jitter_rng=(
                            rng.fork(4000 + core_id)
                            if shaping.jitter else None
                        ),
                        jitter_budget=jitter_budget,
                    ),
                    link=response_link,
                    port=core_id,
                    scheduler=warn_target,
                    generate_fake=shaping.generate_fake,
                )
                path.set_outstanding_fn(
                    _OutstandingGapProbe(cores[core_id], path)
                )
                response_paths.append(path)

        observability: Optional[Observability] = None
        if self._obs_config is not None:
            observability = Observability(self._obs_config)
            self._wire_observability(
                observability, cores, request_paths, response_paths,
                request_link, response_link, controller, dram,
            )

        resilience: Optional[ResilienceRuntime] = None
        if self._resilience_config is not None:
            resilience = ResilienceRuntime(
                self._resilience_config,
                rng,
                address_space_bytes=self._address_space,
                line_bytes=self._hierarchy_config.l1.line_bytes,
            )
            if observability is not None:
                resilience.attach_tracer(observability.tracer)
                if observability.monitor is not None:
                    # Graceful degradation is only *graceful* if it is
                    # flagged: route every shaper's degradation edge
                    # into the live monitor.
                    for path in list(request_paths) + list(response_paths):
                        shaper = getattr(path, "shaper", None)
                        if shaper is not None:
                            shaper.set_degradation_sink(
                                observability.monitor.flag_degraded
                            )

        return System(
            cores=cores,
            request_paths=request_paths,
            response_paths=response_paths,
            request_link=request_link,
            response_link=response_link,
            controller=controller,
            observability=observability,
            resilience=resilience,
        )

    def _wire_observability(
        self,
        obs: Observability,
        cores,
        request_paths,
        response_paths,
        request_link,
        response_link,
        controller,
        dram,
    ) -> None:
        """Hand the tracer to every component; register probes/watches.

        Every probe reads span-constant state (queue depths, credit
        registers, cumulative counters), so the interval sampler's
        closed-form fill across next-event skips is exact — see
        ``repro.obs.metrics`` for the contract.
        """
        tracer = obs.tracer
        request_link.attach_tracer(tracer, "request")
        response_link.attach_tracer(tracer, "response")
        controller.tracer = tracer
        dram.tracer = tracer
        for core_id, (req_path, resp_path) in enumerate(
            zip(request_paths, response_paths)
        ):
            if isinstance(req_path, RequestCamouflage):
                req_path.shaper.attach_tracer(tracer, core_id, "request")
            elif isinstance(req_path, EpochRateShaper):
                req_path.attach_tracer(tracer)
            if isinstance(resp_path, ResponseCamouflage):
                resp_path.shaper.attach_tracer(tracer, core_id, "response")

        if obs.sampler is not None:
            sampler = obs.sampler
            sampler.add_probe(
                "memctrl.queue_depth", _QueueDepthProbe(controller)
            )
            sampler.add_probe(
                "memctrl.row_hits", _AttrProbe(controller, "row_hits")
            )
            sampler.add_probe(
                "memctrl.row_misses", _AttrProbe(controller, "row_misses")
            )
            sampler.add_probe(
                "memctrl.row_hit_rate", _RowHitRateProbe(controller)
            )
            sampler.add_probe(
                "noc.request_grants", _AttrProbe(request_link, "total_grants")
            )
            sampler.add_probe(
                "noc.response_grants",
                _AttrProbe(response_link, "total_grants"),
            )
            for core_id, req_path in enumerate(request_paths):
                if isinstance(req_path, RequestCamouflage):
                    sampler.add_probe(
                        f"core{core_id}.request_credits",
                        _CreditSumProbe(req_path),
                    )
                sampler.add_probe(
                    f"core{core_id}.real_sent",
                    _AttrProbe(req_path, "real_sent"),
                )
                sampler.add_probe(
                    f"core{core_id}.fake_sent",
                    _AttrProbe(req_path, "fake_sent"),
                )
                sampler.add_probe(
                    f"core{core_id}.fake_fraction",
                    _FakeFractionProbe(req_path),
                )

        if obs.monitor is not None:
            for core_id, plan in enumerate(self._core_plans):
                req_path = request_paths[core_id]
                resp_path = response_paths[core_id]
                if plan.request_shaping is not None:
                    obs.monitor.watch(
                        core_id, "request",
                        req_path.intrinsic_histogram,
                        req_path.shaped_histogram,
                        plan.request_shaping.config.normalized(),
                    )
                elif plan.epoch_shaping is not None:
                    obs.monitor.watch(
                        core_id, "request",
                        req_path.intrinsic_histogram,
                        req_path.shaped_histogram,
                    )
                if plan.response_shaping is not None:
                    obs.monitor.watch(
                        core_id, "response",
                        resp_path.intrinsic_histogram,
                        resp_path.shaped_histogram,
                        plan.response_shaping.config.normalized(),
                    )


class System:
    """A fully wired system, ready to run."""

    def __init__(
        self,
        cores: Sequence[Core],
        request_paths: Sequence,
        response_paths: Sequence,
        request_link: SharedLink,
        response_link: SharedLink,
        controller: MemoryController,
        observability: Optional[Observability] = None,
        resilience: Optional[ResilienceRuntime] = None,
    ) -> None:
        self.cores = list(cores)
        self.request_paths = list(request_paths)
        self.response_paths = list(response_paths)
        self.request_link = request_link
        self.response_link = response_link
        self.controller = controller
        self.observability = observability
        self.resilience = resilience
        # Cached so the per-tick guard is one boolean test, not an
        # attribute chain (near-zero overhead when disabled).
        self._obs_cycle_hooks = (
            observability is not None and observability.has_cycle_hooks
        )
        self._fault_hooks = (
            resilience is not None and resilience.injector is not None
        )
        self.current_cycle = 0
        self._mc_staging: Deque[MemoryTransaction] = deque()
        # Per-core delivery records: latencies of real demand fills.
        self._latencies: List[List[int]] = [[] for _ in cores]
        self._response_times: List[List] = [[] for _ in cores]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def scheduler(self) -> Scheduler:
        return self.controller.scheduler

    def all_cores_done(self) -> bool:
        return all(core.done for core in self.cores)

    def delivered_count(self, core_id: int) -> int:
        """Real demand fills delivered to ``core_id`` so far."""
        return len(self._latencies[core_id])

    # -- main loop ------------------------------------------------------------

    def tick(self) -> None:
        """Advance the whole system by one cycle."""
        cycle = self.current_cycle
        if self._fault_hooks:
            # Fault injection runs before any component so the order of
            # injected work relative to normal work is fixed — identical
            # under both engines.
            self.resilience.injector.on_cycle(self, cycle)
        for core in self.cores:
            core.tick(cycle)
        for path in self.request_paths:
            path.tick(cycle)

        dest_ready = self.controller.can_accept() and not self._mc_staging
        if self._fault_hooks and self.resilience.injector.request_link_stalled(
            cycle
        ):
            dest_ready = False
        self.request_link.tick(cycle, dest_ready=dest_ready)
        for txn in self.request_link.pop_arrivals(cycle):
            self._mc_staging.append(txn)
        while self._mc_staging and self.controller.can_accept():
            self.controller.enqueue(self._mc_staging.popleft(), cycle)

        self.controller.tick(cycle)

        for core_id in range(self.num_cores):
            path = self.response_paths[core_id]
            # Drain only what the response path can buffer; the rest
            # stays in the controller's bounded egress, throttling
            # further service for this core (return-channel flow
            # control).
            while path.can_accept():
                popped = self.controller.pop_responses(core_id, limit=1)
                if not popped:
                    break
                path.push_response(popped[0], cycle)
            path.tick(cycle)

        self.response_link.tick(cycle)
        for txn in self.response_link.pop_arrivals(cycle):
            self._deliver(txn, cycle)

        if self._obs_cycle_hooks:
            self.observability.on_cycle_end(cycle)

        self.current_cycle = cycle + 1

    # -- next-event engine ---------------------------------------------------

    def _next_event_components(self) -> List:
        """The stations polled by :meth:`_next_event_target`.

        Built once per ``run()`` window (the wiring is fixed for its
        duration) instead of on every scan — rebuilding this list each
        stepped cycle was pure overhead.  Kept as a local of the run
        loop, not an attribute, so checkpoint pickles are unaffected.
        """
        components = [self.request_link, self.response_link, self.controller]
        components.extend(self.cores)
        components.extend(self.request_paths)
        components.extend(self.response_paths)
        if self._fault_hooks:
            components.append(self.resilience.injector)
        return components

    def _next_event_target(
        self, limit: int, components: Optional[List] = None
    ) -> Optional[int]:
        """The cycle the next tick must run at, or ``None`` to not skip.

        Polls every component's ``next_event_cycle`` contract: a return
        of the current cycle (work possible *now*) or a cross-component
        coupling with same-cycle work (staged requests the controller
        can take, egress responses a path can buffer) pins the system
        to per-cycle stepping.  Otherwise the minimum future event —
        capped at ``limit`` — is the only cycle anything can change, so
        the clock may jump there; the skipped span is pure bookkeeping
        replayed by :meth:`_skip_idle_span`.

        The :class:`~repro.sim.columnar.ColumnarEngine` implements the
        same decision over a cached horizon ledger, re-polling only
        stations whose state changed.
        """
        cycle = self.current_cycle
        if self._mc_staging and self.controller.can_accept():
            return None
        earliest = limit
        for core_id in range(self.num_cores):
            if (
                self.response_paths[core_id].can_accept()
                and self.controller.pending_response_count(core_id)
            ):
                return None
        if components is None:
            components = self._next_event_components()
        for component in components:
            event = component.next_event_cycle(cycle)
            if event is None:
                continue
            if event <= cycle:
                return None
            if event < earliest:
                earliest = event
        return earliest if earliest > cycle else None

    def _skip_idle_span(self, target: int) -> None:
        """Jump the clock to ``target``, replaying skipped bookkeeping."""
        cycle = self.current_cycle
        for core in self.cores:
            core.skip_idle(cycle, target)
        for path in self.request_paths:
            skip = getattr(path, "skip_idle", None)
            if skip is not None:
                skip(cycle, target)
        if self._obs_cycle_hooks:
            # Sample boundaries inside [cycle, target) fall in a span
            # with no state changes: fill them with the current probe
            # values *before* the tick at ``target`` mutates anything.
            self.observability.on_skip(target - 1)
        self.current_cycle = target

    def _deliver(self, txn: MemoryTransaction, cycle: int) -> None:
        txn.delivered_cycle = cycle
        core = self.cores[txn.core_id]
        if txn.kind is TransactionType.READ:
            latency = cycle - txn.created_cycle
            self._latencies[txn.core_id].append(latency)
            self._response_times[txn.core_id].append((cycle, latency))
            core.receive_fill(txn, cycle)
        # Fake reads and write-back acks carry no architectural state.

    def run(
        self,
        max_cycles: int,
        stop_when_done: bool = True,
        watchdog_cycles: int = 200_000,
        engine: str = "cycle",
    ) -> SystemReport:
        """Run for up to ``max_cycles`` more cycles; returns a report.

        Can be called repeatedly — the clock continues from where the
        previous call stopped (used by the GA's generation windows).

        ``watchdog_cycles`` guards against configuration deadlocks
        (e.g. a shaper whose credits can never release against a
        stalled core): if no core retires an instruction and no
        response is delivered for that many consecutive cycles while
        work is still pending, the run aborts with a
        :class:`~repro.common.errors.WatchdogError` (a
        :class:`~repro.common.errors.SimulationError` subclass)
        carrying a structured diagnostic dump instead of spinning
        forever.  Set to 0 to disable.  A
        :meth:`SystemBuilder.with_resilience` ``watchdog_cycles``
        setting overrides this argument, and ``checkpoint_every``
        makes the loop snapshot the whole system at every multiple of
        N cycles (see docs/resilience.md).

        ``engine`` selects the stepping strategy: ``"cycle"`` (default)
        ticks every cycle; ``"next_event"`` jumps the clock over spans
        where every component reports no possible state change (idle
        cores awaiting fills, shapers between credits and boundaries,
        DRAM awaiting a timing expiry), producing a bit-identical
        :class:`~repro.sim.stats.SystemReport` at a fraction of the
        wall-clock cost on low-intensity workloads; ``"columnar"``
        additionally keeps per-station horizons in a numpy ledger and
        ticks only stations that can act each stepped cycle (see
        :mod:`repro.sim.columnar`), still bit-identical.
        """
        if max_cycles <= 0:
            raise SimulationError(f"max_cycles must be positive: {max_cycles}")
        if engine not in ("cycle", "next_event", "columnar"):
            raise SimulationError(
                f"unknown engine {engine!r}: expected 'cycle', "
                f"'next_event' or 'columnar'"
            )
        obs = self.observability
        # Re-derive the cached hook flag: a serve publisher can be
        # attached between builds and runs (repro serve), after
        # __init__ froze the original value.
        self._obs_cycle_hooks = obs is not None and obs.has_cycle_hooks
        if engine == "columnar":
            # Local import: keeps System importable without numpy-using
            # engine code on the default paths.
            from repro.sim.columnar import ColumnarEngine

            return ColumnarEngine(self).run(
                max_cycles,
                stop_when_done=stop_when_done,
                watchdog_cycles=watchdog_cycles,
            )
        fast = engine == "next_event"
        res = self.resilience
        checkpoint_every = 0
        watchdog_dump_path = ""
        if res is not None:
            checkpoint_every = res.config.checkpoint_every
            watchdog_dump_path = res.config.watchdog_dump_path
            if res.config.watchdog_cycles is not None:
                watchdog_cycles = res.config.watchdog_cycles
        watchdog = Watchdog(
            watchdog_cycles,
            dump_path=watchdog_dump_path,
            tracer=(
                self.observability.tracer
                if self.observability is not None
                else NULL_TRACER
            ),
        )
        watchdog.reset(self)
        if obs is not None and obs.publisher is not None:
            # Serve mode only: the stall margin depends on the observe
            # cadence, which differs between engines — keep it out of
            # the registry on the deterministic cross-engine paths.
            watchdog.bind_metrics(obs.metrics)
        prof = obs.profiler if obs is not None else None
        if prof is not None:
            prof.begin_run(engine, self.current_cycle)
        try:
            end = self.current_cycle + max_cycles
            ne_components = self._next_event_components() if fast else None
            while self.current_cycle < end:
                if stop_when_done and self.all_cores_done():
                    break
                self.tick()
                if (
                    checkpoint_every
                    and self.current_cycle % checkpoint_every == 0
                ):
                    res.take_checkpoint(self)
                skipped = False
                if (
                    fast
                    and self.current_cycle < end
                    and not (stop_when_done and self.all_cores_done())
                ):
                    target = self._next_event_target(end, ne_components)
                    if watchdog_cycles and target is not None:
                        # Never jump past the watchdog horizon in one
                        # step: a frozen (deadlocked) system must still
                        # trip the progress check, exactly as the
                        # per-cycle loop would while spinning through
                        # the same span.
                        target = min(
                            target, watchdog.horizon(self.current_cycle)
                        )
                    if checkpoint_every and target is not None:
                        # Land every clock jump exactly on checkpoint
                        # boundaries — behaviour-preserving by the
                        # engine's no-state-change guarantee, like the
                        # horizon cap.
                        target = min(
                            target,
                            res.next_checkpoint_boundary(self.current_cycle),
                        )
                    if target is not None and target > self.current_cycle:
                        if prof is not None:
                            prof.record_skip(target - self.current_cycle)
                        self._skip_idle_span(target)
                        skipped = True
                        if (
                            checkpoint_every
                            and self.current_cycle % checkpoint_every == 0
                        ):
                            res.take_checkpoint(self)
                # Check progress only every 256 cycles to keep the hot
                # loop cheap (the watchdog granularity does not
                # matter), plus after every skip, whose span is
                # progress-free by construction.
                if watchdog_cycles and (
                    skipped or (self.current_cycle & 0xFF) == 0
                ):
                    watchdog.observe(self)
        finally:
            if prof is not None:
                prof.end_run(self.current_cycle)
        if self.observability is not None:
            self.observability.on_run_end(self.current_cycle)
        return self.report()

    # -- reporting ------------------------------------------------------------------

    def report(self) -> SystemReport:
        core_stats = []
        for core in self.cores:
            req_path = self.request_paths[core.core_id]
            resp_path = self.response_paths[core.core_id]
            core_stats.append(
                CoreStats(
                    core_id=core.core_id,
                    trace_name=core.trace.name,
                    cycles=core.cycles,
                    retired_instructions=core.retired_instructions,
                    finish_cycle=core.finish_cycle,
                    demand_requests=core.demand_requests,
                    writeback_requests=core.writeback_requests,
                    fake_requests_sent=getattr(req_path, "fake_sent", 0),
                    fake_responses_sent=getattr(resp_path, "fake_sent", 0),
                    memory_stall_cycles=core.memory_stall_cycles,
                    llc_misses=core.hierarchy.l2.misses,
                    llc_accesses=core.hierarchy.llc_access_count,
                    request_intrinsic=req_path.intrinsic_histogram,
                    request_shaped=req_path.shaped_histogram,
                    response_intrinsic=resp_path.intrinsic_histogram,
                    response_shaped=resp_path.shaped_histogram,
                    memory_latencies=list(self._latencies[core.core_id]),
                    response_times=list(self._response_times[core.core_id]),
                )
            )
        return SystemReport(
            cycles_run=self.current_cycle,
            cores=core_stats,
            row_hits=self.controller.row_hits,
            row_misses=self.controller.row_misses,
            refreshes=self.controller.refreshes,
            request_link_grants=self.request_link.total_grants,
            response_link_grants=self.response_link.total_grants,
            scheduler_name=self.controller.scheduler.name,
        )

"""DRAM geometry: channels, ranks, banks, rows, columns.

The paper's simulated organization (Table II) is 1 channel, 1 rank per
channel, 8 banks per rank, 8 KB row buffer — those are the defaults
here.  All dimensions must be powers of two so that physical-address
decode is pure bit slicing, as in real controllers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.util import is_power_of_two, log2_int


@dataclass(frozen=True)
class DramOrganization:
    """Geometry of the DRAM subsystem.

    ``row_buffer_bytes`` is the size of one bank's row (the unit of
    row-buffer locality); ``access_bytes`` is the size of one burst
    access (a cache line, 64 B in the paper).
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 16384
    row_buffer_bytes: int = 8192
    access_bytes: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "row_buffer_bytes",
            "access_bytes",
        ):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(
                    f"DRAM organization field {name} must be a power of two, "
                    f"got {value}"
                )
        if self.access_bytes > self.row_buffer_bytes:
            raise ConfigurationError(
                "access size cannot exceed the row buffer "
                f"({self.access_bytes} > {self.row_buffer_bytes})"
            )

    @property
    def columns_per_row(self) -> int:
        """Number of cache-line-sized accesses per row."""
        return self.row_buffer_bytes // self.access_bytes

    @property
    def total_banks(self) -> int:
        """Banks across all ranks and channels."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def capacity_bytes(self) -> int:
        """Total addressable bytes."""
        return (
            self.channels
            * self.ranks_per_channel
            * self.banks_per_rank
            * self.rows_per_bank
            * self.row_buffer_bytes
        )

    @property
    def offset_bits(self) -> int:
        """Bits below the access granularity (byte offset in a line)."""
        return log2_int(self.access_bytes)

    @property
    def column_bits(self) -> int:
        return log2_int(self.columns_per_row)

    @property
    def bank_bits(self) -> int:
        return log2_int(self.banks_per_rank)

    @property
    def rank_bits(self) -> int:
        return log2_int(self.ranks_per_channel)

    @property
    def channel_bits(self) -> int:
        return log2_int(self.channels)

    @property
    def row_bits(self) -> int:
        return log2_int(self.rows_per_bank)

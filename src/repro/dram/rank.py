"""Per-rank constraints: tRRD, tFAW, tWTR and refresh.

A rank groups banks that share command/power delivery.  Constraints
modelled here:

* ``tRRD`` — minimum spacing between ACTIVATEs to *different* banks of
  the same rank.
* ``tFAW`` — at most four ACTIVATEs within any rolling ``tFAW`` window
  (power limit of the charge pumps).
* ``tWTR`` — a READ to any bank of the rank must wait after the last
  WRITE burst finished (internal write-to-read turnaround).
* refresh — a REFRESH blocks every bank for ``tRFC``; the controller
  is responsible for issuing one per ``tREFI`` on average.
"""

from __future__ import annotations

from collections import deque

from repro.common.errors import ProtocolError
from repro.dram.bank import Bank, BankState
from repro.dram.timing import DramTiming


class Rank:
    """A collection of banks sharing rank-level timing state."""

    def __init__(self, timing: DramTiming, banks_per_rank: int) -> None:
        self._timing = timing
        self.banks = [Bank(timing) for _ in range(banks_per_rank)]
        self._activate_history: deque = deque(maxlen=4)
        self._next_activate_rank = 0  # tRRD gate
        self._next_read_rank = 0  # tWTR gate
        self.refresh_count = 0

    # -- constraint queries ---------------------------------------------

    def earliest_activate(self, bank_index: int, cycle_hint: int = 0) -> int:
        """Earliest cycle an ACTIVATE to ``bank_index`` may issue."""
        bank = self.banks[bank_index]
        earliest = max(bank.earliest_activate(), self._next_activate_rank)
        if len(self._activate_history) == 4:
            # Fifth ACTIVATE in the window must wait until the oldest
            # one ages out of the tFAW window.
            earliest = max(earliest, self._activate_history[0] + self._timing.tFAW)
        return max(earliest, cycle_hint)

    def can_activate(self, bank_index: int, cycle: int) -> bool:
        bank = self.banks[bank_index]
        return (
            bank.state is BankState.PRECHARGED
            and cycle >= self.earliest_activate(bank_index)
        )

    def earliest_read_gate(self) -> int:
        """First cycle the rank-level tWTR gate admits a READ."""
        return self._next_read_rank

    def can_read(self, bank_index: int, cycle: int, row: int) -> bool:
        return (
            cycle >= self._next_read_rank
            and self.banks[bank_index].can_column(cycle, row)
        )

    def can_write(self, bank_index: int, cycle: int, row: int) -> bool:
        return self.banks[bank_index].can_column(cycle, row)

    def all_banks_precharged(self) -> bool:
        return all(b.state is BankState.PRECHARGED for b in self.banks)

    def can_refresh(self, cycle: int) -> bool:
        """REFRESH needs every bank precharged and activate-legal."""
        if not self.all_banks_precharged():
            return False
        return all(cycle >= b.earliest_activate() for b in self.banks)

    # -- command application ----------------------------------------------

    def activate(self, bank_index: int, cycle: int, row: int) -> None:
        if not self.can_activate(bank_index, cycle):
            raise ProtocolError(
                f"rank-level ACTIVATE violation at cycle {cycle} "
                f"(bank {bank_index}, tRRD/tFAW gate)"
            )
        self.banks[bank_index].activate(cycle, row)
        self._activate_history.append(cycle)
        self._next_activate_rank = cycle + self._timing.tRRD

    def read(self, bank_index: int, cycle: int, row: int,
             auto_precharge: bool = False) -> None:
        if cycle < self._next_read_rank:
            raise ProtocolError(
                f"READ at cycle {cycle} violates tWTR (earliest "
                f"{self._next_read_rank})"
            )
        self.banks[bank_index].read(cycle, row, auto_precharge)

    def write(self, bank_index: int, cycle: int, row: int,
              auto_precharge: bool = False) -> None:
        self.banks[bank_index].write(cycle, row, auto_precharge)
        t = self._timing
        # READs to this rank must wait for the write burst plus tWTR.
        self._next_read_rank = max(
            self._next_read_rank, cycle + t.tCWL + t.tBURST + t.tWTR
        )

    def precharge(self, bank_index: int, cycle: int) -> None:
        self.banks[bank_index].precharge(cycle)

    def refresh(self, cycle: int) -> None:
        if not self.can_refresh(cycle):
            raise ProtocolError(f"illegal REFRESH at cycle {cycle}")
        for bank in self.banks:
            bank.force_refresh_block(cycle)
        self.refresh_count += 1

"""Physical-address to DRAM-coordinate decoding.

The default interleaving is ``row : rank : bank : column : channel :
offset`` (from most- to least-significant bits), the classic
open-page-friendly mapping DRAMSim2 calls *scheme 7*: consecutive cache
lines walk the columns of one row before moving to the next bank, which
maximizes row-buffer hits for streaming access — exactly the locality
FR-FCFS exploits and that Camouflage's interference analysis depends
on.

A second mapping, :meth:`AddressMapping.bank_interleaved`, spreads
consecutive lines across banks (``row : column : rank : bank : channel
: offset``) and is used by the Fixed-Service baseline's bank
partitioning experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.dram.organization import DramOrganization


@dataclass(frozen=True)
class DecodedAddress:
    """DRAM coordinates of one physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    def same_row(self, other: "DecodedAddress") -> bool:
        """True when both addresses land in the same row of the same bank."""
        return (
            self.channel == other.channel
            and self.rank == other.rank
            and self.bank == other.bank
            and self.row == other.row
        )


class InterleavingScheme(Enum):
    """Supported physical-address interleavings."""

    ROW_BANK_COLUMN = "row_bank_column"
    BANK_INTERLEAVED = "bank_interleaved"


class AddressMapping:
    """Decode physical addresses into (channel, rank, bank, row, column).

    Parameters
    ----------
    organization:
        DRAM geometry to decode against.
    scheme:
        Bit-field ordering; see module docstring.
    bank_mask:
        Optional list of bank indices this mapping is restricted to.
        Used by Fixed-Service bank partitioning: each thread's
        addresses are folded onto its private subset of banks, so
        threads never share a bank (and hence never conflict in a row
        buffer).  ``None`` means all banks are available.
    rank_mask:
        Optional list of rank indices, the rank-partitioning analogue
        (the paper mentions FS "with rank partitioning" but could not
        evaluate it on a 1-rank configuration; we support it for
        multi-rank organizations).
    """

    def __init__(
        self,
        organization: DramOrganization,
        scheme: InterleavingScheme = InterleavingScheme.ROW_BANK_COLUMN,
        bank_mask=None,
        rank_mask=None,
    ) -> None:
        self._org = organization
        self._scheme = scheme
        if bank_mask is not None:
            bank_mask = tuple(sorted(set(bank_mask)))
            if not bank_mask:
                raise ConfigurationError("bank_mask must not be empty")
            for bank in bank_mask:
                if not 0 <= bank < organization.banks_per_rank:
                    raise ConfigurationError(
                        f"bank {bank} outside 0..{organization.banks_per_rank - 1}"
                    )
        self._bank_mask = bank_mask
        if rank_mask is not None:
            rank_mask = tuple(sorted(set(rank_mask)))
            if not rank_mask:
                raise ConfigurationError("rank_mask must not be empty")
            for rank in rank_mask:
                if not 0 <= rank < organization.ranks_per_channel:
                    raise ConfigurationError(
                        f"rank {rank} outside "
                        f"0..{organization.ranks_per_channel - 1}"
                    )
        self._rank_mask = rank_mask

    @classmethod
    def bank_interleaved(cls, organization: DramOrganization) -> "AddressMapping":
        """Mapping that strides consecutive lines across banks."""
        return cls(organization, scheme=InterleavingScheme.BANK_INTERLEAVED)

    @classmethod
    def partitioned(cls, organization: DramOrganization, banks) -> "AddressMapping":
        """Mapping confined to a subset of banks (FS bank partitioning)."""
        return cls(organization, bank_mask=banks)

    @classmethod
    def partitioned_ranks(
        cls, organization: DramOrganization, ranks
    ) -> "AddressMapping":
        """Mapping confined to a subset of ranks (FS rank partitioning)."""
        return cls(organization, rank_mask=ranks)

    @property
    def organization(self) -> DramOrganization:
        return self._org

    @property
    def bank_mask(self):
        return self._bank_mask

    def decode(self, address: int) -> DecodedAddress:
        """Slice ``address`` into DRAM coordinates.

        Addresses beyond the installed capacity wrap (high bits are
        ignored), matching how a real controller simply does not wire
        bits it has no row address lines for.
        """
        if address < 0:
            raise ConfigurationError(f"negative physical address {address:#x}")
        org = self._org
        bits = address >> org.offset_bits

        def take(width: int):
            nonlocal bits
            value = bits & ((1 << width) - 1)
            bits >>= width
            return value

        if self._scheme is InterleavingScheme.ROW_BANK_COLUMN:
            channel = take(org.channel_bits)
            column = take(org.column_bits)
            bank = take(org.bank_bits)
            rank = take(org.rank_bits)
            row = take(org.row_bits)
        else:  # BANK_INTERLEAVED
            channel = take(org.channel_bits)
            bank = take(org.bank_bits)
            rank = take(org.rank_bits)
            column = take(org.column_bits)
            row = take(org.row_bits)

        if self._bank_mask is not None:
            # Fold the full bank space onto the permitted subset.  This
            # shrinks effective capacity per thread, which is precisely
            # the FS-with-partitioning cost the paper calls out.
            bank = self._bank_mask[bank % len(self._bank_mask)]
        if self._rank_mask is not None:
            rank = self._rank_mask[rank % len(self._rank_mask)]

        return DecodedAddress(
            channel=channel, rank=rank, bank=bank, row=row, column=column
        )

"""Top-level DRAM device model.

:class:`DramSystem` is the object the memory controller drives.  It
answers three questions:

1. *What command does a transaction need next?* —
   :meth:`required_command`: PRECHARGE on a row conflict, ACTIVATE on a
   closed bank, READ/WRITE on a row hit.
2. *Can that command legally issue this cycle?* — :meth:`can_issue`.
3. *Issue it* — :meth:`issue`; column commands return the cycle their
   data burst completes, which becomes the transaction's response
   timestamp.

Refresh is handled by :meth:`refresh_due` / :meth:`issue_refresh`,
which the controller consults before normal scheduling (refresh has
absolute priority once due, as in DRAMSim2's refresh-first policy).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ProtocolError
from repro.dram.address import DecodedAddress
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.commands import CommandType, DramCommand
from repro.dram.organization import DramOrganization
from repro.dram.timing import DramTiming
from repro.obs.events import CATEGORY_DRAM
from repro.obs.tracer import NULL_TRACER


class DramSystem:
    """All channels of the memory subsystem behind one controller."""

    def __init__(
        self,
        timing: Optional[DramTiming] = None,
        organization: Optional[DramOrganization] = None,
        enable_refresh: bool = True,
    ) -> None:
        self.timing = timing or DramTiming()
        self.organization = organization or DramOrganization()
        self.channels = [
            Channel(
                self.timing,
                self.organization.ranks_per_channel,
                self.organization.banks_per_rank,
            )
            for _ in range(self.organization.channels)
        ]
        self._enable_refresh = enable_refresh
        self.tracer = NULL_TRACER
        # Next refresh deadline per (channel, rank).
        self._refresh_deadline = {
            (c, r): self.timing.tREFI
            for c in range(self.organization.channels)
            for r in range(self.organization.ranks_per_channel)
        }

    # -- structure accessors ------------------------------------------------

    def bank(self, address: DecodedAddress) -> Bank:
        """The bank a decoded address targets."""
        return self.channels[address.channel].ranks[address.rank].banks[address.bank]

    # -- command planning ---------------------------------------------------

    def required_command(self, address: DecodedAddress, is_write: bool) -> DramCommand:
        """The next command needed to service an access to ``address``."""
        bank = self.bank(address)
        if bank.is_row_hit(address.row):
            kind = CommandType.WRITE if is_write else CommandType.READ
        elif bank.open_row is None:
            kind = CommandType.ACTIVATE
        else:
            kind = CommandType.PRECHARGE
        return DramCommand(kind=kind, address=address)

    def is_row_hit(self, address: DecodedAddress) -> bool:
        """True when an access to ``address`` would hit an open row."""
        return self.bank(address).is_row_hit(address.row)

    def can_advance(self, address: DecodedAddress, is_write: bool,
                    cycle: int) -> bool:
        """Can the *required* command for this access issue at ``cycle``?

        Allocation-free fast path for schedulers that scan the whole
        transaction queue every cycle; equivalent to
        ``can_issue(required_command(address, is_write), cycle)``.
        """
        channel = self.channels[address.channel]
        bank = channel.ranks[address.rank].banks[address.bank]
        if bank.is_row_hit(address.row):
            if is_write:
                return channel.can_write(address.rank, address.bank,
                                         address.row, cycle)
            return channel.can_read(address.rank, address.bank,
                                    address.row, cycle)
        if bank.open_row is None:
            return channel.can_activate(address.rank, address.bank, cycle)
        return channel.can_precharge(address.rank, address.bank, cycle)

    def earliest_advance_cycle(self, address: DecodedAddress, is_write: bool,
                               cycle: int) -> int:
        """Earliest ``c' >= cycle`` with ``can_advance(address, is_write, c')``.

        Exact — not just a lower bound — provided no command issues to
        this DRAM system in the meantime: every constraint involved
        (command bus, data bus, bank/rank earliest-issue registers) is
        a fixed threshold that only moves when a command issues, so the
        required command and its legality are frozen over the gap.  The
        next-event engine relies on this to jump straight to the cycle
        a stalled transaction becomes schedulable.
        """
        channel = self.channels[address.channel]
        rank = channel.ranks[address.rank]
        bank = rank.banks[address.bank]
        earliest = max(cycle, channel.earliest_command_bus())
        if bank.is_row_hit(address.row):
            earliest = max(
                earliest,
                bank.earliest_column(),
                channel.earliest_data_bus_command(address.rank, is_write),
            )
            if not is_write:
                earliest = max(earliest, rank.earliest_read_gate())
            return earliest
        if bank.open_row is None:
            return max(earliest, rank.earliest_activate(address.bank))
        return max(earliest, bank.earliest_precharge())

    def can_issue(self, command: DramCommand, cycle: int) -> bool:
        """May ``command`` legally issue at ``cycle``?"""
        a = command.address
        channel = self.channels[a.channel]
        if command.kind is CommandType.ACTIVATE:
            return channel.can_activate(a.rank, a.bank, cycle)
        if command.kind is CommandType.PRECHARGE:
            return channel.can_precharge(a.rank, a.bank, cycle)
        if command.kind is CommandType.READ:
            return channel.can_read(a.rank, a.bank, a.row, cycle)
        if command.kind is CommandType.WRITE:
            return channel.can_write(a.rank, a.bank, a.row, cycle)
        if command.kind is CommandType.REFRESH:
            return channel.can_refresh(a.rank, cycle)
        raise ProtocolError(f"unknown command kind {command.kind}")

    def issue(self, command: DramCommand, cycle: int,
              auto_precharge: bool = False) -> Optional[int]:
        """Issue ``command``; returns burst-complete cycle for column cmds.

        ``auto_precharge`` applies only to column commands (RDA/WRA:
        the bank closes itself after the access, the closed-page
        policy's primitive).
        """
        a = command.address
        channel = self.channels[a.channel]
        if self.tracer.enabled:
            # Every DRAM command the controller issues funnels through
            # here, so this one hook covers ACT/PRE/RD/WR/REF.
            self.tracer.emit(
                cycle, CATEGORY_DRAM, f"dram.{command.kind.value}",
                channel=a.channel, rank=a.rank, bank=a.bank, row=a.row,
            )
        if command.kind is CommandType.ACTIVATE:
            channel.activate(a.rank, a.bank, a.row, cycle)
            return None
        if command.kind is CommandType.PRECHARGE:
            channel.precharge(a.rank, a.bank, cycle)
            return None
        if command.kind is CommandType.READ:
            return channel.read(a.rank, a.bank, a.row, cycle, auto_precharge)
        if command.kind is CommandType.WRITE:
            return channel.write(a.rank, a.bank, a.row, cycle, auto_precharge)
        if command.kind is CommandType.REFRESH:
            channel.refresh(a.rank, cycle)
            self._refresh_deadline[(a.channel, a.rank)] = cycle + self.timing.tREFI
            return None
        raise ProtocolError(f"unknown command kind {command.kind}")

    # -- refresh management ---------------------------------------------------

    def refresh_due(self, cycle: int):
        """(channel, rank) pairs whose refresh deadline has passed."""
        if not self._enable_refresh:
            return []
        return [key for key, deadline in self._refresh_deadline.items()
                if cycle >= deadline]

    def next_refresh_cycle(self) -> Optional[int]:
        """The earliest refresh deadline, or ``None`` when disabled."""
        if not self._enable_refresh or not self._refresh_deadline:
            return None
        return min(self._refresh_deadline.values())

    def refresh_precharge_targets(self, channel: int, rank: int):
        """Banks that must be precharged before a refresh can issue."""
        rk = self.channels[channel].ranks[rank]
        return [i for i, b in enumerate(rk.banks) if b.open_row is not None]

    # -- statistics --------------------------------------------------------------

    def total_row_hits(self) -> int:
        return sum(
            b.row_hit_count
            for ch in self.channels
            for rk in ch.ranks
            for b in rk.banks
        )

    def total_activates(self) -> int:
        return sum(
            b.activate_count
            for ch in self.channels
            for rk in ch.ranks
            for b in rk.banks
        )

    def data_bus_busy_cycles(self) -> int:
        return sum(ch.data_bus_busy_cycles for ch in self.channels)

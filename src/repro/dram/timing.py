"""DDR3 timing parameters.

All values are expressed in memory-controller clock cycles.  The
defaults model DDR3-1333 (667 MHz DRAM clock), matching the paper's
simulated configuration (Table II: "DDR3, 1333 MHz").  For simplicity
the whole simulator runs on a single clock domain; the CPU-to-DRAM
frequency ratio is folded into the core model's instruction throughput
rather than modelled as a second clock.

Constraint glossary (standard JEDEC DDR3 names):

========  ==========================================================
tRCD      ACTIVATE to internal READ/WRITE delay (row to column)
tRP       PRECHARGE to ACTIVATE delay (same bank)
tCAS/CL   READ command to first data beat
tCWL      WRITE command to first data beat
tRAS      ACTIVATE to PRECHARGE minimum (row must stay open this long)
tRC       ACTIVATE to ACTIVATE, same bank (tRAS + tRP)
tWR       end of write burst to PRECHARGE (write recovery)
tWTR      end of write burst to READ command, same rank
tRTP      READ to PRECHARGE, same bank
tCCD      column command to column command (burst gap)
tRRD      ACTIVATE to ACTIVATE, different banks, same rank
tFAW      rolling window in which at most four ACTIVATEs per rank fit
tBURST    data bus beats per access = burst_length / 2 (DDR)
tRFC      REFRESH command duration (rank unavailable)
tREFI     average interval between REFRESH commands
tRTRS     rank-to-rank data-bus switch penalty
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class DramTiming:
    """A bundle of DDR3 timing constraints, in controller cycles.

    The defaults correspond to DDR3-1333H (9-9-9) with an 8-beat burst,
    the configuration simulated in the paper.
    """

    tRCD: int = 9
    tRP: int = 9
    tCAS: int = 9
    tCWL: int = 7
    tRAS: int = 24
    tWR: int = 10
    tWTR: int = 5
    tRTP: int = 5
    tCCD: int = 4
    tRRD: int = 4
    tFAW: int = 20
    burst_length: int = 8
    tRFC: int = 74
    tREFI: int = 5200
    tRTRS: int = 1

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if value <= 0:
                raise ConfigurationError(
                    f"DRAM timing parameter {f.name} must be positive, got {value}"
                )
        if self.burst_length % 2 != 0:
            raise ConfigurationError(
                f"burst_length must be even (DDR transfers 2 beats/cycle), "
                f"got {self.burst_length}"
            )
        if self.tRAS + self.tRP < self.tRCD:
            raise ConfigurationError("inconsistent timing: tRAS + tRP < tRCD")

    @property
    def tBURST(self) -> int:
        """Data-bus occupancy of one access, in cycles (DDR: BL/2)."""
        return self.burst_length // 2

    @property
    def tRC(self) -> int:
        """ACTIVATE-to-ACTIVATE minimum for one bank (tRAS + tRP)."""
        return self.tRAS + self.tRP

    @property
    def read_latency(self) -> int:
        """Cycles from READ issue until the last data beat returns."""
        return self.tCAS + self.tBURST

    @property
    def write_latency(self) -> int:
        """Cycles from WRITE issue until the last data beat is absorbed."""
        return self.tCWL + self.tBURST

    def row_hit_latency(self) -> int:
        """Best-case read service time (open row): CL + burst."""
        return self.read_latency

    def row_closed_latency(self) -> int:
        """Read service time when the bank is precharged: tRCD + CL + burst."""
        return self.tRCD + self.read_latency

    def row_conflict_latency(self) -> int:
        """Read service time on a row-buffer conflict: tRP + tRCD + CL + burst."""
        return self.tRP + self.tRCD + self.read_latency

"""Per-bank state machine with timing-constraint bookkeeping.

Each bank tracks its open row plus the earliest cycle at which each
command class may legally issue.  Constraints that span banks (tRRD,
tFAW, data-bus occupancy, tWTR, rank refresh) live in
:class:`repro.dram.rank.Rank` and :class:`repro.dram.channel.Channel`;
this class owns the strictly per-bank rules:

* ACTIVATE: not before ``tRP`` after a PRECHARGE, nor ``tRC`` after the
  previous ACTIVATE, and only when the bank is precharged.
* READ/WRITE: only on the open row, not before ``tRCD`` after ACTIVATE.
* PRECHARGE: not before ``tRAS`` after ACTIVATE, ``tRTP`` after a READ,
  nor write-recovery ``tCWL + tBURST + tWR`` after a WRITE.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.common.errors import ProtocolError
from repro.dram.timing import DramTiming


class BankState(Enum):
    """Row-buffer state of one bank."""

    PRECHARGED = "precharged"
    ACTIVE = "active"


class Bank:
    """One DRAM bank: row-buffer FSM plus earliest-issue registers."""

    def __init__(self, timing: DramTiming) -> None:
        self._timing = timing
        self._state = BankState.PRECHARGED
        self._open_row: Optional[int] = None
        # Earliest cycles at which each command class may issue.
        self._next_activate = 0
        self._next_column = 0
        self._next_precharge = 0
        # Statistics the controller and benchmarks read.
        self.activate_count = 0
        self.precharge_count = 0
        self.read_count = 0
        self.write_count = 0
        self.row_hit_count = 0

    # -- observers ----------------------------------------------------

    @property
    def state(self) -> BankState:
        return self._state

    @property
    def open_row(self) -> Optional[int]:
        """The row currently latched in the row buffer, if any."""
        return self._open_row

    def is_row_hit(self, row: int) -> bool:
        """True when a column access to ``row`` would hit the row buffer."""
        return self._state is BankState.ACTIVE and self._open_row == row

    def earliest_activate(self) -> int:
        return self._next_activate

    def earliest_column(self) -> int:
        return self._next_column

    def earliest_precharge(self) -> int:
        return self._next_precharge

    def can_activate(self, cycle: int) -> bool:
        return self._state is BankState.PRECHARGED and cycle >= self._next_activate

    def can_column(self, cycle: int, row: int) -> bool:
        return self.is_row_hit(row) and cycle >= self._next_column

    def can_precharge(self, cycle: int) -> bool:
        return self._state is BankState.ACTIVE and cycle >= self._next_precharge

    # -- command application -------------------------------------------

    def activate(self, cycle: int, row: int) -> None:
        """Open ``row`` in the row buffer."""
        if not self.can_activate(cycle):
            raise ProtocolError(
                f"illegal ACTIVATE at cycle {cycle}: state={self._state.value}, "
                f"earliest={self._next_activate}"
            )
        t = self._timing
        self._state = BankState.ACTIVE
        self._open_row = row
        self._next_column = cycle + t.tRCD
        self._next_precharge = cycle + t.tRAS
        self._next_activate = cycle + t.tRC
        self.activate_count += 1

    def read(self, cycle: int, row: int, auto_precharge: bool = False) -> None:
        """Issue a READ column command to the open row.

        ``auto_precharge`` models RDA: the bank closes itself after
        tRTP without occupying a command-bus slot; the next ACTIVATE
        is legal tRTP + tRP after the read.
        """
        if not self.can_column(cycle, row):
            raise ProtocolError(
                f"illegal READ at cycle {cycle}: open_row={self._open_row}, "
                f"requested row={row}, earliest={self._next_column}"
            )
        t = self._timing
        # Reads delay a subsequent precharge by tRTP.
        self._next_precharge = max(self._next_precharge, cycle + t.tRTP)
        self._next_column = max(self._next_column, cycle + t.tCCD)
        self.read_count += 1
        self.row_hit_count += 1
        if auto_precharge:
            self._auto_precharge(cycle + t.tRTP)

    def write(self, cycle: int, row: int, auto_precharge: bool = False) -> None:
        """Issue a WRITE column command to the open row.

        ``auto_precharge`` models WRA (see :meth:`read`); the close
        happens after write recovery.
        """
        if not self.can_column(cycle, row):
            raise ProtocolError(
                f"illegal WRITE at cycle {cycle}: open_row={self._open_row}, "
                f"requested row={row}, earliest={self._next_column}"
            )
        t = self._timing
        # Write recovery: data must land (tCWL + tBURST) and settle (tWR)
        # before the row can be closed.
        self._next_precharge = max(
            self._next_precharge, cycle + t.tCWL + t.tBURST + t.tWR
        )
        self._next_column = max(self._next_column, cycle + t.tCCD)
        self.write_count += 1
        self.row_hit_count += 1
        if auto_precharge:
            self._auto_precharge(cycle + t.tCWL + t.tBURST + t.tWR)

    def _auto_precharge(self, effective_cycle: int) -> None:
        """Close the row as of ``effective_cycle`` (no bus slot used)."""
        t = self._timing
        # Honour tRAS: the row must have been open long enough; the
        # effective close time is pushed to the later of the two.
        close = max(effective_cycle, self._next_precharge)
        self._state = BankState.PRECHARGED
        self._open_row = None
        self._next_activate = max(self._next_activate, close + t.tRP)
        self.precharge_count += 1

    def precharge(self, cycle: int) -> None:
        """Close the open row."""
        if not self.can_precharge(cycle):
            raise ProtocolError(
                f"illegal PRECHARGE at cycle {cycle}: state={self._state.value}, "
                f"earliest={self._next_precharge}"
            )
        t = self._timing
        self._state = BankState.PRECHARGED
        self._open_row = None
        self._next_activate = max(self._next_activate, cycle + t.tRP)
        self.precharge_count += 1

    def force_refresh_block(self, cycle: int) -> None:
        """Block the bank while its rank is refreshing.

        Called by the rank for every bank when a REFRESH issues;
        refresh requires all banks precharged, and no command may issue
        until ``tRFC`` later.
        """
        if self._state is not BankState.PRECHARGED:
            raise ProtocolError("REFRESH issued while a bank still has an open row")
        ready = cycle + self._timing.tRFC
        self._next_activate = max(self._next_activate, ready)

"""Per-channel shared resources: command bus and data bus.

One command may issue on a channel per cycle (command-bus width), and
the bidirectional data bus carries one burst at a time.  Data-bus
occupancy is the key cross-thread interference resource in the paper's
threat model: a victim's burst delays the attacker's burst, which is
exactly what the attacker's latency probe measures.
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.dram.rank import Rank
from repro.dram.timing import DramTiming


class Channel:
    """Ranks plus the shared command/data buses of one memory channel."""

    def __init__(self, timing: DramTiming, ranks_per_channel: int,
                 banks_per_rank: int) -> None:
        self._timing = timing
        self.ranks = [Rank(timing, banks_per_rank) for _ in range(ranks_per_channel)]
        self._command_bus_busy_until = 0  # exclusive: free at this cycle
        self._data_bus_busy_until = 0
        self._last_data_rank = -1
        self.data_bus_busy_cycles = 0

    # -- command bus -----------------------------------------------------

    def command_bus_free(self, cycle: int) -> bool:
        """True when a command may be driven this cycle."""
        return cycle >= self._command_bus_busy_until

    def earliest_command_bus(self) -> int:
        """First cycle the command bus is free (planning helper)."""
        return self._command_bus_busy_until

    def _claim_command_bus(self, cycle: int) -> None:
        if not self.command_bus_free(cycle):
            raise ProtocolError(
                f"command bus busy at cycle {cycle} "
                f"(free at {self._command_bus_busy_until})"
            )
        self._command_bus_busy_until = cycle + 1

    # -- data bus ----------------------------------------------------------

    def _data_bus_start(self, cycle: int, rank_index: int, is_write: bool) -> int:
        """First cycle the burst for a column command at ``cycle`` occupies."""
        t = self._timing
        lead = t.tCWL if is_write else t.tCAS
        start = cycle + lead
        return start

    def data_bus_free_for(self, cycle: int, rank_index: int, is_write: bool) -> bool:
        """Would the burst triggered by a column command at ``cycle`` fit?"""
        start = self._data_bus_start(cycle, rank_index, is_write)
        earliest = self._data_bus_busy_until
        if self._last_data_rank not in (-1, rank_index):
            earliest += self._timing.tRTRS
        return start >= earliest

    def earliest_data_bus_command(self, rank_index: int, is_write: bool) -> int:
        """Earliest command cycle whose burst fits on the data bus.

        May be negative or in the past — callers take the max with the
        current cycle.  Exact while no other command issues in between:
        ``data_bus_free_for(c, ...)`` is monotone in ``c``.
        """
        lead = self._timing.tCWL if is_write else self._timing.tCAS
        earliest = self._data_bus_busy_until
        if self._last_data_rank not in (-1, rank_index):
            earliest += self._timing.tRTRS
        return earliest - lead

    def _claim_data_bus(self, cycle: int, rank_index: int, is_write: bool) -> int:
        start = self._data_bus_start(cycle, rank_index, is_write)
        if not self.data_bus_free_for(cycle, rank_index, is_write):
            raise ProtocolError(
                f"data bus conflict: burst at {start} but bus busy until "
                f"{self._data_bus_busy_until}"
            )
        end = start + self._timing.tBURST
        self._data_bus_busy_until = end
        self._last_data_rank = rank_index
        self.data_bus_busy_cycles += self._timing.tBURST
        return end

    # -- high-level issue helpers -----------------------------------------

    def can_activate(self, rank: int, bank: int, cycle: int) -> bool:
        return self.command_bus_free(cycle) and self.ranks[rank].can_activate(
            bank, cycle
        )

    def can_precharge(self, rank: int, bank: int, cycle: int) -> bool:
        return self.command_bus_free(cycle) and self.ranks[rank].banks[
            bank
        ].can_precharge(cycle)

    def can_read(self, rank: int, bank: int, row: int, cycle: int) -> bool:
        return (
            self.command_bus_free(cycle)
            and self.ranks[rank].can_read(bank, cycle, row)
            and self.data_bus_free_for(cycle, rank, is_write=False)
        )

    def can_write(self, rank: int, bank: int, row: int, cycle: int) -> bool:
        return (
            self.command_bus_free(cycle)
            and self.ranks[rank].can_write(bank, cycle, row)
            and self.data_bus_free_for(cycle, rank, is_write=True)
        )

    def can_refresh(self, rank: int, cycle: int) -> bool:
        return self.command_bus_free(cycle) and self.ranks[rank].can_refresh(cycle)

    def activate(self, rank: int, bank: int, row: int, cycle: int) -> None:
        self._claim_command_bus(cycle)
        self.ranks[rank].activate(bank, cycle, row)

    def precharge(self, rank: int, bank: int, cycle: int) -> None:
        self._claim_command_bus(cycle)
        self.ranks[rank].precharge(bank, cycle)

    def read(self, rank: int, bank: int, row: int, cycle: int,
             auto_precharge: bool = False) -> int:
        """Issue a READ; returns the cycle the last data beat arrives."""
        self._claim_command_bus(cycle)
        end = self._claim_data_bus(cycle, rank, is_write=False)
        self.ranks[rank].read(bank, cycle, row, auto_precharge)
        return end

    def write(self, rank: int, bank: int, row: int, cycle: int,
              auto_precharge: bool = False) -> int:
        """Issue a WRITE; returns the cycle the last data beat lands."""
        self._claim_command_bus(cycle)
        end = self._claim_data_bus(cycle, rank, is_write=True)
        self.ranks[rank].write(bank, cycle, row, auto_precharge)
        return end

    def refresh(self, rank: int, cycle: int) -> None:
        self._claim_command_bus(cycle)
        self.ranks[rank].refresh(cycle)

"""DDR3 DRAM device model (DRAMSim2-style substrate).

The paper evaluates Camouflage on SDSim, which couples the SSim core
model with DRAMSim2.  This package is our from-scratch equivalent: a
bank/rank/channel state machine that enforces the full set of DDR3
timing constraints and exposes exactly the interface a memory
controller needs — "which command does this transaction need next, can
I issue it this cycle, and when will its data arrive".

Public surface:

* :class:`DramTiming` — DDR3 timing parameter bundle (default: DDR3-1333
  as in the paper's Table II).
* :class:`DramOrganization` / :class:`AddressMapping` — geometry and
  physical-address decode.
* :class:`CommandType` / :class:`DramCommand` — command vocabulary.
* :class:`DramSystem` — the device model the controller drives.
"""

from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.bank import Bank, BankState
from repro.dram.commands import CommandType, DramCommand
from repro.dram.organization import DramOrganization
from repro.dram.presets import (
    DDR3_1066,
    DDR3_1333,
    DDR3_1600,
    DDR4_2400,
    timing_preset,
)
from repro.dram.system import DramSystem
from repro.dram.timing import DramTiming

__all__ = [
    "AddressMapping",
    "Bank",
    "BankState",
    "CommandType",
    "DDR3_1066",
    "DDR3_1333",
    "DDR3_1600",
    "DDR4_2400",
    "timing_preset",
    "DecodedAddress",
    "DramCommand",
    "DramOrganization",
    "DramSystem",
    "DramTiming",
]

"""DRAM command vocabulary.

The controller decomposes each memory transaction into a sequence of
these commands.  Only the commands a timing simulator needs are
modelled; mode-register writes, ZQ calibration and power-down states do
not affect the interference phenomena the paper studies and are
omitted (documented substitution — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.dram.address import DecodedAddress


class CommandType(Enum):
    """JEDEC DDR3 command types relevant to timing."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value


@dataclass(frozen=True)
class DramCommand:
    """One command addressed to a specific bank (or rank for REFRESH)."""

    kind: CommandType
    address: DecodedAddress

    @property
    def is_column(self) -> bool:
        """True for column commands (READ/WRITE) that move data."""
        return self.kind in (CommandType.READ, CommandType.WRITE)

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        a = self.address
        return (
            f"{self.kind.value} ch{a.channel} rk{a.rank} bk{a.bank} "
            f"row{a.row} col{a.column}"
        )

"""Named DRAM timing presets.

The paper simulates DDR3-1333 (Table II); these presets add the
neighbouring grades so substrate-sensitivity ablations can check that
Camouflage's conclusions do not hinge on one speed bin.  All values
are in controller cycles at the respective DRAM clock, derived from
standard JEDEC datasheet timings.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import ConfigurationError
from repro.dram.timing import DramTiming

#: DDR3-1066F (7-7-7): slower clock, fewer cycles per constraint.
DDR3_1066 = DramTiming(
    tRCD=7, tRP=7, tCAS=7, tCWL=6, tRAS=20, tWR=8, tWTR=4, tRTP=4,
    tCCD=4, tRRD=4, tFAW=20, burst_length=8, tRFC=59, tREFI=4160,
    tRTRS=1,
)

#: DDR3-1333H (9-9-9): the paper's configuration (Table II).
DDR3_1333 = DramTiming()

#: DDR3-1600K (11-11-11).
DDR3_1600 = DramTiming(
    tRCD=11, tRP=11, tCAS=11, tCWL=8, tRAS=28, tWR=12, tWTR=6, tRTP=6,
    tCCD=4, tRRD=5, tFAW=24, burst_length=8, tRFC=88, tREFI=6240,
    tRTRS=1,
)

#: DDR4-2400 (17-17-17): double the clock, deeper latencies, tighter
#: bank groups approximated by a larger tCCD.
DDR4_2400 = DramTiming(
    tRCD=17, tRP=17, tCAS=17, tCWL=12, tRAS=39, tWR=18, tWTR=9, tRTP=9,
    tCCD=6, tRRD=6, tFAW=26, burst_length=8, tRFC=312, tREFI=9360,
    tRTRS=2,
)

PRESETS: Dict[str, DramTiming] = {
    "ddr3-1066": DDR3_1066,
    "ddr3-1333": DDR3_1333,
    "ddr3-1600": DDR3_1600,
    "ddr4-2400": DDR4_2400,
}


def timing_preset(name: str) -> DramTiming:
    """Look up a preset by name (case-insensitive)."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown DRAM preset {name!r}; known: {sorted(PRESETS)}"
        ) from None

"""Attack implementations: covert-channel decoding and side-channel
co-runner distinguishing.

These are the adversary's half of the paper's empirical evaluations:

* The covert-channel **receiver** (Figures 14/15): given the bus-event
  timeline of the sender's security domain, recover the key by
  thresholding per-PULSE-window traffic counts.
* The side-channel **distinguisher** (Figure 9 / section IV-D): given
  the adversary's own response-latency series under two different
  co-runners, quantify how separable the two are.  FR-FCFS gives high
  separability; RespC collapses it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.security.mutual_information import windowed_counts


def decode_covert_key(
    event_times: Sequence[int],
    pulse_cycles: int,
    num_bits: int,
    start_cycle: int = 0,
) -> List[int]:
    """Recover key bits from a bus-event timeline.

    Counts events in consecutive ``pulse_cycles`` windows and
    thresholds at the midpoint between the lowest and highest observed
    window count — the optimal detector for a two-level on/off
    encoding.  With Camouflage's shaping the windows all look alike,
    the threshold separates noise from noise, and decoding collapses
    to chance.
    """
    if num_bits <= 0:
        raise ConfigurationError("num_bits must be positive")
    counts = windowed_counts(event_times, pulse_cycles, num_bits, start_cycle)
    low, high = int(counts.min()), int(counts.max())
    threshold = (low + high) / 2.0
    return [1 if c > threshold else 0 for c in counts]


def decode_covert_key_matched(
    event_times: Sequence[int],
    pulse_cycles: int,
    num_bits: int,
    max_phase_shift: Optional[int] = None,
    phase_step: Optional[int] = None,
) -> List[int]:
    """A stronger covert receiver: matched filter with phase search.

    The simple threshold decoder assumes bit boundaries align with its
    windows; a real attacker searches over clock offsets.  This
    decoder slides the window grid forward over ``0..max_phase_shift``
    cycles (default: a full pulse — the listener starts before the
    sender, so the first bit boundary lies ahead) in ``phase_step``
    increments, decodes at each offset, and keeps the offset whose
    window counts are most bimodal (largest separation between the low
    and high clusters) — the maximum-likelihood choice for an on/off
    keying.

    Camouflage must (and does — see the covert benchmarks) defeat this
    decoder too: with a flat envelope there is no offset at which the
    counts separate.
    """
    if num_bits <= 0:
        raise ConfigurationError("num_bits must be positive")
    if pulse_cycles <= 0:
        raise ConfigurationError("pulse_cycles must be positive")
    if max_phase_shift is None:
        max_phase_shift = pulse_cycles - 1
    if phase_step is None:
        phase_step = max(1, pulse_cycles // 8)

    best_bits: List[int] = [0] * num_bits
    best_separation = -1.0
    for offset in range(0, max_phase_shift + 1, phase_step):
        counts = windowed_counts(
            event_times, pulse_cycles, num_bits, start_cycle=offset
        )
        sorted_counts = np.sort(counts)
        # Largest gap between consecutive sorted counts = the cluster
        # separation the on/off keying should produce.
        if sorted_counts.size < 2:
            continue
        gaps = np.diff(sorted_counts)
        split = int(np.argmax(gaps))
        separation = float(gaps[split])
        spread = float(sorted_counts[-1] - sorted_counts[0]) or 1.0
        score = separation / spread
        if separation > 0 and score * separation > best_separation:
            threshold = (
                sorted_counts[split] + sorted_counts[split + 1]
            ) / 2.0
            best_separation = score * separation
            best_bits = [1 if c > threshold else 0 for c in counts]
    return best_bits


def bit_error_rate(decoded: Sequence[int], actual: Sequence[int]) -> float:
    """Fraction of differing bits (0 = perfect recovery, 0.5 ≈ chance)."""
    if len(decoded) != len(actual):
        raise ConfigurationError(
            f"bit vectors differ in length ({len(decoded)} vs {len(actual)})"
        )
    if not actual:
        raise ConfigurationError("empty bit vectors")
    errors = sum(1 for d, a in zip(decoded, actual) if d != a)
    return errors / len(actual)


def corunner_distinguishability(
    latencies_a: Sequence[float], latencies_b: Sequence[float]
) -> float:
    """Separability of two latency distributions (Cohen's d style).

    |mean_a − mean_b| / pooled standard deviation.  Values ≫ 0 mean an
    adversary can tell its co-runner changed by timing its own
    responses; values near 0 mean the channel is closed.
    """
    a = np.asarray(latencies_a, dtype=float)
    b = np.asarray(latencies_b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ConfigurationError("latency series must be non-empty")
    pooled_var = (a.var() + b.var()) / 2.0
    if pooled_var == 0:
        # Identical constants: distinguishable iff the means differ.
        return 0.0 if a.mean() == b.mean() else float("inf")
    return float(abs(a.mean() - b.mean()) / np.sqrt(pooled_var))

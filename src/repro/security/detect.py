"""Detectability lab: the attacker zoo (ROADMAP item 2).

Plug-in mutual information is *one* attacker.  The adversarial-learning
side-channel literature (PAPERS.md) shows trained classifiers routinely
beat MI at distinguishing shaped traffic from the distribution it
claims to follow, and Gong–Kiyavash's scheduler analysis shows leakage
metrics are estimator-sensitive.  This module scores a shaper
configuration against a small zoo of attackers simultaneously:

* **ROC/AUC over trained classifiers** — a logistic model and a
  gradient-boosted-stump ensemble (stdlib + numpy only, no sklearn)
  are trained to tell *observed-trace* segments from segments of a
  synthetic trace drawn from the configured target distribution.
  AUC ≈ 0.5 means the shaped stream is indistinguishable from its
  target; AUC → 1.0 means a cheap learner can spot the shaping
  residue.  Features are inter-arrival / burst / window-count
  statistics per fixed-length segment (:data:`FEATURE_NAMES`).
* **Max cross-correlation** — the strongest normalised correlation
  between intrinsic and observed per-window rates over a small lag
  range.  1.0 means the observed bus mirrors the program (no shaping);
  ≈ 0 means the shaper decorrelated them.
* **Spectral probe** — periodogram peak-to-median ratio of the
  observed per-window counts.  A covert sender's ON/OFF pulse or a
  fixed-chaff signature shows up as a dominant line; an i.i.d. target
  stream does not.

Determinism: every stochastic step (target-trace synthesis, the
train/test split) draws from :class:`~repro.common.rng.DeterministicRng`
substreams of one seed, so a :class:`DetectReport` — and its canonical
digest — is a pure function of ``(traces, spec, target, seed)``.  The
adversary's clock granularity is the bin geometry itself: gaps are
quantized to their bin's lower edge on *both* sides before
featurization, so classifiers measure distributional and ordering
structure, never sub-bin timing the hardware model does not expose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.common.util import canonical_json_digest
from repro.core.bins import BinSpec
from repro.security.mutual_information import windowed_counts

#: Per-segment feature vector, in order.
FEATURE_NAMES: Tuple[str, ...] = (
    "log_mean_gap",      # log1p of the mean inter-arrival time
    "cv_gap",            # coefficient of variation of the gaps
    "burst_fraction",    # fraction of gaps below the burst edge
    "tail_fraction",     # fraction of gaps at/above the largest edge
    "count_mean",        # mean per-window event count
    "count_std",         # std of per-window event counts
    "count_peak",        # max per-window event count
)

#: Gaps per classifier segment (one training example).
DEFAULT_SEGMENT_GAPS = 16

#: Minimum test examples per class for a meaningful AUC; below this the
#: classifiers abstain and score a non-committal 0.5.
_MIN_SEGMENTS_PER_CLASS = 4


def quantize_gaps(gaps: Sequence[int], spec: BinSpec) -> List[int]:
    """Snap each gap to its bin's lower edge (the attacker's clock)."""
    edges = spec.edges
    return [edges[spec.bin_of(int(g))] for g in gaps]


def sample_target_gaps(
    spec: BinSpec,
    frequencies: Sequence[float],
    count: int,
    rng: DeterministicRng,
) -> List[int]:
    """Synthesize ``count`` i.i.d. gaps from a target bin distribution.

    Each draw picks a bin by inverse-CDF over ``frequencies`` and emits
    that bin's lower edge — the same quantized view
    :func:`quantize_gaps` gives of a real trace, so synthetic and
    observed traces are compared on equal footing.
    """
    if len(frequencies) != spec.num_bins:
        raise ConfigurationError(
            "target distribution has wrong number of bins "
            f"({len(frequencies)} vs {spec.num_bins})"
        )
    total = float(sum(frequencies))
    if total <= 0.0:
        raise ConfigurationError("target distribution has no mass")
    cdf: List[float] = []
    acc = 0.0
    for f in frequencies:
        acc += f / total
        cdf.append(acc)
    cdf[-1] = 1.0
    out: List[int] = []
    for _ in range(count):
        u = rng.random()
        index = 0
        while index < len(cdf) - 1 and u > cdf[index]:
            index += 1
        out.append(spec.edges[index])
    return out


def segment_features(
    gaps: Sequence[int],
    spec: BinSpec,
    segment_gaps: int = DEFAULT_SEGMENT_GAPS,
) -> np.ndarray:
    """Featurize a gap sequence into ``(n_segments, n_features)``.

    Consecutive runs of ``segment_gaps`` quantized gaps become one
    example; a trailing partial segment is discarded (its statistics
    would be noisier than the rest and bias whichever class owns it).
    """
    if segment_gaps < 2:
        raise ConfigurationError("segment_gaps must be at least 2")
    q = quantize_gaps(gaps, spec)
    n_segments = len(q) // segment_gaps
    features = np.zeros((n_segments, len(FEATURE_NAMES)))
    if n_segments == 0:
        return features
    burst_edge = spec.edges[min(2, spec.num_bins - 1)]
    tail_edge = spec.edges[-1]
    for s in range(n_segments):
        seg = np.asarray(q[s * segment_gaps:(s + 1) * segment_gaps],
                         dtype=np.int64)
        mean = float(seg.mean())
        std = float(seg.std())
        times = np.cumsum(seg)
        span = int(times[-1])
        # Quarter-span windows: counts measure the segment's *internal*
        # burstiness irrespective of its absolute rate (a fixed-cycle
        # window would mostly re-encode the mean gap — segments shorter
        # than one window all collapse to a single full count).
        counts = windowed_counts(times, max(1, span // 4), 4)
        features[s] = (
            math.log1p(mean),
            std / mean if mean > 0 else 0.0,
            float((seg < burst_edge).mean()),
            float((seg >= tail_edge).mean()),
            float(counts.mean()),
            float(counts.std()),
            float(counts.max()),
        )
    return features


# ---------------------------------------------------------------------------
# classifiers (stdlib + numpy; deterministic by construction)
# ---------------------------------------------------------------------------


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogisticClassifier:
    """Full-batch gradient-descent logistic regression.

    Features are standardized with training-set statistics; the descent
    is deterministic (zero init, fixed step count), so two fits on the
    same data produce bit-identical scores.
    """

    def __init__(self, learning_rate: float = 0.5, iterations: int = 200,
                 l2: float = 1e-3) -> None:
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._mean = X.mean(axis=0)
        self._std = np.maximum(X.std(axis=0), 1e-9)
        Xs = np.hstack([self._standardize(X), np.ones((len(X), 1))])
        w = np.zeros(Xs.shape[1])
        for _ in range(self.iterations):
            p = _sigmoid(Xs @ w)
            grad = Xs.T @ (p - y) / len(y) + self.l2 * w
            w -= self.learning_rate * grad
        self._weights = w
        return self

    def scores(self, X: np.ndarray) -> np.ndarray:
        Xs = np.hstack([
            self._standardize(np.asarray(X, dtype=float)),
            np.ones((len(X), 1)),
        ])
        return _sigmoid(Xs @ self._weights)


class GradientBoostedStumps:
    """Gradient boosting with depth-1 regression stumps.

    Each round fits one stump (feature, threshold, left/right value) to
    the logistic-loss gradient; thresholds are feature quantiles, ties
    break toward the lowest (feature, threshold) pair, so the ensemble
    is deterministic.
    """

    def __init__(self, rounds: int = 40, learning_rate: float = 0.3,
                 quantiles: int = 8) -> None:
        self.rounds = rounds
        self.learning_rate = learning_rate
        self.quantiles = quantiles
        self._stumps: List[Tuple[int, float, float, float]] = []
        self._base = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedStumps":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        self._stumps = []
        self._base = 0.0
        F = np.zeros(len(y))
        qs = np.linspace(0.1, 0.9, self.quantiles)
        for _ in range(self.rounds):
            g = y - _sigmoid(F)  # negative gradient of logistic loss
            best: Optional[Tuple[float, int, float, float, float]] = None
            for j in range(X.shape[1]):
                col = X[:, j]
                for thr in np.unique(np.quantile(col, qs)):
                    left = col <= thr
                    n_left = int(left.sum())
                    if n_left == 0 or n_left == len(col):
                        continue
                    lv = float(g[left].mean())
                    rv = float(g[~left].mean())
                    err = float(((np.where(left, lv, rv) - g) ** 2).sum())
                    if best is None or err < best[0] - 1e-15:
                        best = (err, j, float(thr), lv, rv)
            if best is None:
                break
            _, j, thr, lv, rv = best
            self._stumps.append((j, thr, lv, rv))
            F += self.learning_rate * np.where(X[:, j] <= thr, lv, rv)
        return self

    def scores(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        F = np.full(len(X), self._base)
        for j, thr, lv, rv in self._stumps:
            F += self.learning_rate * np.where(X[:, j] <= thr, lv, rv)
        return _sigmoid(F)


def roc_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged)."""
    s = np.asarray(scores, dtype=float)
    y = np.asarray(labels, dtype=int)
    n_pos = int((y == 1).sum())
    n_neg = int((y == 0).sum())
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(s, kind="mergesort")
    sorted_s = s[order]
    ranks = np.empty(len(s))
    i = 0
    while i < len(s):
        j = i
        while j < len(s) and sorted_s[j] == sorted_s[i]:
            j += 1
        ranks[order[i:j]] = 0.5 * (i + j - 1) + 1.0
        i = j
    rank_sum = float(ranks[y == 1].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def classifier_aucs(
    positive: np.ndarray,
    negative: np.ndarray,
    rng: DeterministicRng,
) -> Dict[str, float]:
    """Train both zoo classifiers and report held-out AUCs.

    ``positive`` are observed-trace segments, ``negative`` synthetic
    target segments.  The split is stratified half/half with the order
    shuffled by ``rng`` (the only stochastic step).  Too few segments
    per class returns the abstaining 0.5 for every attacker.
    """
    n_pos, n_neg = len(positive), len(negative)
    if (n_pos < 2 * _MIN_SEGMENTS_PER_CLASS
            or n_neg < 2 * _MIN_SEGMENTS_PER_CLASS):
        return {"logistic": 0.5, "stumps": 0.5, "auc": 0.5}
    pos_idx = list(range(n_pos))
    neg_idx = list(range(n_neg))
    rng.shuffle(pos_idx)
    rng.shuffle(neg_idx)
    pos_train = positive[pos_idx[: n_pos // 2]]
    pos_test = positive[pos_idx[n_pos // 2:]]
    neg_train = negative[neg_idx[: n_neg // 2]]
    neg_test = negative[neg_idx[n_neg // 2:]]
    X_train = np.vstack([pos_train, neg_train])
    y_train = np.concatenate(
        [np.ones(len(pos_train)), np.zeros(len(neg_train))]
    )
    X_test = np.vstack([pos_test, neg_test])
    y_test = np.concatenate([np.ones(len(pos_test)), np.zeros(len(neg_test))])
    out: Dict[str, float] = {}
    for name, model in (
        ("logistic", LogisticClassifier()),
        ("stumps", GradientBoostedStumps()),
    ):
        model.fit(X_train, y_train)
        out[name] = roc_auc(model.scores(X_test), y_test)
    # A classifier scoring below 0.5 separates the classes with the
    # sign flipped; the attacker would just invert it.
    out["auc"] = max(
        max(out["logistic"], 1.0 - out["logistic"]),
        max(out["stumps"], 1.0 - out["stumps"]),
    )
    return out


# ---------------------------------------------------------------------------
# correlation / spectral probes
# ---------------------------------------------------------------------------


def max_cross_correlation(
    x_counts: Sequence[float],
    y_counts: Sequence[float],
    max_lag: int = 8,
) -> float:
    """Max |normalised cross-correlation| over lags in [-max_lag, max_lag].

    1.0 when the observed per-window rates mirror the intrinsic ones at
    some alignment; 0.0 when either series is constant (a constant
    stream carries no rate signal to correlate on).
    """
    x = np.asarray(x_counts, dtype=float)
    y = np.asarray(y_counts, dtype=float)
    n = min(len(x), len(y))
    if n < 2:
        return 0.0
    x = x[:n]
    y = y[:n]
    best = 0.0
    for lag in range(-max_lag, max_lag + 1):
        # Overlap length at this alignment; guard BEFORE slicing — a
        # negative n+lag slice index would silently wrap and pair a
        # non-empty window with an empty one.
        span = n - abs(lag)
        if span < 2:
            continue
        if lag >= 0:
            a, b = x[lag:lag + span], y[:span]
        else:
            a, b = x[:span], y[-lag:-lag + span]
        sa, sb = a.std(), b.std()
        if sa <= 0.0 or sb <= 0.0:
            continue
        r = float(((a - a.mean()) * (b - b.mean())).mean() / (sa * sb))
        best = max(best, abs(r))
    return min(best, 1.0)  # rounding can push |r| a ulp past 1


def spectral_peak_ratio(counts: Sequence[float]) -> float:
    """Periodogram peak-to-median power ratio of a count series.

    A periodic sender concentrates power in one line (ratio ≫ 1); an
    i.i.d. stream spreads it (ratio near 1).  Degenerate inputs — too
    short or constant — report 1.0 (no periodicity evidence).  The
    ratio is capped at 1e6 so downstream canonical JSON stays finite
    even for a pure tone whose median off-peak power underflows.
    """
    c = np.asarray(counts, dtype=float)
    if len(c) < 8 or c.std() <= 0.0:
        return 1.0
    power = np.abs(np.fft.rfft(c - c.mean())) ** 2
    power = power[1:]  # drop DC (zero by construction, up to rounding)
    if len(power) < 2:
        return 1.0
    peak = float(power.max())
    median = float(np.median(power))
    if peak <= 0.0:
        return 1.0
    return float(min(peak / max(median, peak * 1e-12), 1e6))


# ---------------------------------------------------------------------------
# the per-config report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DetectReport:
    """One configuration's score against the whole zoo."""

    label: str
    seed: int
    segments: int          # observed-trace segments the classifiers saw
    auc_logistic: float
    auc_stumps: float
    auc: float             # best attacker (sign-folded)
    xcorr: float
    spectral: float
    mi_bits: float

    def as_doc(self) -> Dict[str, object]:
        """Canonical JSON document, digest included."""
        doc: Dict[str, object] = {
            "label": self.label,
            "seed": self.seed,
            "segments": self.segments,
            "auc_logistic": self.auc_logistic,
            "auc_stumps": self.auc_stumps,
            "auc": self.auc,
            "xcorr": self.xcorr,
            "spectral": self.spectral,
            "mi_bits": self.mi_bits,
        }
        doc["digest"] = canonical_json_digest(doc)
        return doc

    def digest(self) -> str:
        return str(self.as_doc()["digest"])


def detect_report(
    label: str,
    intrinsic_gaps: Sequence[int],
    observed_gaps: Sequence[int],
    spec: BinSpec,
    target_frequencies: Sequence[float],
    seed: int,
    segment_gaps: int = DEFAULT_SEGMENT_GAPS,
    window_cycles: Optional[int] = None,
    mi_bits: Optional[float] = None,
    reference_gaps: Optional[Sequence[int]] = None,
) -> DetectReport:
    """Score one trace against the zoo; pure in ``(inputs, seed)``.

    ``observed_gaps`` is what the adversary sees on the bus (the shaped
    stream, fake traffic included); ``intrinsic_gaps`` is the program's
    own stream (for the cross-correlation attacker);
    ``target_frequencies`` is the distribution the shaper claims to
    follow.  ``mi_bits`` lets callers reuse an already-computed windowed
    MI; when absent it is computed here with the sweep policy
    (``bias_correction=True`` — one estimator config per curve).

    The classifiers' negative class defaults to i.i.d. synthesis from
    the target distribution — detectability *from the target*, which
    also penalises ordering structure (credit depletion, bursty
    demand) an i.i.d. process cannot have.  ``reference_gaps`` swaps
    in the two-world attacker instead: the negative class is another
    observed trace (a different program or secret under the same
    shaper), and AUC ≈ 0.5 then states the paper's property directly —
    the shaped stream carries no program identity.
    """
    root = DeterministicRng(int(seed))
    rng_target = root.substream(0)
    rng_split = root.substream(1)

    if reference_gaps is not None:
        negative_gaps: Sequence[int] = reference_gaps
    else:
        negative_gaps = sample_target_gaps(
            spec, target_frequencies, len(observed_gaps), rng_target
        )
    positive = segment_features(observed_gaps, spec, segment_gaps)
    negative = segment_features(negative_gaps, spec, segment_gaps)
    aucs = classifier_aucs(positive, negative, rng_split)

    wc = int(window_cycles) if window_cycles else spec.replenish_period
    x_times = np.cumsum(quantize_gaps(intrinsic_gaps, spec)) \
        if len(intrinsic_gaps) else np.zeros(0, dtype=np.int64)
    y_times = np.cumsum(quantize_gaps(observed_gaps, spec)) \
        if len(observed_gaps) else np.zeros(0, dtype=np.int64)
    span = int(max(
        x_times[-1] if len(x_times) else 0,
        y_times[-1] if len(y_times) else 0,
    ))
    num_windows = max(1, span // wc)
    x_counts = windowed_counts(x_times, wc, num_windows)
    y_counts = windowed_counts(y_times, wc, num_windows)
    xcorr = max_cross_correlation(x_counts, y_counts)
    spectral = spectral_peak_ratio(y_counts)

    if mi_bits is None:
        from repro.security.mutual_information import windowed_rate_mi

        mi_bits = windowed_rate_mi(
            list(x_times), list(y_times), wc, max(span, wc),
            bias_correction=True,
        )
    return DetectReport(
        label=label,
        seed=int(seed),
        segments=len(positive),
        auc_logistic=float(aucs["logistic"]),
        auc_stumps=float(aucs["stumps"]),
        auc=float(aucs["auc"]),
        xcorr=float(xcorr),
        spectral=float(spectral),
        mi_bits=float(mi_bits),
    )


def windowed_detect_scores(
    intrinsic_gaps: Sequence[int],
    shaped_gaps: Sequence[int],
    spec: BinSpec,
    target_frequencies: Optional[Sequence[float]],
    rng: DeterministicRng,
    window_pairs: int = 256,
    segment_gaps: int = DEFAULT_SEGMENT_GAPS,
) -> Tuple[Optional[float], float]:
    """The monitor's online view: (AUC, XCorr) over the last window.

    Evaluates the last ``window_pairs`` paired releases only, mirroring
    :meth:`~repro.obs.monitor.ShapingMonitor._windowed_mi`'s sliding
    window.  AUC needs a target distribution; without one it is None
    and only the cross-correlation attacker runs.
    """
    paired = min(len(intrinsic_gaps), len(shaped_gaps))
    start = max(0, paired - window_pairs)
    intrinsic = list(intrinsic_gaps[start:paired])
    shaped = list(shaped_gaps[start:paired])

    auc: Optional[float] = None
    if target_frequencies is not None and len(shaped) >= 2 * segment_gaps:
        target_gaps = sample_target_gaps(
            spec, target_frequencies, len(shaped), rng.substream(0)
        )
        auc = classifier_aucs(
            segment_features(shaped, spec, segment_gaps),
            segment_features(target_gaps, spec, segment_gaps),
            rng.substream(1),
        )["auc"]

    wc = spec.replenish_period
    xcorr = 0.0
    if len(intrinsic) >= 2 and len(shaped) >= 2:
        x_times = np.cumsum(quantize_gaps(intrinsic, spec))
        y_times = np.cumsum(quantize_gaps(shaped, spec))
        span = int(max(x_times[-1], y_times[-1]))
        num_windows = max(1, span // wc)
        xcorr = max_cross_correlation(
            windowed_counts(x_times, wc, num_windows),
            windowed_counts(y_times, wc, num_windows),
        )
    return auc, xcorr


def zoo_score(
    mi_bits: float,
    auc: float,
    xcorr: float,
    mi_weight: float = 1.0,
    auc_weight: float = 0.0,
    xcorr_weight: float = 0.0,
) -> float:
    """Scalarize the zoo for the GA's multi-objective fitness.

    AUC enters as ``2·max(0, auc − 0.5)`` so an indistinguishable
    stream contributes 0 and a fully separable one contributes 1 —
    the same [0, 1] leakage scale as XCorr, keeping the weights
    mutually interpretable.
    """
    return (
        mi_weight * mi_bits
        + auc_weight * 2.0 * max(0.0, auc - 0.5)
        + xcorr_weight * max(0.0, xcorr)
    )

"""Security analysis: mutual information, leakage curves, attacks.

Implements the paper's evaluation instruments:

* plug-in mutual-information estimation between intrinsic and shaped
  traffic (section IV-B) — both positionally paired inter-arrival
  sequences and windowed-rate MI (what a bus-probing adversary
  actually computes);
* the accumulated response-time-difference curve of Figure 9;
* the covert-channel decoder used against the Algorithm-1 sender
  (Figures 14/15) and a co-runner distinguisher for the side channel.
"""

from repro.security.bounds import (
    bdc_leakage_bound,
    epoch_rate_leakage_bound,
    leakage_per_second,
    replenishment_window_leakage_bound,
)
from repro.security.attacks import (
    bit_error_rate,
    corunner_distinguishability,
    decode_covert_key,
    decode_covert_key_matched,
)
from repro.security.prober import (
    classify_conflicts,
    conflict_information,
    prober_trace,
)
from repro.security.leakage import (
    accumulated_response_difference,
    response_rate_series,
)
from repro.security.mutual_information import (
    entropy_bits,
    interarrival_mi,
    mutual_information_bits,
    windowed_rate_mi,
)
from repro.security.detect import (
    DetectReport,
    classifier_aucs,
    detect_report,
    max_cross_correlation,
    roc_auc,
    spectral_peak_ratio,
    zoo_score,
)

__all__ = [
    "accumulated_response_difference",
    "bdc_leakage_bound",
    "epoch_rate_leakage_bound",
    "leakage_per_second",
    "replenishment_window_leakage_bound",
    "bit_error_rate",
    "classify_conflicts",
    "conflict_information",
    "corunner_distinguishability",
    "decode_covert_key",
    "decode_covert_key_matched",
    "prober_trace",
    "DetectReport",
    "classifier_aucs",
    "detect_report",
    "max_cross_correlation",
    "roc_auc",
    "spectral_peak_ratio",
    "zoo_score",
    "entropy_bits",
    "interarrival_mi",
    "mutual_information_bits",
    "response_rate_series",
    "windowed_rate_mi",
]

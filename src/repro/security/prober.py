"""The fine-grained probing adversary of section IV-B4.

The paper's worst-case within-window adversary issues its own probe
requests at controlled times and watches which of them get delayed:
"if its request is delayed, it knows the victim had a request at the
same time".  Leakage through this channel is bounded by the number of
credits the adversary can spend per replenishment window.

This module provides:

* :func:`prober_trace` — a steady stream of guaranteed-miss probe
  requests (the adversary's half of the experiment);
* :func:`classify_conflicts` — turn the prober's per-request
  latencies into binary conflict observations against its unloaded
  baseline;
* :func:`conflict_information` — MI between per-window conflict
  counts and the victim's per-window activity: the bits the prober
  actually extracted, to compare against the analytic bound.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.security.mutual_information import (
    mutual_information_bits,
    windowed_counts,
)


def prober_trace(
    num_probes: int,
    gap_insts: int = 120,
    line_bytes: int = 64,
    base_address: int = 1 << 36,
    row_stride_bytes: int = 64 * 1024,
) -> MemoryTrace:
    """A steady stream of guaranteed-miss probes.

    Each probe strides a full ``row_stride_bytes`` so it never hits a
    cache and lands in fresh DRAM rows — probe latency then reflects
    *contention*, not the prober's own locality.
    """
    if num_probes <= 0:
        raise ConfigurationError("num_probes must be positive")
    if gap_insts < 0:
        raise ConfigurationError("gap_insts must be non-negative")
    records = [
        TraceRecord(
            nonmem_insts=gap_insts,
            address=base_address + i * row_stride_bytes,
            is_write=False,
        )
        for i in range(num_probes)
    ]
    return MemoryTrace(records, name="prober")


def classify_conflicts(
    response_times: Sequence[Tuple[int, int]],
    baseline_latency: float,
    slack: float = 1.3,
) -> List[Tuple[int, int]]:
    """Label each probe as conflicted (1) or clean (0).

    ``response_times`` are the prober's (delivered_cycle, latency)
    pairs; a probe is *conflicted* when its latency exceeds
    ``slack × baseline_latency`` (the unloaded service time measured
    by running the prober alone).
    """
    if baseline_latency <= 0:
        raise ConfigurationError("baseline_latency must be positive")
    if slack < 1.0:
        raise ConfigurationError("slack must be >= 1")
    threshold = baseline_latency * slack
    return [
        (cycle, 1 if latency > threshold else 0)
        for cycle, latency in response_times
    ]


def conflict_information(
    conflicts: Sequence[Tuple[int, int]],
    victim_times: Sequence[int],
    window_cycles: int,
    total_cycles: int,
    quantization_levels: int = 4,
    bias_correction: bool = True,
) -> float:
    """Bits per window the prober's conflicts say about the victim.

    X = victim requests per window (quantized), Y = prober conflict
    count per window; returns the plug-in MI (Miller–Madow corrected
    by default).  Compare against
    :func:`repro.security.bounds.replenishment_window_leakage_bound`.
    """
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    num_windows = max(1, total_cycles // window_cycles)
    victim = windowed_counts(victim_times, window_cycles, num_windows)
    conflict_counts = np.zeros(num_windows, dtype=np.int64)
    for cycle, conflicted in conflicts:
        index = cycle // window_cycles
        if 0 <= index < num_windows and conflicted:
            conflict_counts[index] += 1

    def quantize(values: np.ndarray) -> np.ndarray:
        top = values.max()
        if top == 0:
            return np.zeros_like(values)
        return (values * (quantization_levels - 1) + top // 2) // top

    return mutual_information_bits(
        quantize(victim), quantize(conflict_counts),
        bias_correction=bias_correction,
    )

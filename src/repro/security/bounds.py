"""Analytical leakage bounds from the paper's security analysis.

Three closed-form results the paper states:

* **Within-replenishment-window leakage** (section IV-B4): under the
  most conservative assumptions — the adversary knows both shaped
  distributions, controls its own request timing cycle-accurately, and
  learns one bit per conflict — the leakage inside one window is
  bounded by the number of credits the adversary holds.
* **Epoch-rate leakage** (Fletcher'14, section II-B): choosing one of
  R rates at each of E epoch boundaries reveals at most E·log2(R).
* **BDC data-processing bound** (section IV-B3): shaping is
  post-processing, so BDC leaks no more than the better of ReqC and
  RespC — ``I(A;B) ≤ min(I(A;Ai), I(B;Ai))``.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.core.bins import BinConfiguration


def replenishment_window_leakage_bound(
    adversary_config: BinConfiguration,
) -> int:
    """Worst-case bits leaked per replenishment window (section IV-B4).

    One bit per adversary request ("if its request is delayed, it
    knows the victim had a request at the same time"), and the
    adversary can make at most ``total_credits`` requests per window —
    so the window leakage is bounded by its credit total.
    """
    return adversary_config.total_credits


def epoch_rate_leakage_bound(num_epochs: int, num_rates: int) -> float:
    """Fletcher'14's bound: E × log2(R) bits over the whole run."""
    if num_epochs < 0:
        raise ConfigurationError("num_epochs must be non-negative")
    if num_rates < 1:
        raise ConfigurationError("num_rates must be at least 1")
    return num_epochs * math.log2(num_rates)


def bdc_leakage_bound(reqc_mi: float, respc_mi: float) -> float:
    """Data-processing bound for BDC (section IV-B3).

    BDC composes ReqC and RespC; each stage only post-processes, so
    the composed channel leaks at most the minimum of the two stages'
    mutual informations: ``I(A;B) ≤ min(I(A;Ai), I(B;Ai))``.
    """
    if reqc_mi < 0 or respc_mi < 0:
        raise ConfigurationError("mutual information must be non-negative")
    return min(reqc_mi, respc_mi)


def leakage_per_second(
    bits_per_window: float, window_cycles: int, clock_hz: float = 2.4e9
) -> float:
    """Convert a per-window bound into a bandwidth (bits/second).

    Useful for the "0.1 byte per 100 bytes" style statements in the
    paper's section IV-B2.
    """
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    if clock_hz <= 0:
        raise ConfigurationError("clock_hz must be positive")
    windows_per_second = clock_hz / window_cycles
    return bits_per_window * windows_per_second

"""Mutual-information estimation (paper section IV-B).

The paper uses mutual information between the intrinsic and shaped
traffic as its leakage metric:

    I(X; Y) = Σ_x Σ_y p(x, y) · log( p(x, y) / (p(x) p(y)) )

All estimators here are plug-in (empirical joint histogram), with
logarithms base 2 so results read in bits.  Three views are provided:

* :func:`mutual_information_bits` — generic, from paired discrete
  sequences.
* :func:`interarrival_mi` — the section IV-B2 measurement: pair the
  i-th intrinsic request's inter-arrival bin with the i-th shaped
  (real) release's inter-arrival bin.
* :func:`windowed_rate_mi` — the attacker's practical statistic: MI
  between per-window event counts of the intrinsic and the observed
  (shaped, fake-inclusive) streams.  This is the quantity fake traffic
  is designed to destroy.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec


def entropy_bits(samples: Sequence[int]) -> float:
    """Empirical Shannon entropy (bits) of a discrete sample sequence."""
    samples = np.asarray(samples)
    if samples.size == 0:
        return 0.0
    _, counts = np.unique(samples, return_counts=True)
    p = counts / counts.sum()
    return float(-(p * np.log2(p)).sum())


def mutual_information_bits(
    x: Sequence[int], y: Sequence[int], bias_correction: bool = False
) -> float:
    """Plug-in MI (bits) between two equal-length discrete sequences.

    ``bias_correction`` applies the Miller–Madow correction
    ``(Kx−1)(Ky−1) / (2N ln 2)``: the plug-in estimator is biased
    upward by roughly that much for finite samples, which matters when
    asserting near-zero leakage from short simulation runs (the paper's
    0.002-bit numbers come from much longer traces).
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape:
        raise ConfigurationError(
            f"paired sequences must have equal length ({x.size} vs {y.size})"
        )
    if x.size == 0:
        return 0.0
    x_values, x_codes = np.unique(x, return_inverse=True)
    y_values, y_codes = np.unique(y, return_inverse=True)
    joint = np.zeros((x_values.size, y_values.size))
    np.add.at(joint, (x_codes, y_codes), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    mask = joint > 0
    ratio = np.where(mask, joint / (px @ py), 1.0)
    mi = float((joint[mask] * np.log2(ratio[mask])).sum())
    if bias_correction:
        bias = (
            (x_values.size - 1) * (y_values.size - 1)
            / (2.0 * x.size * np.log(2.0))
        )
        mi -= bias
    # Clip negative values (floating-point rounding / over-correction).
    return max(0.0, mi)


def interarrival_mi(
    intrinsic_gaps: Sequence[int],
    shaped_gaps: Sequence[int],
    spec: Optional[BinSpec] = None,
    bias_correction: bool = False,
) -> float:
    """MI between binned intrinsic and shaped inter-arrival sequences.

    Gaps are quantized into the shaper's bin geometry (the paper's
    "ten different intervals") and paired positionally: the i-th real
    transaction's intrinsic gap against its i-th shaped gap.  Sequences
    of unequal length are truncated to the shorter one (transactions
    still in flight at the end of a run have no shaped counterpart).
    """
    spec = spec or BinSpec()
    n = min(len(intrinsic_gaps), len(shaped_gaps))
    if n == 0:
        return 0.0
    x = [spec.bin_of(g) for g in intrinsic_gaps[:n]]
    y = [spec.bin_of(g) for g in shaped_gaps[:n]]
    return mutual_information_bits(x, y, bias_correction=bias_correction)


def windowed_counts(
    timestamps: Sequence[int], window_cycles: int, num_windows: int,
    start_cycle: int = 0,
) -> np.ndarray:
    """Event counts per fixed window (the bus prober's histogram).

    Windows follow the half-open convention ``[start, start+w)`` with
    the rightmost edge *closed*: a release landing exactly on
    ``start_cycle + num_windows * window_cycles`` belongs to the last
    window rather than being silently dropped (events strictly beyond
    that edge remain outside the histogram).
    """
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    if num_windows <= 0:
        raise ConfigurationError("num_windows must be positive")
    counts = np.zeros(num_windows, dtype=np.int64)
    right_edge = start_cycle + num_windows * window_cycles
    for t in timestamps:
        if t == right_edge:
            counts[num_windows - 1] += 1
            continue
        index = (t - start_cycle) // window_cycles
        if 0 <= index < num_windows:
            counts[index] += 1
    return counts


def windowed_rate_mi(
    intrinsic_times: Sequence[int],
    observed_times: Sequence[int],
    window_cycles: int,
    total_cycles: int,
    quantization_levels: int = 8,
    bias_correction: bool = False,
) -> float:
    """MI between intrinsic and observed per-window traffic rates.

    Counts are quantized to ``quantization_levels`` evenly spaced
    levels (an adversary's measurement granularity); the result is the
    information (bits per window) the observed stream carries about
    the intrinsic one.
    """
    num_windows = max(1, total_cycles // window_cycles)
    x = windowed_counts(intrinsic_times, window_cycles, num_windows)
    y = windowed_counts(observed_times, window_cycles, num_windows)

    def quantize(v: np.ndarray) -> np.ndarray:
        top = v.max()
        if top == 0:
            return np.zeros_like(v)
        # Scale into [0, levels-1]; integer division keeps it discrete.
        return (v * (quantization_levels - 1) + top // 2) // top

    return mutual_information_bits(
        quantize(x), quantize(y), bias_correction=bias_correction
    )

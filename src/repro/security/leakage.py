"""Leakage curves: the Figure 9 instrument.

Figure 9 plots the *accumulated response-time difference* between two
runs of the same adversary, one co-scheduled with astar×3 and one with
mcf×3.  Under FR-FCFS the curve grows without bound (every one of the
adversary's requests is slower next to mcf), revealing the co-runner;
under Response Camouflage it stays flat.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sim.stats import CoreStats


def accumulated_response_difference(
    stats_a: CoreStats, stats_b: CoreStats
) -> np.ndarray:
    """Per-request cumulative latency difference between two runs.

    Both runs must be of the same adversary program; the i-th entry is
    ``Σ_{j<=i} lat_a[j] − Σ_{j<=i} lat_b[j]``, truncated to the shorter
    run.  A curve near zero means the adversary's response timing does
    not depend on the co-runner — the security property RespC provides.
    """
    a = stats_a.accumulated_response_time()
    b = stats_b.accumulated_response_time()
    n = min(a.size, b.size)
    if n == 0:
        raise ConfigurationError(
            "both runs need at least one delivered response"
        )
    return a[:n] - b[:n]


def response_rate_series(
    response_times: Sequence[Tuple[int, int]],
    window_cycles: int,
    total_cycles: int,
) -> np.ndarray:
    """Responses delivered per window (the adversary's rate probe)."""
    if window_cycles <= 0:
        raise ConfigurationError("window_cycles must be positive")
    num_windows = max(1, total_cycles // window_cycles)
    series = np.zeros(num_windows, dtype=np.int64)
    for delivered_cycle, _latency in response_times:
        index = delivered_cycle // window_cycles
        if 0 <= index < num_windows:
            series[index] += 1
    return series


def max_abs_drift(difference_curve: np.ndarray) -> float:
    """Largest absolute excursion of a Figure-9 style curve."""
    if difference_curve.size == 0:
        return 0.0
    return float(np.abs(difference_curve).max())


def normalized_drift(difference_curve: np.ndarray,
                     baseline_total: float) -> float:
    """Final drift as a fraction of the baseline's total response time.

    Lets tests compare 'flat' (Camouflage) against 'growing' (FR-FCFS)
    without depending on absolute cycle counts.
    """
    if baseline_total <= 0:
        raise ConfigurationError("baseline_total must be positive")
    if difference_curve.size == 0:
        return 0.0
    return float(abs(difference_curve[-1])) / baseline_total

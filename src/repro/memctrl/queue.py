"""Bounded transaction queue with arrival-order iteration.

Models the controller's transaction queue (32 entries in the paper's
Table II).  Entries stay in arrival order — schedulers that need
"oldest first" tie-breaking simply iterate.  The queue exposes
``is_full`` for upstream backpressure: when it is full the NoC holds
requests, which in turn stalls the shapers and ultimately the cores,
propagating contention exactly the way the timing channel needs it to.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    QueueOverflowError,
)
from repro.memctrl.transaction import MemoryTransaction


class TransactionQueue:
    """FIFO-ordered bounded buffer of in-flight transactions."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be positive: {capacity}")
        self._capacity = capacity
        self._entries: List[MemoryTransaction] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[MemoryTransaction]:
        """Iterate in arrival order (oldest first)."""
        return iter(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, txn: MemoryTransaction) -> None:
        """Append a transaction; caller must respect ``is_full``.

        The capacity bound is the backpressure contract: a full queue
        stalls the NoC, the shapers and ultimately the cores.  Pushing
        past it is a producer bug, rejected loudly rather than modelled
        as silent unbounded growth.
        """
        if self.is_full:
            raise QueueOverflowError(
                f"push of transaction {txn.txn_id} (core {txn.core_id}) "
                f"into a full transaction queue "
                f"({len(self._entries)}/{self._capacity} entries); the "
                f"producer must respect is_full backpressure",
                capacity=self._capacity,
                depth=len(self._entries),
            )
        self._entries.append(txn)

    def remove(self, txn: MemoryTransaction) -> None:
        """Remove a (scheduled) transaction from the queue."""
        try:
            self._entries.remove(txn)
        except ValueError:
            raise ProtocolError(
                f"transaction {txn.txn_id} not present in the queue"
            ) from None

    def count_for_core(self, core_id: int) -> int:
        """Number of queued transactions belonging to ``core_id``."""
        return sum(1 for t in self._entries if t.core_id == core_id)

    def oldest(
        self, predicate: Optional[Callable[[MemoryTransaction], bool]] = None
    ) -> Optional[MemoryTransaction]:
        """Oldest entry, optionally restricted by a predicate."""
        for txn in self._entries:
            if predicate is None or predicate(txn):
                return txn
        return None

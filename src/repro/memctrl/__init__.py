"""Memory controller: transaction queue, schedulers, command engine.

This package implements the shared memory controller the paper's
threat model revolves around, plus every scheduling baseline the
evaluation compares against:

* :class:`FrFcfsScheduler` — First-Ready First-Come-First-Serve, the
  unprotected high-performance baseline (row hits first, then oldest).
* :class:`PriorityFrFcfsScheduler` — FR-FCFS with per-core priority
  boosts; the RespC shaper raises a core's boost in proportion to its
  unused credits (paper section III-B1), and the MISE slowdown
  estimator uses its exclusive "highest priority mode".
* :class:`TemporalPartitioningScheduler` — fixed-length turns per
  security domain (Wang et al., HPCA 2014).
* :class:`FixedServiceScheduler` — constant per-thread issue rate
  (Shafiee et al., MICRO 2015), optionally paired with bank
  partitioning via :meth:`repro.dram.AddressMapping.partitioned`.
"""

from repro.memctrl.controller import MemoryController
from repro.memctrl.schedulers import (
    FixedServiceScheduler,
    FrFcfsScheduler,
    PriorityFrFcfsScheduler,
    Scheduler,
    TemporalPartitioningScheduler,
)
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.write_queue import WriteQueue, WriteQueuePolicy

__all__ = [
    "FixedServiceScheduler",
    "FrFcfsScheduler",
    "MemoryController",
    "MemoryTransaction",
    "PriorityFrFcfsScheduler",
    "Scheduler",
    "TemporalPartitioningScheduler",
    "TransactionQueue",
    "TransactionType",
    "WriteQueue",
    "WriteQueuePolicy",
]

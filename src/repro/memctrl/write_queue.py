"""Optional write-queue with watermark-based draining.

Real memory controllers do not schedule writes like reads: write-backs
are latency-insensitive, so they park in a dedicated write queue and
drain in bursts — either when the queue crosses a high watermark or
when the read stream goes idle — amortizing the expensive write↔read
bus turnaround (tWTR/tRTRS).

This is an *optional* fidelity extension (off by default so the
calibrated paper experiments are unaffected): enable it with
``MemoryController(..., write_queue=WriteQueuePolicy())``.  Security
note: write draining is another co-runner-dependent timing source —
a reason the paper shapes *both* directions (BDC) rather than trusting
any single queue's policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    QueueOverflowError,
)
from repro.memctrl.transaction import MemoryTransaction


@dataclass(frozen=True)
class WriteQueuePolicy:
    """Watermark configuration for write draining.

    Draining starts when occupancy ≥ ``high_watermark`` (or the read
    queue is empty) and continues until occupancy ≤ ``low_watermark``
    — classic hysteresis so the bus is not flipped per write.
    """

    capacity: int = 16
    high_watermark: int = 12
    low_watermark: int = 4

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 <= self.low_watermark < self.high_watermark <= self.capacity:
            raise ConfigurationError(
                "watermarks must satisfy 0 <= low < high <= capacity"
            )


class WriteQueue:
    """Bounded write buffer with hysteretic drain state."""

    def __init__(self, policy: Optional[WriteQueuePolicy] = None) -> None:
        self.policy = policy or WriteQueuePolicy()
        self._entries: List[MemoryTransaction] = []
        self._draining = False
        self.accepted = 0
        self.drained = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.policy.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, txn: MemoryTransaction) -> None:
        if not txn.is_write:
            raise ProtocolError("write queue accepts only write transactions")
        if self.is_full:
            raise QueueOverflowError(
                f"push of write {txn.txn_id} (core {txn.core_id}) into a "
                f"full write queue ({len(self._entries)}/"
                f"{self.policy.capacity} entries); the producer must "
                f"respect is_full backpressure",
                capacity=self.policy.capacity,
                depth=len(self._entries),
            )
        self._entries.append(txn)
        self.accepted += 1

    def should_drain(self, reads_pending: bool) -> bool:
        """Hysteresis: enter drain above high mark or on idle reads;
        leave drain at/below the low mark."""
        occupancy = len(self._entries)
        if self._draining:
            if occupancy <= self.policy.low_watermark:
                self._draining = False
        else:
            if occupancy >= self.policy.high_watermark or (
                not reads_pending and occupancy > 0
            ):
                self._draining = True
        return self._draining and occupancy > 0

    def drain_pending(self, reads_pending: bool) -> bool:
        """What :meth:`should_drain` would answer, without updating the
        hysteresis state (planning query for the next-event engine)."""
        occupancy = len(self._entries)
        if occupancy == 0:
            return False
        if self._draining:
            return occupancy > self.policy.low_watermark
        return occupancy >= self.policy.high_watermark or not reads_pending

    def peek_candidates(self) -> List[MemoryTransaction]:
        """Arrival-ordered view for the scheduler's FR-FCFS pick."""
        return list(self._entries)

    def remove(self, txn: MemoryTransaction) -> None:
        try:
            self._entries.remove(txn)
        except ValueError:
            raise ProtocolError(
                f"write {txn.txn_id} not present in the write queue"
            ) from None
        self.drained += 1

"""The memory controller: queue + scheduler + DRAM command engine.

Per cycle the controller:

1. services refresh obligations (precharging open banks and issuing
   REFRESH once a rank's tREFI deadline passes — refresh-pending ranks
   are fenced off from normal scheduling so refresh cannot starve);
2. asks its scheduling policy for a transaction to advance;
3. issues that transaction's next required DRAM command (PRECHARGE /
   ACTIVATE / READ / WRITE), stamping issue and data-ready cycles when
   the column command finally goes out;
4. moves transactions whose data burst has completed to the per-core
   egress, where the response path (RespC shaper or plain NoC) picks
   them up via :meth:`pop_responses`.

Backpressure: :meth:`can_accept` is false when the transaction queue
is full, which stalls the NoC, the request shapers and ultimately the
cores — the contention chain the timing channel rides on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    QueueOverflowError,
)
from repro.common.rng import DeterministicRng
from repro.dram.address import AddressMapping, DecodedAddress
from repro.dram.commands import CommandType, DramCommand
from repro.dram.system import DramSystem
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.schedulers import FrFcfsScheduler, Scheduler
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.memctrl.write_queue import WriteQueue, WriteQueuePolicy
from repro.obs.events import CATEGORY_MEMCTRL
from repro.obs.tracer import NULL_TRACER


class MemoryController:
    """Shared memory controller for a multicore system.

    Parameters
    ----------
    dram:
        The DRAM device model to drive.
    scheduler:
        Scheduling policy; defaults to FR-FCFS.
    mapping:
        Default physical-address mapping.
    per_core_mapping:
        Optional per-core mappings (used by Fixed-Service bank
        partitioning, where each core sees a private bank subset).
    queue_capacity:
        Transaction queue depth (32 in the paper's Table II).
    """

    def __init__(
        self,
        dram: DramSystem,
        scheduler: Optional[Scheduler] = None,
        mapping: Optional[AddressMapping] = None,
        per_core_mapping: Optional[Dict[int, AddressMapping]] = None,
        queue_capacity: int = 32,
        egress_capacity: int = 16,
        write_queue_policy: Optional["WriteQueuePolicy"] = None,
        page_policy: str = "open",
    ) -> None:
        """``egress_capacity`` bounds each core's response return queue.

        When a core's responses back up (e.g. its RespC shaper is
        throttling), the controller stops issuing that core's column
        commands — the return-channel flow control the paper describes
        ("rate limit responses and prevent overflow on the return
        channels", section V).  Backpressure then propagates naturally:
        transaction queue → NoC → request shaper → core.

        ``page_policy``: ``"open"`` (default — FR-FCFS exploits row
        hits, the paper's base) or ``"closed"`` (every column command
        carries auto-precharge; no row state survives an access, which
        also removes the row-buffer side channel at a bandwidth cost).
        """
        self.dram = dram
        self.scheduler = scheduler or FrFcfsScheduler()
        self.mapping = mapping or AddressMapping(dram.organization)
        self._per_core_mapping = dict(per_core_mapping or {})
        if egress_capacity <= 0:
            raise ConfigurationError("egress_capacity must be positive")
        self.queue = TransactionQueue(queue_capacity)
        # Optional dedicated write path (see repro.memctrl.write_queue):
        # None (default) keeps writes in the main transaction queue.
        self.write_queue = (
            WriteQueue(write_queue_policy) if write_queue_policy else None
        )
        self._egress_capacity = egress_capacity
        # Transactions whose column command issued, awaiting burst end.
        self._in_flight: List[MemoryTransaction] = []
        # Per-core in-flight counts, maintained incrementally so the
        # per-cycle egress-room checks stay O(1).
        self._in_flight_count: Dict[int, int] = {}
        # Completed transactions per core, awaiting pickup.
        self._egress: Dict[int, List[MemoryTransaction]] = {}
        self._refresh_pending = set()
        if page_policy not in ("open", "closed"):
            raise ConfigurationError(f"unknown page policy {page_policy!r}")
        self._page_policy = page_policy
        self._dummy_rng = DeterministicRng(0xF5)
        self.tracer = NULL_TRACER
        # Statistics.
        self.issued_reads = 0
        self.issued_writes = 0
        self.row_hits = 0
        self.row_misses = 0
        self.refreshes = 0
        self.dummy_transactions = 0

    # -- ingress ---------------------------------------------------------

    def can_accept(self) -> bool:
        """True while the ingress path has room.

        Conservative when a write queue is configured: both queues must
        have room, since the ingress does not know the next
        transaction's direction in advance.
        """
        if self.queue.is_full:
            return False
        if self.write_queue is not None and self.write_queue.is_full:
            return False
        return True

    def enqueue(self, txn: MemoryTransaction, cycle: int) -> None:
        """Accept a transaction from the request path."""
        if not self.can_accept():
            full = (
                self.queue
                if self.queue.is_full
                else self.write_queue
            )
            capacity = (
                self.queue.capacity
                if full is self.queue
                else self.write_queue.policy.capacity
            )
            raise QueueOverflowError(
                f"enqueue of transaction {txn.txn_id} (core {txn.core_id}) "
                f"while the controller cannot accept "
                f"(transaction queue {len(self.queue)}/{self.queue.capacity}"
                + (
                    f", write queue {len(self.write_queue)}/"
                    f"{self.write_queue.policy.capacity}"
                    if self.write_queue is not None
                    else ""
                )
                + "); the ingress must respect can_accept backpressure",
                capacity=capacity,
                depth=len(full),
            )
        mapping = self._per_core_mapping.get(txn.core_id, self.mapping)
        txn.decoded = mapping.decode(txn.address)
        txn.mc_arrival_cycle = cycle
        if self.write_queue is not None and txn.is_write:
            self.write_queue.push(txn)
        else:
            self.queue.push(txn)
        if self.tracer.enabled:
            self.tracer.emit(
                cycle, CATEGORY_MEMCTRL, "memctrl.enqueue",
                core_id=txn.core_id,
                kind=txn.kind.name,
                queue_depth=len(self.queue),
            )

    # -- egress --------------------------------------------------------------

    def pop_responses(
        self, core_id: int, limit: Optional[int] = None
    ) -> List[MemoryTransaction]:
        """Drain up to ``limit`` completed transactions (oldest first).

        Responses left behind keep occupying the bounded egress queue,
        which throttles further column commands for this core.
        """
        ready = self._egress.get(core_id, [])
        if limit is None or limit >= len(ready):
            self._egress.pop(core_id, None)
            return ready
        if limit <= 0:
            return []
        taken, rest = ready[:limit], ready[limit:]
        self._egress[core_id] = rest
        return taken

    def pending_response_count(self, core_id: int) -> int:
        return len(self._egress.get(core_id, []))

    def _egress_load(self, core_id: int) -> int:
        """Occupied + committed slots of a core's return queue."""
        return (
            len(self._egress.get(core_id, ()))
            + self._in_flight_count.get(core_id, 0)
        )

    def egress_has_room(self, core_id: int) -> bool:
        return self._egress_load(core_id) < self._egress_capacity

    # -- main loop --------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """Advance one cycle: refresh, schedule, issue, complete."""
        self._complete_bursts(cycle)
        self._service_refresh(cycle)
        self.scheduler.tick(cycle)
        self._inject_scheduler_dummies(cycle)
        self._schedule_and_issue(cycle)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle :meth:`tick` could change any state.

        Sources: in-flight burst completions, the earliest refresh
        deadline, the scheduler's earliest possible pick over the
        currently selectable transactions, and an active write drain.
        A refresh in progress (open banks being precharged, REFRESH
        awaiting legality) is evaluated per-cycle — it is short and
        rare, and its multi-step progress has no cheap closed form.
        """
        if self._refresh_pending:
            return cycle
        events = []
        for txn in self._in_flight:
            if txn.data_ready_cycle is not None:
                events.append(max(cycle, txn.data_ready_cycle))
        next_refresh = self.dram.next_refresh_cycle()
        if next_refresh is not None:
            events.append(max(cycle, next_refresh))
        sched = self.scheduler.next_event_cycle(
            self._selectable(), self.dram, cycle
        )
        if sched is not None:
            events.append(max(cycle, sched))
        if self.write_queue is not None and self.write_queue.drain_pending(
            reads_pending=not self.queue.is_empty
        ):
            drainable = (
                t
                for t in self.write_queue.peek_candidates()
                if self.egress_has_room(t.core_id)
            )
            drain = Scheduler._earliest_candidate_advance(
                drainable, self.dram, cycle
            )
            if drain is not None:
                events.append(drain)
        return min(events) if events else None

    def _inject_scheduler_dummies(self, cycle: int) -> None:
        """Fill empty Fixed-Service slots with dummy transactions.

        Only schedulers exposing ``dummy_cores_due`` (FS with
        ``dummy_fill``) trigger this; the dummy is a fake read to a
        random address in the owning core's partition.
        """
        due_fn = getattr(self.scheduler, "dummy_cores_due", None)
        if due_fn is None:
            return
        for core_id in due_fn(self.queue, cycle):
            if self.queue.is_full or not self.egress_has_room(core_id):
                break
            address = self._dummy_rng.randint(0, (1 << 30) // 64 - 1) * 64
            dummy = MemoryTransaction(
                core_id=core_id,
                address=address,
                kind=TransactionType.FAKE_READ,
                created_cycle=cycle,
            )
            self.enqueue(dummy, cycle)
            self.dummy_transactions += 1

    # -- internals ----------------------------------------------------------------

    def _complete_bursts(self, cycle: int) -> None:
        if not self._in_flight:
            return
        still_flying: List[MemoryTransaction] = []
        for txn in self._in_flight:
            if txn.data_ready_cycle is not None and txn.data_ready_cycle <= cycle:
                self._egress.setdefault(txn.core_id, []).append(txn)
                self._in_flight_count[txn.core_id] -= 1
            else:
                still_flying.append(txn)
        self._in_flight = still_flying

    def _service_refresh(self, cycle: int) -> None:
        for channel, rank in self.dram.refresh_due(cycle):
            self._refresh_pending.add((channel, rank))
        for channel, rank in sorted(self._refresh_pending):
            open_banks = self.dram.refresh_precharge_targets(channel, rank)
            if open_banks:
                for bank in open_banks:
                    target = self.dram.channels[channel].ranks[rank].banks[bank]
                    if target.can_precharge(cycle) and self.dram.channels[
                        channel
                    ].command_bus_free(cycle):
                        # Routed through DramSystem.issue (not the
                        # channel directly) so the PRE is traced like
                        # every other command.
                        pre = DramCommand(
                            CommandType.PRECHARGE,
                            DecodedAddress(
                                channel=channel, rank=rank, bank=bank,
                                row=0, column=0,
                            ),
                        )
                        self.dram.issue(pre, cycle)
                        break
                continue
            ref = DramCommand(
                CommandType.REFRESH,
                DecodedAddress(channel=channel, rank=rank, bank=0, row=0, column=0),
            )
            if self.dram.can_issue(ref, cycle):
                self.dram.issue(ref, cycle)
                self.refreshes += 1
                self._refresh_pending.discard((channel, rank))

    def _selectable(self) -> Sequence[MemoryTransaction]:
        # Cores whose return queue is full are fenced off (flow
        # control); ranks awaiting refresh likewise.
        queued_cores = {t.core_id for t in self.queue}
        blocked_cores = {
            core for core in queued_cores if not self.egress_has_room(core)
        }
        if not self._refresh_pending and not blocked_cores:
            return self.queue
        return [
            t
            for t in self.queue
            if t.core_id not in blocked_cores
            and (t.decoded.channel, t.decoded.rank) not in self._refresh_pending
        ]

    def _select_write_drain(self, cycle: int) -> Optional[MemoryTransaction]:
        """A write to drain this cycle, when the write path says so."""
        if self.write_queue is None:
            return None
        if not self.write_queue.should_drain(reads_pending=not self.queue.is_empty):
            return None
        candidates = [
            t
            for t in self.write_queue.peek_candidates()
            if self.egress_has_room(t.core_id)
            and (t.decoded.channel, t.decoded.rank) not in self._refresh_pending
        ]
        return Scheduler._frfcfs_pick(candidates, self.dram, cycle)

    def _schedule_and_issue(self, cycle: int) -> None:
        txn = self._select_write_drain(cycle)
        if txn is None:
            txn = self.scheduler.select(self._selectable(), self.dram, cycle)
        if txn is None:
            return
        command = self.dram.required_command(txn.decoded, txn.is_write)
        if not self.dram.can_issue(command, cycle):
            # The scheduler promised an issuable command; treat anything
            # else as a policy bug rather than silently skipping.
            raise ProtocolError(
                f"scheduler {self.scheduler.name} selected transaction "
                f"{txn.txn_id} whose command {command} cannot issue at "
                f"cycle {cycle}"
            )
        if command.is_column:
            # A transaction is a row hit only if it never needed its own
            # PRECHARGE/ACTIVATE — the row was already open when first
            # scheduled (FR-FCFS's preferred case).
            if txn.was_row_hit is None:
                txn.was_row_hit = True
            if txn.was_row_hit:
                self.row_hits += 1
            else:
                self.row_misses += 1
            burst_end = self.dram.issue(
                command, cycle,
                auto_precharge=self._page_policy == "closed",
            )
            txn.issue_cycle = cycle
            txn.data_ready_cycle = burst_end
            if self.write_queue is not None and txn.is_write:
                self.write_queue.remove(txn)
            else:
                self.queue.remove(txn)
            self._in_flight.append(txn)
            self._in_flight_count[txn.core_id] = (
                self._in_flight_count.get(txn.core_id, 0) + 1
            )
            if txn.is_write:
                self.issued_writes += 1
            else:
                self.issued_reads += 1
            self.scheduler.on_issue(txn, cycle)
            if self.tracer.enabled:
                self.tracer.emit(
                    cycle, CATEGORY_MEMCTRL, "memctrl.issue",
                    core_id=txn.core_id,
                    kind=txn.kind.name,
                    row_hit=txn.was_row_hit,
                    queue_depth=len(self.queue),
                )
        else:
            txn.was_row_hit = False
            self.dram.issue(command, cycle)

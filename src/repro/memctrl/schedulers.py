"""Memory scheduling policies: FR-FCFS and the paper's baselines.

Each scheduler implements :class:`Scheduler.select`: given the
transaction queue, the DRAM state and the current cycle, pick the
transaction whose *next required command* the controller should try to
issue this cycle.  The controller handles command decomposition
(PRECHARGE → ACTIVATE → READ/WRITE); schedulers only decide *whose*
transaction advances, which is exactly where the timing channel lives.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.dram.system import DramSystem
from repro.memctrl.queue import TransactionQueue
from repro.memctrl.transaction import MemoryTransaction


class Scheduler:
    """Base scheduling policy."""

    name = "base"

    def select(
        self, queue: TransactionQueue, dram: DramSystem, cycle: int
    ) -> Optional[MemoryTransaction]:
        """Pick the transaction to advance this cycle (or ``None``)."""
        raise NotImplementedError

    def on_issue(self, txn: MemoryTransaction, cycle: int) -> None:
        """Hook: a column command for ``txn`` was issued."""

    def tick(self, cycle: int) -> None:
        """Hook: called once per cycle before selection."""

    def next_event_cycle(
        self,
        candidates: Sequence[MemoryTransaction],
        dram: DramSystem,
        cycle: int,
    ) -> Optional[int]:
        """Earliest cycle :meth:`select` could pick a transaction.

        A true lower bound assuming no DRAM command issues in between.
        Conservative default: any candidate at all pins the scheduler
        to per-cycle evaluation (policies with time-gated eligibility
        override this with something sharper); no candidates ⇒ no
        event.
        """
        for _ in candidates:
            return cycle
        return None

    @staticmethod
    def _earliest_candidate_advance(
        candidates: Iterable[MemoryTransaction], dram: DramSystem, cycle: int
    ) -> Optional[int]:
        """Min over candidates of the exact earliest-issuable cycle."""
        earliest: Optional[int] = None
        for txn in candidates:
            c = dram.earliest_advance_cycle(txn.decoded, txn.is_write, cycle)
            if earliest is None or c < earliest:
                earliest = c
                if earliest <= cycle:
                    break
        if earliest is None:
            return None
        return max(cycle, earliest)

    # -- shared helper -------------------------------------------------

    @staticmethod
    def _frfcfs_pick(
        candidates: Iterable[MemoryTransaction], dram: DramSystem, cycle: int
    ) -> Optional[MemoryTransaction]:
        """First-ready-FCFS among ``candidates`` (already arrival-ordered).

        Priority 1: oldest transaction whose column command (row hit)
        can issue right now.  Priority 2: oldest transaction whose
        required command (of any kind) can issue.  Implemented as a
        single allocation-free pass over the arrival-ordered queue.
        """
        first_ready = None
        for txn in candidates:
            decoded = txn.decoded
            if dram.can_advance(decoded, txn.is_write, cycle):
                if dram.is_row_hit(decoded):
                    return txn
                if first_ready is None:
                    first_ready = txn
        return first_ready


class FrFcfsScheduler(Scheduler):
    """First-Ready First-Come-First-Serve — the unprotected baseline.

    Maximizes row-buffer hit rate by reordering row hits ahead of older
    row misses.  Because one core's open rows delay another core's
    misses, this policy leaks co-runner activity through response
    latency — the attack of the paper's Figure 1.
    """

    name = "fr-fcfs"

    def select(self, queue, dram, cycle):
        return self._frfcfs_pick(queue, dram, cycle)

    def next_event_cycle(self, candidates, dram, cycle):
        # select() picks something exactly when any candidate's
        # required command is issuable, so the earliest such cycle is
        # the precise next event.
        return self._earliest_candidate_advance(candidates, dram, cycle)


class PriorityFrFcfsScheduler(Scheduler):
    """FR-FCFS with per-core priority boosts and an exclusive mode.

    Two mechanisms layered on FR-FCFS:

    * **Boost credits** — RespC's warning path (paper section III-B1):
      when a protected core's response rate falls below its target
      distribution, the shaper sends the count of unused credits; this
      scheduler then prefers that core's transactions until the boost
      is consumed (one credit per issued column command).
    * **Exclusive mode** — the MISE profiling phase (section IV-C) runs
      each application alone at highest priority to estimate its
      no-interference service rate; while a core is exclusive, its
      transactions always win.
    """

    name = "priority-fr-fcfs"

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        self._boost: Dict[int, int] = {c: 0 for c in range(num_cores)}
        self._exclusive_core: Optional[int] = None

    def add_boost(self, core_id: int, credits: int) -> None:
        """Grant ``credits`` additional priority tokens to ``core_id``."""
        if core_id not in self._boost:
            raise ConfigurationError(f"unknown core {core_id}")
        if credits < 0:
            raise ConfigurationError("boost credits must be non-negative")
        self._boost[core_id] += credits

    def set_boost(self, core_id: int, credits: int) -> None:
        """Replace ``core_id``'s boost pool with a fresh grant.

        RespC's per-replenishment warning path uses this: priority is
        granted "in proportion to the number of unused credits" of the
        period (paper III-B1) — a stale unconsumed grant from an
        earlier period must not accumulate, or a persistently starved
        core would eventually monopolize the scheduler.
        """
        if core_id not in self._boost:
            raise ConfigurationError(f"unknown core {core_id}")
        if credits < 0:
            raise ConfigurationError("boost credits must be non-negative")
        self._boost[core_id] = credits

    def boost_of(self, core_id: int) -> int:
        return self._boost[core_id]

    def set_exclusive(self, core_id: Optional[int]) -> None:
        """Enter (or leave, with ``None``) highest-priority mode."""
        if core_id is not None and core_id not in self._boost:
            raise ConfigurationError(f"unknown core {core_id}")
        self._exclusive_core = core_id

    @property
    def exclusive_core(self) -> Optional[int]:
        return self._exclusive_core

    def select(self, queue, dram, cycle):
        if self._exclusive_core is not None:
            own = [t for t in queue if t.core_id == self._exclusive_core]
            pick = self._frfcfs_pick(own, dram, cycle)
            if pick is not None:
                return pick
            # Exclusive core idle: let others proceed so the system
            # does not deadlock during profiling.
            rest = [t for t in queue if t.core_id != self._exclusive_core]
            return self._frfcfs_pick(rest, dram, cycle)

        boosted = [t for t in queue if self._boost.get(t.core_id, 0) > 0]
        pick = self._frfcfs_pick(boosted, dram, cycle)
        if pick is not None:
            return pick
        return self._frfcfs_pick(queue, dram, cycle)

    def next_event_cycle(self, candidates, dram, cycle):
        # Boost/exclusive modes change *which* candidate wins, not
        # *whether* one does: every mode falls back to the full
        # candidate set, so the FR-FCFS bound is exact here too.
        return self._earliest_candidate_advance(candidates, dram, cycle)

    def on_issue(self, txn, cycle):
        if self._exclusive_core is None and self._boost.get(txn.core_id, 0) > 0:
            self._boost[txn.core_id] -= 1


class TemporalPartitioningScheduler(Scheduler):
    """Temporal Partitioning (TP, Wang et al. HPCA 2014).

    Time is divided into fixed-length turns, one security domain per
    turn, round-robin.  Only the owning domain's transactions may be
    scheduled during its turn, and a column command must complete its
    data burst inside the turn (the *dead time* at the turn edge), so
    bank/bus state never carries timing information across domains.

    The performance cost the paper measures comes from two places both
    modelled here: requests arriving outside their turn wait, and the
    dead time wastes bus cycles every turn.
    """

    name = "temporal-partitioning"

    def __init__(
        self,
        domain_of_core: Sequence[int],
        turn_length: int = 96,
        dead_time: Optional[int] = None,
    ) -> None:
        if turn_length <= 0:
            raise ConfigurationError("turn_length must be positive")
        self._domain_of_core = list(domain_of_core)
        if not self._domain_of_core:
            raise ConfigurationError("domain_of_core must not be empty")
        self._domains = sorted(set(self._domain_of_core))
        self._turn_length = turn_length
        # Worst-case command-to-burst-end span: tRP + tRCD + CL + burst.
        self._dead_time = dead_time
        if dead_time is not None and dead_time >= turn_length:
            raise ConfigurationError(
                f"dead_time {dead_time} must be shorter than the turn "
                f"({turn_length})"
            )
        self.issued_in_turn = 0

    @property
    def num_domains(self) -> int:
        return len(self._domains)

    @property
    def turn_length(self) -> int:
        return self._turn_length

    def domain_of(self, core_id: int) -> int:
        return self._domain_of_core[core_id]

    def current_owner(self, cycle: int) -> int:
        """The security domain that owns the turn containing ``cycle``."""
        slot = (cycle // self._turn_length) % self.num_domains
        return self._domains[slot]

    def cycles_left_in_turn(self, cycle: int) -> int:
        return self._turn_length - (cycle % self._turn_length)

    def _effective_dead_time(self, dram: DramSystem) -> int:
        if self._dead_time is not None:
            return self._dead_time
        return dram.timing.row_conflict_latency()

    def select(self, queue, dram, cycle):
        owner = self.current_owner(cycle)
        if self.cycles_left_in_turn(cycle) <= self._effective_dead_time(dram):
            # Dead time: nothing may start near the turn boundary.
            return None
        own = [t for t in queue if self.domain_of(t.core_id) == owner]
        return self._frfcfs_pick(own, dram, cycle)

    def on_issue(self, txn, cycle):
        self.issued_in_turn += 1


class FixedServiceScheduler(Scheduler):
    """Fixed Service (FS, Shafiee et al. MICRO 2015).

    Every thread is serviced at a constant rate: core *c* may have a
    column command issued only at its private slots, one every
    ``interval`` cycles.  A missed slot is lost (constant observable
    service, which is what makes the policy leak-free).  Pairing with
    bank partitioning is done at the system level via
    :meth:`repro.dram.AddressMapping.partitioned`, which removes
    row-buffer conflicts between threads.
    """

    name = "fixed-service"

    def __init__(self, num_cores: int, interval: int = 48,
                 dummy_fill: bool = True) -> None:
        """``dummy_fill`` models the paper's FS faithfully: a slot its
        owner cannot use is filled with a dummy request (FS "forces
        every thread to have a constant memory injection rate"), so
        observable service is constant — and memory pays for the dummy
        traffic just as Camouflage pays for fake traffic.  Disable for
        a work-conserving (leaky, faster) variant.
        """
        if num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        self._interval = interval
        self._next_slot: List[int] = [interval * (c + 1) for c in range(num_cores)]
        self.dummy_fill = dummy_fill
        self.dummies_injected = 0
        # Security telemetry: a slot is "slipped" when service lands
        # later than the slot plus the DRAM's intrinsic service jitter
        # (~a row-conflict latency).  Beyond that, the delay is
        # queueing — i.e. the observable service tracks load and the
        # configuration leaks.
        self.slip_tolerance = 32
        self.issued_slots = 0
        self.slipped_slots = 0

    @property
    def interval(self) -> int:
        return self._interval

    def next_slot_of(self, core_id: int) -> int:
        return self._next_slot[core_id]

    def dummy_cores_due(self, queue, cycle: int) -> List[int]:
        """Cores whose slot has arrived with nothing queued to serve.

        The controller synthesizes a dummy transaction for each (when
        ``dummy_fill``); the dummy then occupies the slot like a real
        request, keeping the injection rate constant.
        """
        if not self.dummy_fill:
            return []
        queued_cores = {t.core_id for t in queue}
        return [
            core
            for core, slot in enumerate(self._next_slot)
            if cycle >= slot and core not in queued_cores
        ]

    def select(self, queue, dram, cycle):
        eligible = [t for t in queue if cycle >= self._next_slot[t.core_id]]
        return self._frfcfs_pick(eligible, dram, cycle)

    def next_event_cycle(self, candidates, dram, cycle):
        """Earliest due slot — of a queued candidate, or of any core
        when dummy fill keeps empty slots generating work."""
        events = []
        if self.dummy_fill and self._next_slot:
            events.append(max(cycle, min(self._next_slot)))
        for txn in candidates:
            events.append(max(cycle, self._next_slot[txn.core_id]))
        return min(events) if events else None

    def on_issue(self, txn, cycle):
        self.issued_slots += 1
        if cycle > self._next_slot[txn.core_id] + self.slip_tolerance:
            self.slipped_slots += 1
        # The next slot opens a full interval after this service, so
        # the observable service rate never exceeds 1/interval.
        self._next_slot[txn.core_id] = cycle + self._interval

    def slip_fraction(self) -> float:
        """Fraction of services landing badly late — the leak proxy.

        A valid (leak-free) FS configuration keeps this near zero; a
        too-tight interval makes service times track system load."""
        if self.issued_slots == 0:
            return 0.0
        return self.slipped_slots / self.issued_slots

"""Memory transactions: the unit that flows core → DRAM → core.

A transaction carries a timestamp trail covering every probe point in
the paper's Figure 5 (SC1..SC5).  The security analysis package builds
inter-arrival histograms from these trails, so each stage of the
pipeline stamps the transaction as it passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.dram.address import DecodedAddress

# Process-global id source.  A plain integer (not itertools.count) so
# checkpoint/restore can query and re-seed it: a run resumed in a fresh
# process must hand out exactly the ids the uninterrupted run would
# have (see repro.resilience.snapshot).
_next_txn_id = 0


def _allocate_txn_id() -> int:
    global _next_txn_id
    allocated = _next_txn_id
    _next_txn_id += 1
    return allocated


def txn_id_watermark() -> int:
    """The id the next transaction will receive (snapshot metadata)."""
    return _next_txn_id


def advance_txn_id_watermark(watermark: int) -> None:
    """Raise the id counter to at least ``watermark`` (snapshot restore).

    Never lowers it: restoring an old snapshot into a process that has
    since allocated further ids must not mint duplicates.
    """
    global _next_txn_id
    if watermark > _next_txn_id:
        _next_txn_id = watermark


class TransactionType(Enum):
    """Read/write, and whether the transaction is shaper-generated."""

    READ = "read"
    WRITE = "write"
    FAKE_READ = "fake_read"

    @property
    def is_write(self) -> bool:
        return self is TransactionType.WRITE

    @property
    def is_fake(self) -> bool:
        return self is TransactionType.FAKE_READ


@dataclass
class MemoryTransaction:
    """One memory access with its full timestamp trail.

    Timestamps are ``None`` until the corresponding pipeline stage is
    reached.  ``created_cycle`` is when the LLC miss occurred (the
    *intrinsic* event); ``shaper_release_cycle`` is when the request
    shaper let it out (the *shaped* event); the difference is the
    shaping delay Camouflage trades for security.
    """

    core_id: int
    address: int
    kind: TransactionType
    created_cycle: int
    txn_id: int = field(default_factory=_allocate_txn_id)
    decoded: Optional[DecodedAddress] = None

    # Timestamp trail (filled in as the transaction advances).
    shaper_release_cycle: Optional[int] = None
    mc_arrival_cycle: Optional[int] = None
    issue_cycle: Optional[int] = None
    data_ready_cycle: Optional[int] = None
    response_release_cycle: Optional[int] = None
    delivered_cycle: Optional[int] = None

    # Set by schedulers for bookkeeping.
    was_row_hit: Optional[bool] = None

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def is_fake(self) -> bool:
        return self.kind.is_fake

    @property
    def queueing_delay(self) -> Optional[int]:
        """Cycles spent waiting in the controller's transaction queue."""
        if self.issue_cycle is None or self.mc_arrival_cycle is None:
            return None
        return self.issue_cycle - self.mc_arrival_cycle

    @property
    def memory_latency(self) -> Optional[int]:
        """Cycles from LLC miss until the response was delivered."""
        if self.delivered_cycle is None:
            return None
        return self.delivered_cycle - self.created_cycle

    @property
    def shaping_delay(self) -> Optional[int]:
        """Cycles the request shaper held this transaction."""
        if self.shaper_release_cycle is None:
            return None
        return self.shaper_release_cycle - self.created_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (
            f"MemoryTransaction(id={self.txn_id}, core={self.core_id}, "
            f"addr={self.address:#x}, kind={self.kind.value}, "
            f"created={self.created_cycle})"
        )

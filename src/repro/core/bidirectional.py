"""Bi-directional Camouflage (BDC) — paper section III-B3.

BDC is the composition of a request shaper and a response shaper for
the same core, used when both directions must be protected or when the
memory controller's scheduling policy cannot be modified (so the
acceleration warning path is unavailable and fake responses carry the
whole burden of fixing the response distribution).

This class is a thin coordinator: it owns the pair, exposes combined
telemetry, and forwards GA reconfigurations to both directions (the
genome of a BDC individual is the concatenation of two bin vectors —
``(MAX_CREDITS^20)`` search space, section IV-C).
"""

from __future__ import annotations

from typing import Tuple

from repro.core.bins import BinConfiguration
from repro.core.request_shaper import RequestCamouflage
from repro.core.response_shaper import ResponseCamouflage


class BidirectionalCamouflage:
    """Coordinated request + response shaping for one core."""

    def __init__(
        self,
        request_shaper: RequestCamouflage,
        response_shaper: ResponseCamouflage,
    ) -> None:
        if request_shaper.core_id != response_shaper.core_id:
            raise ValueError(
                "BDC must pair shapers of the same core "
                f"({request_shaper.core_id} vs {response_shaper.core_id})"
            )
        self.request = request_shaper
        self.response = response_shaper

    @property
    def core_id(self) -> int:
        return self.request.core_id

    def reconfigure(
        self,
        request_config: BinConfiguration,
        response_config: BinConfiguration,
    ) -> None:
        """Install a new (request, response) distribution pair.

        Both take effect at each shaper's next replenishment boundary,
        so a reconfiguration never tears a period.
        """
        self.request.shaper.reconfigure(request_config)
        self.response.shaper.reconfigure(response_config)

    def configs(self) -> Tuple[BinConfiguration, BinConfiguration]:
        return (self.request.shaper.config, self.response.shaper.config)

    def fake_traffic_fraction(self) -> float:
        """Fraction of all released transactions that were fake."""
        real = self.request.real_sent + self.response.real_sent
        fake = self.request.fake_sent + self.response.fake_sent
        total = real + fake
        return fake / total if total else 0.0

"""JSON (de)serialization for shaping configurations.

Lets bin configurations travel between runs, be checked into
experiment directories, or be passed to the CLI — the software half of
what the paper's hypervisor does when it "writes special purpose
control registers to configure the shape of the request/response
distributions" (section III-A1).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.common.errors import ConfigurationError
from repro.core.bins import BinConfiguration, BinSpec

_FORMAT = "repro-shaping-config-v1"


def config_to_dict(spec: BinSpec, config: BinConfiguration) -> dict:
    """A plain-dict form of one shaper configuration."""
    if config.num_bins != spec.num_bins:
        raise ConfigurationError("config/spec bin count mismatch")
    return {
        "format": _FORMAT,
        "edges": list(spec.edges),
        "replenish_period": spec.replenish_period,
        "credits": list(config.credits),
    }


def config_from_dict(data: dict):
    """Rebuild ``(BinSpec, BinConfiguration)`` from a plain dict."""
    if not isinstance(data, dict):
        raise ConfigurationError("shaping config must be a JSON object")
    if data.get("format") != _FORMAT:
        raise ConfigurationError(
            f"unsupported shaping-config format {data.get('format')!r}"
        )
    for key in ("edges", "replenish_period", "credits"):
        if key not in data:
            raise ConfigurationError(f"shaping config missing {key!r}")
    spec = BinSpec(
        edges=tuple(int(e) for e in data["edges"]),
        replenish_period=int(data["replenish_period"]),
    )
    config = BinConfiguration(tuple(int(c) for c in data["credits"]))
    if config.num_bins != spec.num_bins:
        raise ConfigurationError(
            "credits length does not match the number of edges"
        )
    return spec, config


def save_config(
    spec: BinSpec, config: BinConfiguration, path: Union[str, Path]
) -> None:
    """Write a configuration to a JSON file."""
    Path(path).write_text(
        json.dumps(config_to_dict(spec, config), indent=2) + "\n"
    )


def load_config(path: Union[str, Path]):
    """Read ``(BinSpec, BinConfiguration)`` from a JSON file."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: invalid JSON ({error})") from None
    return config_from_dict(data)

"""Epoch-based constant-rate shaping (Fletcher et al., HPCA 2014).

The paper's reference [14] — the enhanced Ascend design — splits a
program into coarse-grain epochs and picks a new constant access rate
from a fixed *rate set* at each epoch boundary.  Leakage is then
bounded by ``E × log2(R)`` bits (E epochs, R rates): the only
information an observer gains is which rate was chosen when.

Camouflage subsumes this design point (a one-bin configuration per
epoch), but the paper compares against it conceptually in Figure 2, so
this module provides a faithful standalone implementation:

* :class:`RateSet` — the allowed intervals (powers of two by default).
* :class:`EpochRateController` — picks the next epoch's rate from the
  previous epoch's observed demand (the runtime policy Fletcher'14
  describes: match the rate to the program phase).
* :class:`EpochRateShaper` — drop-in request-path shaper with the
  same interface as :class:`~repro.core.request_shaper.RequestCamouflage`,
  releasing real traffic at the epoch's constant interval and filling
  idle slots with fake requests (the ORAM in Ascend is accessed
  unconditionally at the chosen rate).

Leakage accounting is explicit: :meth:`EpochRateShaper.leakage_bound_bits`
returns the ``E × log2(R)`` bound for the run so far.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.core.distribution import InterArrivalHistogram
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink
from repro.obs.events import CATEGORY_SHAPER
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class RateSet:
    """The discrete intervals (cycles/access) an epoch may choose from."""

    intervals: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ConfigurationError("rate set must not be empty")
        if any(i <= 0 for i in self.intervals):
            raise ConfigurationError("intervals must be positive")
        if list(self.intervals) != sorted(set(self.intervals)):
            raise ConfigurationError(
                "intervals must be strictly increasing and unique"
            )

    @property
    def num_rates(self) -> int:
        return len(self.intervals)

    def bits_per_choice(self) -> float:
        """log2(R): information revealed by one epoch's rate choice."""
        return math.log2(self.num_rates)

    def interval_for_demand(self, accesses: int, epoch_cycles: int) -> int:
        """Slowest interval that still covers the observed demand.

        ``accesses`` over ``epoch_cycles`` needs an average interval of
        at most ``epoch_cycles / accesses``; pick the largest allowed
        interval not exceeding it (or the fastest if even that is too
        slow).
        """
        if accesses <= 0:
            return self.intervals[-1]
        # interval <= epoch_cycles / accesses, cross-multiplied so the
        # selection stays exact integer arithmetic (RL002).
        chosen = self.intervals[0]
        for interval in self.intervals:
            if interval * accesses <= epoch_cycles:
                chosen = interval
        return chosen


class EpochRateController:
    """Chooses each epoch's rate from the previous epoch's demand."""

    def __init__(self, rates: RateSet, epoch_cycles: int = 8192,
                 initial_interval: Optional[int] = None) -> None:
        if epoch_cycles <= 0:
            raise ConfigurationError("epoch_cycles must be positive")
        self.rates = rates
        self.epoch_cycles = epoch_cycles
        self.current_interval = initial_interval or rates.intervals[-1]
        if self.current_interval not in rates.intervals:
            raise ConfigurationError(
                f"initial interval {self.current_interval} not in the rate set"
            )
        self._demand_this_epoch = 0
        self._next_boundary = epoch_cycles
        self.rate_history: List[Tuple[int, int]] = []  # (cycle, interval)

    def note_demand(self) -> None:
        """Record one intrinsic memory request this epoch."""
        self._demand_this_epoch += 1

    # The demand->rate coupling below is the explicitly accounted
    # E x log2(R) leakage channel (leakage_bound_bits): demand selects
    # among the precomputed rate-set intervals at epoch boundaries
    # only, so it is a sanctioned crossing of the RL007 trust boundary.
    # repro-lint: sanitizer=RL007
    def maybe_advance_epoch(self, cycle: int, backlog: int = 0) -> bool:
        """Cross any due epoch boundary; returns True if one crossed.

        ``backlog`` (requests still waiting in the shaper) is added to
        the observed demand: under throttling, submissions are
        backpressured down to the current rate, so raw counts alone
        would lock the controller at a too-slow rate forever.
        """
        crossed = False
        while cycle >= self._next_boundary:
            new_interval = self.rates.interval_for_demand(
                self._demand_this_epoch + backlog, self.epoch_cycles
            )
            self._install(new_interval)
            crossed = True
        return crossed

    # Same sanctioned epoch-boundary channel as maybe_advance_epoch:
    # pressure/idle feedback moves one step within the fixed rate set.
    # repro-lint: sanitizer=RL007
    def maybe_advance_with_feedback(
        self, cycle: int, pressure: bool, idle: bool
    ) -> bool:
        """Boundary crossing with pressure/idle feedback (AIMD-style).

        Demand counting alone cannot see past the core's MSHR limit
        while throttled (submissions are backpressured to the current
        rate), so the practical policy steps one rate *faster* when the
        shaper observed queueing pressure during the epoch and one rate
        *slower* when most slots went to fake traffic.
        """
        crossed = False
        while cycle >= self._next_boundary:
            index = self.rates.intervals.index(self.current_interval)
            if pressure and index > 0:
                index -= 1
            elif idle and index + 1 < self.rates.num_rates:
                index += 1
            self._install(self.rates.intervals[index])
            crossed = True
            # Feedback applies once; further missed boundaries keep it.
        return crossed

    def _install(self, new_interval: int) -> None:
        if new_interval != self.current_interval:
            self.rate_history.append((self._next_boundary, new_interval))
        self.current_interval = new_interval
        self._demand_this_epoch = 0
        self._next_boundary += self.epoch_cycles

    @property
    def epochs_elapsed(self) -> int:
        return self._next_boundary // self.epoch_cycles - 1

    @property
    def next_boundary(self) -> int:
        """The next epoch-boundary cycle (for the next-event engine)."""
        return self._next_boundary


class EpochRateShaper:
    """Fletcher'14-style shaper: constant rate per epoch, fake-filled.

    Same request-path interface as ReqC (``can_accept`` / ``submit`` /
    ``tick``), so :class:`~repro.sim.SystemBuilder` experiments can
    compare the two directly.
    """

    def __init__(
        self,
        core_id: int,
        link: SharedLink,
        port: int,
        rng: DeterministicRng,
        rates: Optional[RateSet] = None,
        epoch_cycles: int = 8192,
        address_space_bytes: int = 1 << 30,
        line_bytes: int = 64,
        buffer_capacity: int = 32,
    ) -> None:
        self.core_id = core_id
        self.link = link
        self.port = port
        self._rng = rng
        self.controller = EpochRateController(
            rates or RateSet(), epoch_cycles=epoch_cycles
        )
        self._address_space = address_space_bytes
        self._line_bytes = line_bytes
        self._capacity = buffer_capacity
        self._buffer: Deque[MemoryTransaction] = deque()
        self._next_slot = self.controller.current_interval

        self.intrinsic_histogram = InterArrivalHistogram()
        self.shaped_histogram = InterArrivalHistogram()
        self.real_sent = 0
        self.fake_sent = 0
        # Per-epoch feedback for the rate controller.
        self._pressure_this_epoch = False
        self._real_slots_this_epoch = 0
        self._fake_slots_this_epoch = 0
        self.tracer = NULL_TRACER

    def attach_tracer(self, tracer) -> None:
        """Wire the event tracer in (builder-time, never mid-run)."""
        self.tracer = tracer

    # -- core-facing interface ------------------------------------------

    def can_accept(self, core_id: int) -> bool:
        return len(self._buffer) < self._capacity

    def submit(self, txn: MemoryTransaction, cycle: int) -> None:
        self._buffer.append(txn)
        self.intrinsic_histogram.record(cycle)
        self.controller.note_demand()

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    # -- per-cycle operation -----------------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle :meth:`tick` does real work.

        The stream is unconditionally periodic: the next slot always
        fires (real or fake), and every epoch boundary re-times the
        slots and consumes the epoch's feedback flags.  The pressure
        flag set on intermediate ticks is idempotent while the buffer
        is frozen, so skipped ticks change no state.
        """
        return min(self.controller.next_boundary, max(cycle, self._next_slot))

    def tick(self, cycle: int) -> None:
        """Fire exactly at each rate slot: real if queued, else fake.

        Ascend accesses the ORAM unconditionally at the chosen rate —
        an observer sees a perfectly periodic stream whose only degree
        of freedom is the per-epoch rate choice.
        """
        slots = self._real_slots_this_epoch + self._fake_slots_this_epoch
        idle = slots > 0 and self._fake_slots_this_epoch > slots // 2
        if self.controller.maybe_advance_with_feedback(
            cycle, pressure=self._pressure_this_epoch, idle=idle
        ):
            self._pressure_this_epoch = False
            self._real_slots_this_epoch = 0
            self._fake_slots_this_epoch = 0
            # A new epoch re-times the slots from the boundary.
            self._next_slot = max(
                self._next_slot, cycle + self.controller.current_interval
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.epoch_boundary",
                    core_id=self.core_id, direction="request",
                    interval=self.controller.current_interval,
                )
        if len(self._buffer) > 1:
            # More than one waiter means the rate is holding the
            # program back — escalate at the next boundary.
            self._pressure_this_epoch = True
        if cycle < self._next_slot or not self.link.can_inject(self.port):
            return
        if self._buffer:
            txn = self._buffer.popleft()
            txn.shaper_release_cycle = cycle
            self.link.inject(self.port, txn)
            self.real_sent += 1
            self._real_slots_this_epoch += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.real_release",
                    core_id=self.core_id, direction="request",
                    queued=len(self._buffer),
                )
        else:
            fake = self._make_fake(cycle)
            self.link.inject(self.port, fake)
            self.fake_sent += 1
            self._fake_slots_this_epoch += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.fake_inject",
                    core_id=self.core_id, direction="request",
                    address=fake.address,
                )
        self.shaped_histogram.record(cycle)
        self._next_slot = cycle + self.controller.current_interval

    def _make_fake(self, cycle: int) -> MemoryTransaction:
        max_line = max(1, self._address_space // self._line_bytes)
        address = self._rng.randint(0, max_line - 1) * self._line_bytes
        txn = MemoryTransaction(
            core_id=self.core_id,
            address=address,
            kind=TransactionType.FAKE_READ,
            created_cycle=cycle,
        )
        txn.shaper_release_cycle = cycle
        return txn

    # -- leakage accounting -----------------------------------------------------

    def leakage_bound_bits(self) -> float:
        """Fletcher'14's bound: E × log2(R) for the epochs so far."""
        epochs = max(0, self.controller.epochs_elapsed)
        return epochs * self.controller.rates.bits_per_choice()

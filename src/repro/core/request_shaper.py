"""Request Camouflage (ReqC) — paper section III-B2.

Sits between a core's LLC miss path and the shared request channel.
Real LLC misses queue in a small buffer and release only when the bin
shaper grants a credit; unused credits from the previous replenishment
period drive a fake-request generator that emits non-cached reads to
random addresses, so the post-shaper stream always sums to the
configured distribution regardless of what the program is doing.

:class:`PassthroughShaper` provides the identical interface with no
shaping, used to build the unprotected baseline system.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.core.distribution import InterArrivalHistogram
from repro.core.shaper import BinShaper
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink
from repro.obs.events import CATEGORY_SHAPER


class RequestCamouflage:
    """Per-core request shaper with fake-traffic generation.

    Parameters
    ----------
    core_id:
        The core whose miss stream this shaper guards.
    shaper:
        The bin/credit machinery (one per direction per core).
    link, port:
        The shared request channel and this core's port on it.
    rng:
        Source for fake-request addresses.
    address_space_bytes:
        Fake requests target random line-aligned addresses below this
        bound.
    line_bytes:
        Cache-line size for fake-address alignment.
    buffer_capacity:
        Miss-buffer depth; when full the core's fetch stage stalls.
    generate_fake:
        Disable to get a throttle-only shaper (used in the paper's
        "without fake traffic" MI measurement).
    """

    def __init__(
        self,
        core_id: int,
        shaper: BinShaper,
        link: SharedLink,
        port: int,
        rng: DeterministicRng,
        address_space_bytes: int = 1 << 30,
        line_bytes: int = 64,
        buffer_capacity: int = 32,
        generate_fake: bool = True,
    ) -> None:
        if buffer_capacity <= 0:
            raise ConfigurationError("buffer_capacity must be positive")
        self.core_id = core_id
        self.shaper = shaper
        self.link = link
        self.port = port
        self._rng = rng
        self._address_space = address_space_bytes
        self._line_bytes = line_bytes
        self._capacity = buffer_capacity
        self._buffer: Deque[MemoryTransaction] = deque()
        self.generate_fake = generate_fake

        # Probe histograms: the intrinsic (pre-shaper) distribution and
        # the shaped (post-shaper) distribution, both over the shaper's
        # own bin geometry — the paper measures post-Camouflage traffic
        # "with another hardware bin" (section IV-E1).
        self.intrinsic_histogram = InterArrivalHistogram(shaper.spec)
        self.shaped_histogram = InterArrivalHistogram(shaper.spec)

        self.real_sent = 0
        self.fake_sent = 0
        self.stall_cycles = 0

    # -- core-facing interface ------------------------------------------------

    def can_accept(self, core_id: int) -> bool:
        """Backpressure signal to the core's fetch stage."""
        return len(self._buffer) < self._capacity

    def submit(self, txn: MemoryTransaction, cycle: int) -> None:
        """Queue a real LLC miss for shaped release."""
        self._buffer.append(txn)
        self.intrinsic_histogram.record(cycle)

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    # -- per-cycle operation ------------------------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle :meth:`tick` could do more than count a stall.

        The replenishment boundary is always an event (credits reload,
        fake eligibility changes); a queued real release and a pending
        fake release contribute their shaper lower bounds.  Injection
        backpressure is not modelled here — a full link port keeps the
        *link* busy, which already pins the system to per-cycle mode.
        """
        event = self.shaper.next_replenish_cycle
        if self._buffer:
            real = self.shaper.earliest_real_release(cycle)
            if real is not None and real < event:
                event = real
        if self.generate_fake:
            fake = self.shaper.earliest_fake_release(cycle)
            if fake is not None and fake < event:
                event = fake
        return max(cycle, event)

    def skip_idle(self, cycle: int, target: int) -> None:
        """Closed-form replay of stall bookkeeping over ``[cycle, target)``."""
        if self._buffer and target > cycle:
            self.stall_cycles += target - cycle

    def tick(self, cycle: int) -> None:
        """Release at most one transaction (real preferred over fake)."""
        self.shaper.replenish_if_due(cycle)
        if not self.link.can_inject(self.port):
            if self._buffer:
                self.stall_cycles += 1
            return
        if self._buffer and self.shaper.can_release_real(cycle):
            txn = self._buffer.popleft()
            bin_index = self.shaper.release_real(cycle)
            txn.shaper_release_cycle = cycle
            self.link.inject(self.port, txn)
            self.shaped_histogram.record(cycle)
            self.real_sent += 1
            if self.shaper.tracer.enabled:
                self.shaper.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.real_release",
                    core_id=self.core_id, direction="request",
                    bin=bin_index, queued=len(self._buffer),
                )
            return
        if self._buffer:
            self.stall_cycles += 1
        if self.generate_fake and self.shaper.can_release_fake(cycle):
            bin_index = self.shaper.release_fake(cycle)
            fake = self._make_fake(cycle)
            self.link.inject(self.port, fake)
            self.shaped_histogram.record(cycle)
            self.fake_sent += 1
            if self.shaper.tracer.enabled:
                self.shaper.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.fake_inject",
                    core_id=self.core_id, direction="request",
                    bin=bin_index, address=fake.address,
                )

    def _make_fake(self, cycle: int) -> MemoryTransaction:
        """A non-cached read to a random line-aligned address."""
        max_line = max(1, self._address_space // self._line_bytes)
        address = self._rng.randint(0, max_line - 1) * self._line_bytes
        txn = MemoryTransaction(
            core_id=self.core_id,
            address=address,
            kind=TransactionType.FAKE_READ,
            created_cycle=cycle,
        )
        txn.shaper_release_cycle = cycle
        return txn


class PassthroughShaper:
    """No-shaping request path with the same interface as ReqC."""

    def __init__(self, core_id: int, link: SharedLink, port: int,
                 buffer_capacity: int = 32) -> None:
        self.core_id = core_id
        self.link = link
        self.port = port
        self._capacity = buffer_capacity
        self._buffer: Deque[MemoryTransaction] = deque()
        self.intrinsic_histogram = InterArrivalHistogram()
        self.shaped_histogram = self.intrinsic_histogram  # identical stream
        self.real_sent = 0
        self.fake_sent = 0

    def can_accept(self, core_id: int) -> bool:
        return len(self._buffer) < self._capacity

    def submit(self, txn: MemoryTransaction, cycle: int) -> None:
        self._buffer.append(txn)
        self.intrinsic_histogram.record(cycle)

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return cycle if self._buffer else None

    def tick(self, cycle: int) -> None:
        if self._buffer and self.link.can_inject(self.port):
            txn = self._buffer.popleft()
            txn.shaper_release_cycle = cycle
            self.link.inject(self.port, txn)
            self.real_sent += 1

"""Inter-arrival time histograms.

The measurement primitive of the whole paper: given a stream of event
timestamps (requests on a bus, responses at a core), bin the gaps
between consecutive events into the shaper's bin geometry.  Both the
security analysis (mutual information between intrinsic and shaped
histograms) and the Figure 11 distribution-accuracy experiment are
computed from these.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec


class InterArrivalHistogram:
    """Streaming histogram of inter-arrival times over a bin spec."""

    def __init__(self, spec: Optional[BinSpec] = None) -> None:
        self.spec = spec or BinSpec()
        self._counts = [0] * self.spec.num_bins
        self._last_timestamp: Optional[int] = None
        self._gaps: List[int] = []

    # -- recording ---------------------------------------------------------

    def record(self, timestamp: int) -> None:
        """Record one event; the gap to the previous event is binned."""
        if self._last_timestamp is not None:
            gap = timestamp - self._last_timestamp
            if gap < 0:
                raise ConfigurationError(
                    f"timestamps must be non-decreasing "
                    f"({timestamp} after {self._last_timestamp})"
                )
            self._counts[self.spec.bin_of(gap)] += 1
            self._gaps.append(gap)
        self._last_timestamp = timestamp

    def record_all(self, timestamps: Iterable[int]) -> None:
        for t in timestamps:
            self.record(t)

    @classmethod
    def from_timestamps(
        cls, timestamps: Iterable[int], spec: Optional[BinSpec] = None
    ) -> "InterArrivalHistogram":
        hist = cls(spec)
        hist.record_all(timestamps)
        return hist

    # -- accessors -----------------------------------------------------------

    @property
    def counts(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    @property
    def gaps(self) -> Sequence[int]:
        """The raw inter-arrival samples, in order."""
        return tuple(self._gaps)

    @property
    def total(self) -> int:
        return sum(self._counts)

    def frequencies(self) -> Tuple[float, ...]:
        """Normalized bin frequencies (all zeros when empty)."""
        total = self.total
        if total == 0:
            return tuple([0.0] * self.spec.num_bins)
        return tuple(c / total for c in self._counts)

    def bin_sequence(self) -> np.ndarray:
        """Each gap mapped to its bin index, as an array (for MI)."""
        return np.array([self.spec.bin_of(g) for g in self._gaps], dtype=np.int64)

    # -- comparisons -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Value equality: same spec and same recorded sample stream.

        Without this, dataclasses that embed histograms (CoreStats,
        SystemReport) would fall back to identity comparison and two
        independently-built runs could never compare equal — which is
        exactly what the engine-equivalence tests need to assert.
        """
        if not isinstance(other, InterArrivalHistogram):
            return NotImplemented
        return (
            self.spec == other.spec
            and self._counts == other._counts
            and self._last_timestamp == other._last_timestamp
            and self._gaps == other._gaps
        )

    __hash__ = None  # mutable; keep unhashable like other stat accumulators

    def total_variation_distance(self, other: "InterArrivalHistogram") -> float:
        """TV distance between two normalized histograms (0 = identical)."""
        if self.spec.num_bins != other.spec.num_bins:
            raise ConfigurationError("histograms have different bin counts")
        mine = self.frequencies()
        theirs = other.frequencies()
        return 0.5 * sum(abs(a - b) for a, b in zip(mine, theirs))

    def matches_target(
        self, target_frequencies: Sequence[float], tolerance: float = 0.05
    ) -> bool:
        """Does the measured distribution match ``target`` within TV tolerance?

        Used by the Figure 11 reproduction to assert that every
        application's shaped request distribution equals the DESIRED
        staircase.
        """
        if len(target_frequencies) != self.spec.num_bins:
            raise ConfigurationError("target has wrong number of bins")
        mine = self.frequencies()
        tv = 0.5 * sum(abs(a - b) for a, b in zip(mine, target_frequencies))
        return tv <= tolerance

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"InterArrivalHistogram(counts={self._counts})"

"""Bin geometry and credit distributions.

The Camouflage hardware (paper section III-A1) has N bins; bin *k*
holds credits for memory transactions issued with inter-arrival time
falling in bin *k*'s interval.  We model the paper's design point:
**ten bins** with exponentially spaced interval edges and **10-bit
credit registers** (max 1023 credits per bin).

``BinConfiguration`` is the value the hypervisor writes into the
shaper's control registers: credits-per-bin to replenish each period.
It also doubles as the genome of the genetic algorithm (section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Hardware limit of one credit register (10 bits, section III-A3).
MAX_CREDITS_PER_BIN = 1023

#: The paper's design point: ten bins.
DEFAULT_NUM_BINS = 10

#: Default exponential inter-arrival edges (cycles): bin k covers
#: inter-arrival times in [edges[k], edges[k+1]), last bin is open.
DEFAULT_EDGES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class BinSpec:
    """Geometry of the shaper's bins: interval edges and replenish period.

    ``edges[k]`` is the smallest inter-arrival time (in cycles) that
    falls into bin ``k``; bin ``k`` covers ``[edges[k], edges[k+1])``
    and the last bin is open-ended.  ``replenish_period`` is the fixed
    period at which credit registers are reloaded (section III-A2).
    """

    edges: Tuple[int, ...] = DEFAULT_EDGES
    replenish_period: int = 2048

    def __post_init__(self) -> None:
        if len(self.edges) < 1:
            raise ConfigurationError("at least one bin is required")
        if self.edges[0] < 1:
            raise ConfigurationError("the smallest edge must be >= 1 cycle")
        for a, b in zip(self.edges, self.edges[1:]):
            if b <= a:
                raise ConfigurationError(
                    f"bin edges must be strictly increasing, got {self.edges}"
                )
        if self.replenish_period < self.edges[-1]:
            raise ConfigurationError(
                "replenish period must cover the largest bin edge "
                f"({self.replenish_period} < {self.edges[-1]})"
            )

    @property
    def num_bins(self) -> int:
        return len(self.edges)

    def bin_of(self, inter_arrival: int) -> int:
        """Index of the bin containing ``inter_arrival`` (cycles).

        Inter-arrival times below the smallest edge map to bin 0 —
        hardware cannot distinguish sub-minimum gaps, it simply treats
        back-to-back transactions as the fastest bin.
        """
        if inter_arrival < 0:
            raise ConfigurationError(
                f"negative inter-arrival time {inter_arrival}"
            )
        # Linear scan: ten bins, called in the hot loop, but a scan of a
        # 10-tuple is faster than bisect overhead at this size.
        index = 0
        for k, edge in enumerate(self.edges):
            if inter_arrival >= edge:
                index = k
            else:
                break
        return index

    def max_bandwidth_fraction(self, config: "BinConfiguration") -> float:
        """Upper bound on channel occupancy this config permits.

        Each credit in bin ``k`` stands for one transaction at least
        ``edges[k]`` cycles after the previous one, so total time to
        spend all credits is ``sum(credits[k] * edges[k])``; dividing
        by the replenish period bounds the issue-rate the shaper can
        sustain (transactions per cycle).
        """
        cycles_needed = sum(
            credits * edge for credits, edge in zip(config.credits, self.edges)
        )
        return cycles_needed / self.replenish_period


@dataclass(frozen=True)
class BinConfiguration:
    """Credits replenished into each bin every period (the register file)."""

    credits: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.credits:
            raise ConfigurationError("credit vector must not be empty")
        for k, c in enumerate(self.credits):
            if not 0 <= c <= MAX_CREDITS_PER_BIN:
                raise ConfigurationError(
                    f"bin {k} credits {c} outside 0..{MAX_CREDITS_PER_BIN} "
                    "(10-bit hardware register)"
                )
        if sum(self.credits) == 0:
            raise ConfigurationError(
                "at least one credit is required or the shaper deadlocks"
            )

    @property
    def num_bins(self) -> int:
        return len(self.credits)

    @property
    def total_credits(self) -> int:
        return sum(self.credits)

    def normalized(self) -> Tuple[float, ...]:
        """Credit distribution as frequencies summing to 1."""
        total = self.total_credits
        return tuple(c / total for c in self.credits)

    def with_bin(self, index: int, credits: int) -> "BinConfiguration":
        """A copy with one bin's credit count replaced."""
        if not 0 <= index < len(self.credits):
            raise ConfigurationError(f"bin index {index} out of range")
        updated = list(self.credits)
        updated[index] = credits
        return BinConfiguration(tuple(updated))


def constant_rate_config(
    spec: BinSpec, interval: int
) -> BinConfiguration:
    """The CS baseline: all credits in the single bin for ``interval``.

    Configures the shaper to release at a strictly constant rate of one
    transaction per ``interval`` cycles — the Ascend/Fletcher'14 design
    point the paper describes as a degenerate Camouflage configuration
    ("Camouflage can be configured to be a constant rate shaper by
    using only one bin").
    """
    if interval < spec.edges[0]:
        raise ConfigurationError(
            f"constant-rate interval {interval} below the smallest edge"
        )
    target_bin = spec.bin_of(interval)
    if spec.edges[target_bin] != interval:
        raise ConfigurationError(
            f"constant-rate interval {interval} must equal a bin edge "
            f"(edges: {spec.edges}) so the release rate is exact"
        )
    credits = [0] * spec.num_bins
    count = spec.replenish_period // interval
    credits[target_bin] = min(count, MAX_CREDITS_PER_BIN)
    return BinConfiguration(tuple(credits))


def uniform_config(spec: BinSpec, credits_per_bin: int) -> BinConfiguration:
    """Equal credits in every bin (a permissive starting distribution)."""
    if credits_per_bin <= 0:
        raise ConfigurationError("credits_per_bin must be positive")
    return BinConfiguration(tuple([credits_per_bin] * spec.num_bins))

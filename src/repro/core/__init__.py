"""Camouflage: bin-based memory traffic shaping (the paper's contribution).

Components:

* :class:`BinSpec` / :class:`BinConfiguration` — the hardware bin
  geometry (10 bins over exponential inter-arrival intervals, 10-bit
  credit registers) and a credit distribution to shape toward.
* :class:`BinShaper` — the credit machinery shared by both directions:
  replenishment, consumption, unused-credit latching, fake-traffic
  scheduling.
* :class:`RequestCamouflage` (ReqC) — shapes a core's request stream
  before the shared channel; defends pin/bus monitoring.
* :class:`ResponseCamouflage` (RespC) — shapes a core's response stream
  at the controller egress; buffers, emits fake responses and raises
  scheduler priority warnings; defends memory side/covert channels.
* :class:`BidirectionalCamouflage` (BDC) — both at once.
* :class:`PassthroughShaper` — the no-shaping baseline with the same
  interface, so systems can be built uniformly.
* :func:`constant_rate_config` — the CS (Ascend-style) degenerate
  configuration: a single credited bin.
"""

from repro.core.bins import (
    BinConfiguration,
    BinSpec,
    constant_rate_config,
    uniform_config,
)
from repro.core.distribution import InterArrivalHistogram
from repro.core.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.core.shaper import BinShaper, ShaperState
from repro.core.request_shaper import PassthroughShaper, RequestCamouflage
from repro.core.response_shaper import PassthroughResponsePath, ResponseCamouflage
from repro.core.bidirectional import BidirectionalCamouflage
from repro.core.epoch_shaper import (
    EpochRateController,
    EpochRateShaper,
    RateSet,
)
from repro.core.hardware_cost import (
    ShaperCost,
    bdc_per_core_cost,
    request_shaper_cost,
    response_shaper_cost,
)

__all__ = [
    "BidirectionalCamouflage",
    "BinConfiguration",
    "BinShaper",
    "BinSpec",
    "EpochRateController",
    "EpochRateShaper",
    "RateSet",
    "InterArrivalHistogram",
    "PassthroughResponsePath",
    "PassthroughShaper",
    "RequestCamouflage",
    "ResponseCamouflage",
    "ShaperCost",
    "ShaperState",
    "bdc_per_core_cost",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "request_shaper_cost",
    "response_shaper_cost",
    "save_config",
    "constant_rate_config",
    "uniform_config",
]

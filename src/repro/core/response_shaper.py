"""Response Camouflage (RespC) — paper section III-B1 and Figure 6.

Sits at the memory controller's egress, one instance per protected
core.  Three mechanisms:

1. **Throttling** — responses arriving faster than the target
   distribution wait in the response queue until a credit is eligible.
2. **Acceleration** — when responses arrive *slower* than the target
   (e.g. co-runners hog the memory system), the shaper cannot conjure
   real data, so at each replenishment boundary it sends a *warning*
   to the scheduler with its count of unused credits; a
   :class:`~repro.memctrl.schedulers.PriorityFrFcfsScheduler` converts
   that count into priority boosts for this core's requests.
3. **Fake responses** — when the core simply is not requesting (no
   pending or fresh responses) but unused credits remain, fake
   responses keep the egress stream on the target distribution
   (Figure 6 case 3).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.common.errors import ConfigurationError
from repro.core.distribution import InterArrivalHistogram
from repro.core.shaper import BinShaper
from repro.memctrl.schedulers import PriorityFrFcfsScheduler
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.noc.link import SharedLink
from repro.obs.events import CATEGORY_SHAPER


def _zero_outstanding() -> int:
    """Default outstanding probe — module-level so the shaper pickles
    (checkpoint/restore snapshots the whole wired system graph)."""
    return 0


class ResponseCamouflage:
    """Per-core response shaper at the controller egress.

    Parameters
    ----------
    core_id, shaper, link, port:
        As for :class:`~repro.core.request_shaper.RequestCamouflage`,
        but on the response channel.
    scheduler:
        The priority-capable memory scheduler to send warnings to
        (``None`` disables the acceleration path, leaving a pure
        throttle-plus-fake shaper — the BDC deployment where "memory
        scheduling policies cannot be changed").
    outstanding_fn:
        Callable returning how many of this core's requests are still
        inside the memory system.  A replenishment that latches unused
        credits *while requests are outstanding* means the memory
        system is too slow → warn; unused credits with nothing
        outstanding mean the program is idle → fake responses instead.
    """

    def __init__(
        self,
        core_id: int,
        shaper: BinShaper,
        link: SharedLink,
        port: int,
        scheduler: Optional[PriorityFrFcfsScheduler] = None,
        outstanding_fn: Optional[Callable[[], int]] = None,
        buffer_capacity: int = 64,
        generate_fake: bool = True,
    ) -> None:
        if buffer_capacity <= 0:
            raise ConfigurationError("buffer_capacity must be positive")
        self.core_id = core_id
        self.shaper = shaper
        self.link = link
        self.port = port
        self.scheduler = scheduler
        self._outstanding_fn = outstanding_fn or _zero_outstanding
        self._capacity = buffer_capacity
        self._queue: Deque[MemoryTransaction] = deque()
        self.generate_fake = generate_fake

        self.intrinsic_histogram = InterArrivalHistogram(shaper.spec)
        self.shaped_histogram = InterArrivalHistogram(shaper.spec)

        self.real_sent = 0
        self.fake_sent = 0
        self.warnings_sent = 0
        self.boost_credits_granted = 0

    def set_outstanding_fn(self, fn: Callable[[], int]) -> None:
        """Late-bind the outstanding-request probe (builder wiring)."""
        self._outstanding_fn = fn

    # -- controller-facing interface ---------------------------------------

    def can_accept(self) -> bool:
        return len(self._queue) < self._capacity

    def push_response(self, txn: MemoryTransaction, cycle: int) -> None:
        """Accept a completed transaction from the controller egress."""
        self._queue.append(txn)
        self.intrinsic_histogram.record(cycle)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    # -- per-cycle operation -----------------------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle :meth:`tick` could release or cross a boundary.

        Boundaries always count (credit reload plus the priority-warning
        hook); a queued real response contributes the shaper's lower
        bound, and fake responses are only eligible while the queue is
        empty (Figure 6 case 3).  Link backpressure is the link's event.
        """
        event = self.shaper.next_replenish_cycle
        if self._queue:
            real = self.shaper.earliest_real_release(cycle)
            if real is not None and real < event:
                event = real
        elif self.generate_fake:
            fake = self.shaper.earliest_fake_release(cycle)
            if fake is not None and fake < event:
                event = fake
        return max(cycle, event)

    def tick(self, cycle: int) -> None:
        boundaries = self.shaper.replenish_if_due(cycle)
        if boundaries:
            self._maybe_warn()
        if not self.link.can_inject(self.port):
            return
        if self._queue and self.shaper.can_release_real(cycle):
            txn = self._queue.popleft()
            bin_index = self.shaper.release_real(cycle)
            txn.response_release_cycle = cycle
            self.link.inject(self.port, txn)
            self.shaped_histogram.record(cycle)
            self.real_sent += 1
            if self.shaper.tracer.enabled:
                self.shaper.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.real_release",
                    core_id=self.core_id, direction="response",
                    bin=bin_index, queued=len(self._queue),
                )
            return
        if (
            self.generate_fake
            and not self._queue
            and self.shaper.can_release_fake(cycle)
        ):
            bin_index = self.shaper.release_fake(cycle)
            fake = MemoryTransaction(
                core_id=self.core_id,
                address=0,
                kind=TransactionType.FAKE_READ,
                created_cycle=cycle,
            )
            fake.response_release_cycle = cycle
            self.link.inject(self.port, fake)
            self.shaped_histogram.record(cycle)
            self.fake_sent += 1
            if self.shaper.tracer.enabled:
                self.shaper.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.fake_inject",
                    core_id=self.core_id, direction="response",
                    bin=bin_index,
                )

    def _maybe_warn(self) -> None:
        """Replenishment hook: ask for priority if the MC is too slow.

        Unused credits with requests still inside the memory system
        mean the response rate fell below the target because of
        interference — the acceleration case.  The warning carries the
        unused-credit count and the scheduler boosts this core
        "in proportion to the number of unused credits" (paper
        section III-B1).
        """
        if self.scheduler is None:
            return
        unused = self.shaper.unused_total_at_last_replenish()
        if unused > 0 and self._outstanding_fn() > 0:
            # A fresh per-period grant (set, not add): unconsumed boost
            # from earlier periods must not pile up into a permanent
            # priority inversion against the other cores.
            self.scheduler.set_boost(self.core_id, unused)
            self.warnings_sent += 1
            self.boost_credits_granted += unused
            if self.shaper.tracer.enabled:
                # Stamped with the boundary the warning belongs to (the
                # most recent one processed), so late boundary catch-up
                # under the next-event engine traces identically.
                self.shaper.tracer.emit(
                    self.shaper.next_replenish_cycle
                    - self.shaper.spec.replenish_period,
                    CATEGORY_SHAPER, "shaper.priority_warning",
                    core_id=self.core_id, direction="response",
                    unused=unused,
                )


class PassthroughResponsePath:
    """No-shaping response path with the same interface as RespC."""

    def __init__(self, core_id: int, link: SharedLink, port: int,
                 buffer_capacity: int = 64) -> None:
        self.core_id = core_id
        self.link = link
        self.port = port
        self._capacity = buffer_capacity
        self._queue: Deque[MemoryTransaction] = deque()
        self.intrinsic_histogram = InterArrivalHistogram()
        self.shaped_histogram = self.intrinsic_histogram
        self.real_sent = 0
        self.fake_sent = 0

    def can_accept(self) -> bool:
        return len(self._queue) < self._capacity

    def push_response(self, txn: MemoryTransaction, cycle: int) -> None:
        self._queue.append(txn)
        self.intrinsic_histogram.record(cycle)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return cycle if self._queue else None

    def tick(self, cycle: int) -> None:
        if self._queue and self.link.can_inject(self.port):
            txn = self._queue.popleft()
            txn.response_release_cycle = cycle
            self.link.inject(self.port, txn)
            self.real_sent += 1

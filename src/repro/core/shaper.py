"""The bin-based credit shaper (paper sections III-A1 and III-A2).

One :class:`BinShaper` instance is the credit machinery of one
direction (request or response) for one core.  Semantics, following
the paper:

* A transaction whose inter-arrival time is Δ (cycles since the
  previous release, real or fake) may release when **some bin with
  interval edge ≤ Δ holds a credit**; the *largest* such bin is
  consumed, keeping the accounting aligned with the observed gap.
  Otherwise the transaction stalls until Δ grows into a credited bin
  or credits are replenished.
* **Replenishment** happens every ``spec.replenish_period`` cycles:
  leftover credits are latched into the *unused-credit* register file
  (the second array of Figure 7) and the live credits reset to the
  configured distribution.
* **Fake traffic** draws from the latched unused credits of the
  previous period: whenever no real transaction releases in a cycle
  and an unused bin with edge ≤ Δ is credited, a fake release fires.
  Fake traffic therefore tops the stream up to the configured
  distribution one period behind the shortfall — exactly Figure 7's
  compensation scheme ("the added fake traffic compensates for
  requests missing from the previous replenishment period").

At most one release (real *or* fake) can occur per cycle because the
smallest bin edge is ≥ 1 cycle, modelling the single-transaction port
width of the hardware.

Reconfiguration (the GA's runtime knob) is double-buffered: a new
:class:`~repro.core.bins.BinConfiguration` takes effect at the next
replenishment boundary so a period is never shaped by two different
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError, ProtocolError
from repro.core.bins import BinConfiguration, BinSpec
from repro.obs.events import CATEGORY_SHAPER, SYSTEM_CORE
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class ShaperState:
    """Snapshot of the shaper's register file (for tests and debugging)."""

    credits: Tuple[int, ...]
    unused_credits: Tuple[int, ...]
    last_release_cycle: int
    next_replenish_cycle: int


class BinShaper:
    """Credit registers, replenishment and fake-traffic eligibility."""

    def __init__(
        self,
        spec: BinSpec,
        config: BinConfiguration,
        start_cycle: int = 0,
        strict: bool = False,
        jitter_rng=None,
        jitter_budget: Optional[int] = None,
    ) -> None:
        """``strict`` selects the exact-bin release rule: a transaction
        may only consume the credit of the bin its inter-arrival time
        actually falls into (top bin excepted, to bound worst-case
        delay).  This makes the observed distribution track the
        configured one tightly — the Figure 11 accuracy mode — at some
        extra stalling compared to the default rule, which accepts any
        credited bin with edge ≤ Δ.

        ``jitter_rng`` (a :class:`~repro.common.rng.DeterministicRng`)
        enables the paper's section IV-B4 mitigation for fine-grained
        within-replenishment-window attacks: each real release is
        delayed by a random hold drawn from the width of the eligible
        bin's interval, "to increase the timing uncertainty and
        probability of memory conflict in a randomized manner".

        ``jitter_budget`` bounds the number of jitter draws (one per
        armed hold).  When the budget is exhausted the shaper *degrades
        gracefully*: it stops arming holds and falls back to strict
        constant-rate release — still on the configured distribution,
        just without the randomized fine-grained defense — and flags
        the fallback through :meth:`set_degradation_sink` and a
        ``shaper.degraded`` trace event instead of silently changing
        behaviour.  ``None`` (default) means unlimited.
        """
        if jitter_budget is not None and jitter_budget < 0:
            raise ConfigurationError("jitter_budget must be non-negative")
        if config.num_bins != spec.num_bins:
            raise ConfigurationError(
                f"configuration has {config.num_bins} bins but the spec "
                f"has {spec.num_bins}"
            )
        self.spec = spec
        self._strict = strict
        self._jitter_rng = jitter_rng
        self._jitter_budget = jitter_budget
        self.jitter_draws = 0
        # Graceful degradation (resilience): set once the jitter budget
        # runs out, after which releases are strict constant-rate.
        self.degraded = False
        self.degraded_at_cycle: Optional[int] = None
        self._degradation_sink = None
        # Cycle a pending jittered release is held until (None = no
        # hold armed); re-armed per release, cleared when consumed.
        self._jitter_hold_until: Optional[int] = None
        self._config = config
        self._credits: List[int] = list(config.credits)
        self._unused: List[int] = [0] * spec.num_bins
        self._last_release = start_cycle
        self._next_replenish = start_cycle + spec.replenish_period
        self._pending_config: Optional[BinConfiguration] = None
        # Derived aggregates over the credit registers, kept in sync by
        # the three mutation sites (replenish, release_real,
        # release_fake).  They make the non-strict next-event bounds
        # O(1) per poll — the engines poll every stepped cycle, while
        # releases are comparatively rare.
        self._credits_total = 0
        self._unused_total = 0
        self._credits_smallest_edge: Optional[int] = None
        self._unused_smallest_edge: Optional[int] = None
        self._recache_aggregates()

        # Telemetry.
        self.real_releases = 0
        self.fake_releases = 0
        self.replenishments = 0
        self.last_unused_snapshot: Tuple[int, ...] = tuple([0] * spec.num_bins)

        # Observability: inert by default; the system builder attaches
        # a live tracer (and the core/direction labels) when enabled.
        self.tracer = NULL_TRACER
        self.trace_core = SYSTEM_CORE
        self.trace_direction = ""

    def attach_tracer(self, tracer, core_id: int, direction: str) -> None:
        """Wire the event tracer in (builder-time, never mid-run)."""
        self.tracer = tracer
        self.trace_core = core_id
        self.trace_direction = direction

    def set_degradation_sink(self, sink) -> None:
        """Wire the degraded-mode flag target (builder-time).

        ``sink(cycle, core_id, direction, reason, detail)`` — normally
        the bound :meth:`~repro.obs.monitor.ShapingMonitor.flag_degraded`
        method, which pickles with the system graph for checkpointing.
        """
        self._degradation_sink = sink

    # -- configuration -----------------------------------------------------

    @property
    def config(self) -> BinConfiguration:
        return self._config

    def reconfigure(self, config: BinConfiguration) -> None:
        """Install a new distribution at the next replenishment boundary."""
        if config.num_bins != self.spec.num_bins:
            raise ConfigurationError("new configuration has wrong bin count")
        self._pending_config = config

    def state(self) -> ShaperState:
        return ShaperState(
            credits=tuple(self._credits),
            unused_credits=tuple(self._unused),
            last_release_cycle=self._last_release,
            next_replenish_cycle=self._next_replenish,
        )

    # -- replenishment ------------------------------------------------------------

    def replenish_if_due(self, cycle: int) -> int:
        """Process any replenishment boundaries up to ``cycle``.

        Returns the number of boundaries crossed (normally 0 or 1; more
        only if the caller skipped cycles).  On each boundary the
        leftover credits are latched as the unused-credit registers and
        the live credits reload from the (possibly newly installed)
        configuration.
        """
        boundaries = 0
        while cycle >= self._next_replenish:
            self._unused = list(self._credits)
            self.last_unused_snapshot = tuple(self._unused)
            if self._pending_config is not None:
                self._config = self._pending_config
                self._pending_config = None
            self._credits = list(self._config.credits)
            # A jitter hold armed against the old period's credits must
            # not delay (or raise against) a release whose bin was just
            # reloaded: the hardware latch resets with the registers.
            self._jitter_hold_until = None
            if self.tracer.enabled:
                # Stamped with the nominal boundary, not the tick that
                # processed it: a next-event skip may land several
                # boundaries late, and the event stream must not show it.
                self.tracer.emit(
                    self._next_replenish, CATEGORY_SHAPER, "shaper.replenish",
                    core_id=self.trace_core,
                    direction=self.trace_direction,
                    unused=sum(self._unused),
                    credits=sum(self._credits),
                )
            self._next_replenish += self.spec.replenish_period
            self.replenishments += 1
            boundaries += 1
        if boundaries:
            self._recache_aggregates()
        return boundaries

    def _recache_aggregates(self) -> None:
        """Refresh the derived totals / smallest-credited-edge caches."""
        edges = self.spec.edges
        self._credits_total = sum(self._credits)
        self._unused_total = sum(self._unused)
        self._credits_smallest_edge = None
        for edge, count in zip(edges, self._credits):
            if count > 0:
                self._credits_smallest_edge = edge
                break
        self._unused_smallest_edge = None
        for edge, count in zip(edges, self._unused):
            if count > 0:
                self._unused_smallest_edge = edge
                break

    # -- release eligibility ---------------------------------------------------------

    def _delta(self, cycle: int) -> int:
        if cycle < self._last_release:
            raise ProtocolError(
                f"shaper clock moved backwards ({cycle} < {self._last_release})"
            )
        return cycle - self._last_release

    def _eligible_bin(self, registers: List[int], delta: int) -> Optional[int]:
        """The bin a release at gap ``delta`` would consume, or None.

        Default rule: the largest credited bin whose edge ≤ delta
        (paper III-A1: stall only "if there are no credits available in
        a bin that represent lower or equal to the ... inter-arrival
        time").  Strict rule: only the exact bin containing delta, with
        the top bin falling back to the default rule so a long-idle
        stream can never deadlock.
        """
        if self._strict:
            k = self.spec.bin_of(delta)
            if self.spec.edges[k] <= delta and registers[k] > 0:
                return k
            if k < self.spec.num_bins - 1:
                return None
            # Top-bin fallback: behave like the default rule.
        chosen: Optional[int] = None
        for k, edge in enumerate(self.spec.edges):
            if edge > delta:
                break
            if registers[k] > 0:
                chosen = k
        return chosen

    def _bin_interval_width(self, bin_index: int) -> int:
        """Width of a bin's inter-arrival interval (for jitter draws)."""
        edges = self.spec.edges
        if bin_index + 1 < len(edges):
            return edges[bin_index + 1] - edges[bin_index]
        return edges[bin_index]

    def can_release_real(self, cycle: int) -> bool:
        """May a real transaction release this cycle?

        With jitter enabled, the first cycle a release *would* be
        eligible arms a random hold inside the eligible bin's interval
        (hardware latches the draw); the release is permitted once the
        hold expires — the section IV-B4 randomization.
        """
        bin_index = self._eligible_bin(self._credits, self._delta(cycle))
        if bin_index is None:
            return False
        if self._jitter_rng is None or self.degraded:
            return True
        if self._jitter_hold_until is None:
            if (
                self._jitter_budget is not None
                and self.jitter_draws >= self._jitter_budget
            ):
                self._enter_degraded_mode(cycle)
                return True
            width = self._bin_interval_width(bin_index)
            self._jitter_hold_until = cycle + self._jitter_rng.randint(
                0, max(0, width - 1)
            )
            self.jitter_draws += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    cycle, CATEGORY_SHAPER, "shaper.jitter_hold",
                    core_id=self.trace_core,
                    direction=self.trace_direction,
                    hold_until=self._jitter_hold_until,
                    bin=bin_index,
                )
        return cycle >= self._jitter_hold_until

    def _enter_degraded_mode(self, cycle: int) -> None:
        """Jitter budget exhausted: fall back to strict constant-rate
        release, flagged — never a silent behaviour change."""
        self.degraded = True
        self.degraded_at_cycle = cycle
        if self.tracer.enabled:
            self.tracer.emit(
                cycle, CATEGORY_SHAPER, "shaper.degraded",
                core_id=self.trace_core,
                direction=self.trace_direction,
                reason="jitter_budget_exhausted",
                draws=self.jitter_draws,
            )
        if self._degradation_sink is not None:
            self._degradation_sink(
                cycle,
                self.trace_core,
                self.trace_direction,
                "jitter_budget_exhausted",
                f"jitter budget of {self._jitter_budget} draws exhausted; "
                f"releases continue without randomized holds",
            )

    def can_release_fake(self, cycle: int) -> bool:
        """May a fake transaction release this cycle (unused credits)?"""
        return self._eligible_bin(self._unused, self._delta(cycle)) is not None

    def _earliest_eligible(
        self,
        registers: List[int],
        cycle: int,
        floor: Optional[int] = None,
    ) -> Optional[int]:
        """Smallest ``c' >= max(cycle, floor)`` whose inter-arrival gap
        makes :meth:`_eligible_bin` succeed against ``registers``.

        Assumes no releases or replenishments happen in between (the
        caller re-queries after either).  ``None`` when the registers
        hold no credits at all.
        """
        self._delta(cycle)  # clock-monotonicity check
        lo = cycle if floor is None else max(cycle, floor)
        if not any(r > 0 for r in registers):
            return None
        edges = self.spec.edges
        last = self._last_release
        if not self._strict:
            # Default rule: eligible as soon as delta reaches the
            # smallest credited bin's edge (monotone in delta).
            smallest = min(e for e, r in zip(edges, registers) if r > 0)
            return max(lo, last + smallest)
        # Strict rule: eligibility is per bin interval
        # [edges[k], edges[k+1]) and non-monotone in delta — a credited
        # bin whose interval has already passed only becomes usable
        # again through the top-bin fallback.
        best: Optional[int] = None
        for k, edge in enumerate(edges):
            if registers[k] <= 0:
                continue
            start = max(lo, last + edge)
            if k + 1 < len(edges) and start >= last + edges[k + 1]:
                continue  # interval already passed at the floor
            if best is None or start < best:
                best = start
        # Top-bin fallback: once delta reaches the last edge the
        # default rule applies, so any remaining credit is eligible.
        fallback = max(lo, last + edges[-1])
        if best is None or fallback < best:
            best = fallback
        return best

    def earliest_real_release(self, cycle: int) -> Optional[int]:
        """Earliest future cycle a real release becomes possible.

        A true lower bound on ``min {c' >= cycle : can_release_real(c')}``
        under both the strict exact-bin rule and an armed jitter hold,
        so the next-event engine can skip straight to it:

        * no jitter, or jitter with a hold armed — the returned cycle
          is *exactly* the first cycle :meth:`can_release_real` answers
          True (assuming no replenishment in between);
        * jitter enabled but no hold armed yet — the returned cycle is
          where the hold would be armed; the draw is unknown until
          then, so the release may still be held a few cycles past it.

        ``None`` when no live credits remain — the caller must wait for
        the next replenishment (:attr:`next_replenish_cycle`).
        """
        floor = self._jitter_hold_until if self._jitter_rng is not None else None
        if not self._strict:
            # O(1) via the cached aggregates: with the default rule the
            # bound is reached exactly when delta hits the smallest
            # credited edge (same formula as the general path below).
            self._delta(cycle)
            if self._credits_total == 0:
                return None
            lo = cycle if floor is None else max(cycle, floor)
            return max(lo, self._last_release + self._credits_smallest_edge)
        return self._earliest_eligible(self._credits, cycle, floor=floor)

    def earliest_fake_release(self, cycle: int) -> Optional[int]:
        """Earliest future cycle a fake release becomes possible.

        Exactly the first cycle :meth:`can_release_fake` answers True
        (fake releases never jitter); ``None`` when no unused credits
        remain from the previous period.
        """
        if not self._strict:
            self._delta(cycle)
            if self._unused_total == 0:
                return None
            return max(cycle, self._last_release + self._unused_smallest_edge)
        return self._earliest_eligible(self._unused, cycle)

    @property
    def next_replenish_cycle(self) -> int:
        return self._next_replenish

    # -- release actions -------------------------------------------------------------

    def release_real(self, cycle: int) -> int:
        """Consume a credit for a real release; returns the bin index."""
        delta = self._delta(cycle)
        bin_index = self._eligible_bin(self._credits, delta)
        if bin_index is None:
            raise ProtocolError(
                f"real release at cycle {cycle} without an eligible credit "
                f"(delta={delta}, credits={self._credits})"
            )
        if self._jitter_hold_until is not None and cycle < self._jitter_hold_until:
            raise ProtocolError(
                f"real release at cycle {cycle} before its jitter hold "
                f"expires ({self._jitter_hold_until})"
            )
        self._credits[bin_index] -= 1
        self._last_release = cycle
        self._jitter_hold_until = None
        self.real_releases += 1
        self._recache_aggregates()
        return bin_index

    def release_fake(self, cycle: int) -> int:
        """Consume an unused credit for a fake release; returns the bin."""
        delta = self._delta(cycle)
        bin_index = self._eligible_bin(self._unused, delta)
        if bin_index is None:
            raise ProtocolError(
                f"fake release at cycle {cycle} without an eligible unused "
                f"credit (delta={delta}, unused={self._unused})"
            )
        self._unused[bin_index] -= 1
        self._last_release = cycle
        self.fake_releases += 1
        self._recache_aggregates()
        return bin_index

    # -- telemetry -----------------------------------------------------------------

    def credits_remaining(self) -> Tuple[int, ...]:
        return tuple(self._credits)

    def unused_remaining(self) -> Tuple[int, ...]:
        return tuple(self._unused)

    def unused_total_at_last_replenish(self) -> int:
        """Sum of credits latched unused at the most recent boundary.

        This is the number RespC sends to the memory scheduler with its
        priority warning (paper section III-B1).
        """
        return sum(self.last_unused_snapshot)

"""Hardware cost model for the Camouflage shaper (paper III-A3).

The paper argues Camouflage's area is negligible: "less than 0.1% in
area compared to a two-way OoO processor", consisting of MITTS's bin
machinery plus the fake-traffic additions.  This module makes that
accounting explicit and machine-checkable:

* per shaper: one *current-credit*, one *replenish-amount* and one
  *unused-credit* register per bin (10 bits each, section III-A3),
  plus comparators and the replenishment counter;
* per response shaper: the response queue entries and the warning
  datapath;
* the per-core total and its ratio against published gate counts for
  small OoO cores, to reproduce the <0.1% claim's order of magnitude.

Costs are reported in *bits of storage* and *estimated gate
equivalents* (6 gates per flip-flop, 1 gate per bit of comparator —
standard rough coefficients for back-of-envelope architecture
estimates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.core.bins import BinSpec

#: Rough synthesis coefficients (gate equivalents).
GATES_PER_FLIPFLOP = 6
GATES_PER_COMPARATOR_BIT = 1

#: Gate-equivalent budget of a two-way OoO core *including its L1
#: caches* — the area the paper's percentage is taken against (the
#: 32 KB L1s alone are ~2-3M gate equivalents of SRAM; logic, RF,
#: TLBs and the pipeline bring a small OoO core to the 10-30M range).
#: Used only for the <0.1% ratio, so order of magnitude is what
#: matters.
TWO_WAY_OOO_CORE_GATES = 20_000_000


@dataclass(frozen=True)
class ShaperCost:
    """Storage/logic cost of one shaper instance."""

    storage_bits: int
    comparator_bits: int
    queue_bits: int

    @property
    def total_bits(self) -> int:
        return self.storage_bits + self.queue_bits

    @property
    def gate_equivalents(self) -> int:
        return (
            self.total_bits * GATES_PER_FLIPFLOP
            + self.comparator_bits * GATES_PER_COMPARATOR_BIT
        )

    def fraction_of_core(self) -> float:
        """Area as a fraction of a two-way OoO core (the III-A3 claim)."""
        return self.gate_equivalents / TWO_WAY_OOO_CORE_GATES


def request_shaper_cost(
    spec: BinSpec,
    credit_bits: int = 10,
    address_bits: int = 48,
) -> ShaperCost:
    """Cost of one ReqC instance.

    Three register files of ``num_bins`` × ``credit_bits`` (current /
    replenish / unused, section III-A3), a replenishment down-counter,
    an inter-arrival counter, one comparator per bin, and the
    fake-address LFSR.
    """
    if credit_bits <= 0 or address_bits <= 0:
        raise ConfigurationError("bit widths must be positive")
    n = spec.num_bins
    register_files = 3 * n * credit_bits
    period_bits = max(1, (spec.replenish_period - 1).bit_length())
    interarrival_bits = max(1, spec.edges[-1].bit_length() + 2)
    lfsr_bits = address_bits
    storage = register_files + period_bits + interarrival_bits + lfsr_bits
    comparators = n * interarrival_bits + n * credit_bits
    return ShaperCost(
        storage_bits=storage,
        comparator_bits=comparators,
        queue_bits=0,
    )


def response_shaper_cost(
    spec: BinSpec,
    credit_bits: int = 10,
    queue_entries: int = 16,
    entry_bits: int = 64,
    address_bits: int = 48,
) -> ShaperCost:
    """Cost of one RespC instance: ReqC machinery + the response queue
    (Figure 6) + the unused-credit warning adder."""
    base = request_shaper_cost(spec, credit_bits, address_bits)
    if queue_entries <= 0 or entry_bits <= 0:
        raise ConfigurationError("queue dimensions must be positive")
    queue_bits = queue_entries * entry_bits
    warning_adder_bits = spec.num_bins * credit_bits
    return ShaperCost(
        storage_bits=base.storage_bits,
        comparator_bits=base.comparator_bits + warning_adder_bits,
        queue_bits=queue_bits,
    )


def bdc_per_core_cost(spec: BinSpec) -> ShaperCost:
    """A full BDC deployment for one core: ReqC + RespC."""
    req = request_shaper_cost(spec)
    resp = response_shaper_cost(spec)
    return ShaperCost(
        storage_bits=req.storage_bits + resp.storage_bits,
        comparator_bits=req.comparator_bits + resp.comparator_bits,
        queue_bits=req.queue_bits + resp.queue_bits,
    )

"""Shared on-chip channel between cores and the memory controller.

The paper's probe points SC1 (core→MC request channel) and SC5
(MC→core response channel) live here: a shared link serving one
transaction per cycle with round-robin arbitration and a fixed
traversal latency.  Contention on this link is observable by an
adversary timing its own transfers, which is why ReqC sits *before*
the request link and RespC *before* the response link.
"""

from repro.noc.link import LinkPort, SharedLink
from repro.noc.mesh import MeshConfig, MeshNetwork

__all__ = ["LinkPort", "MeshConfig", "MeshNetwork", "SharedLink"]

"""Shared link with round-robin arbitration and fixed hop latency.

One transaction wins arbitration per cycle (single-flit transactions,
link width = one transaction).  A granted transaction arrives
``latency`` cycles later.  Per-port ingress queues are bounded; a full
queue back-pressures the producer (shaper, controller egress), so
contention propagates end to end.

The link records a timestamped trace of every grant — this is the
wire an adversary with pin/bus access probes, so the security analysis
reads :attr:`SharedLink.grant_trace` directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ProtocolError
from repro.memctrl.transaction import MemoryTransaction
from repro.obs.events import CATEGORY_NOC
from repro.obs.ring import make_trace_buffer
from repro.obs.tracer import NULL_TRACER


class LinkPort:
    """Bounded ingress queue of one port on a shared link."""

    def __init__(self, port_id: int, capacity: int) -> None:
        self.port_id = port_id
        self._capacity = capacity
        self._queue: Deque[MemoryTransaction] = deque()

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self._capacity

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def push(self, txn: MemoryTransaction) -> None:
        if self.is_full:
            raise ProtocolError(f"push into full link port {self.port_id}")
        self._queue.append(txn)

    def peek(self) -> MemoryTransaction:
        return self._queue[0]

    def pop(self) -> MemoryTransaction:
        return self._queue.popleft()


class SharedLink:
    """A shared, arbitrated, fixed-latency channel.

    Parameters
    ----------
    num_ports:
        Independent producers (one per core on the request link; the
        controller uses per-core ports on the response link too, so
        arbitration fairness is identical in both directions).
    latency:
        Cycles between winning arbitration and arriving.
    port_capacity:
        Ingress queue depth per port; full ⇒ producer back-pressure.
    trace_limit:
        When set, :attr:`grant_trace` keeps only the most recent
        ``trace_limit`` grants (a bounded ring) so multi-million-cycle
        performance runs do not exhaust memory.  ``None`` (default)
        keeps the full trace for the security benchmarks.
    """

    def __init__(self, num_ports: int, latency: int = 4,
                 port_capacity: int = 16,
                 trace_limit: Optional[int] = None) -> None:
        if num_ports <= 0:
            raise ConfigurationError("num_ports must be positive")
        if latency < 1:
            raise ConfigurationError("latency must be at least 1 cycle")
        if port_capacity <= 0:
            raise ConfigurationError("port_capacity must be positive")
        if trace_limit is not None and trace_limit <= 0:
            raise ConfigurationError("trace_limit must be positive")
        self.latency = latency
        self.trace_limit = trace_limit
        self.ports = [LinkPort(i, port_capacity) for i in range(num_ports)]
        self._rr_next = 0
        # (arrival_cycle, txn) in grant order; arrival cycles are
        # monotonically non-decreasing because latency is constant.
        self._in_flight: Deque[Tuple[int, MemoryTransaction]] = deque()
        # Wire trace for the pin/bus-monitoring adversary:
        # (grant_cycle, port, transaction).
        self.grant_trace = self._new_trace()
        self.total_grants = 0
        self.tracer = NULL_TRACER
        self.trace_label = ""

    def _new_trace(self):
        return make_trace_buffer(self.trace_limit)

    def attach_tracer(self, tracer, label: str) -> None:
        """Wire the event tracer in; ``label`` names the channel
        direction ("request"/"response") on emitted grants."""
        self.tracer = tracer
        self.trace_label = label

    # -- producer side -------------------------------------------------

    def can_inject(self, port: int) -> bool:
        return not self.ports[port].is_full

    def inject(self, port: int, txn: MemoryTransaction) -> None:
        self.ports[port].push(txn)

    def occupancy(self, port: int) -> int:
        return self.ports[port].occupancy

    # -- per-cycle operation -----------------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle the link could grant or deliver.

        Buffered flits mean arbitration may run *now* (backpressure is
        the consumer's concern); otherwise the head-of-line in-flight
        arrival is the only timed event.  Idle and empty ⇒ ``None``.
        """
        if any(not p.is_empty for p in self.ports):
            return cycle
        if self._in_flight:
            return max(cycle, self._in_flight[0][0])
        return None

    def tick(self, cycle: int, dest_ready: bool = True) -> None:
        """Arbitrate one grant (if the consumer has room)."""
        if not dest_ready:
            return
        n = len(self.ports)
        for offset in range(n):
            port = self.ports[(self._rr_next + offset) % n]
            if not port.is_empty:
                txn = port.pop()
                self._in_flight.append((cycle + self.latency, txn))
                self.grant_trace.append((cycle, port.port_id, txn))
                self.total_grants += 1
                self._rr_next = (port.port_id + 1) % n
                if self.tracer.enabled:
                    self.tracer.emit(
                        cycle, CATEGORY_NOC, "noc.grant",
                        core_id=txn.core_id,
                        channel=self.trace_label,
                        port=port.port_id,
                        kind=txn.kind.name,
                    )
                return

    def pop_arrivals(self, cycle: int) -> List[MemoryTransaction]:
        """Transactions whose traversal completes at or before ``cycle``."""
        arrived: List[MemoryTransaction] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            arrived.append(self._in_flight.popleft()[1])
        return arrived

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def drain_trace(self) -> List[Tuple[int, int, MemoryTransaction]]:
        """Hand over and clear the grant trace (bounded-memory runs)."""
        trace = list(self.grant_trace)
        self.grant_trace = self._new_trace()
        return trace

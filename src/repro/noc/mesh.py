"""2D-mesh on-chip network (optional substrate for SC1/SC5).

The paper's shared channel between cores and the memory controller is
"NoC, etc."; the default model is a single arbitrated link
(:class:`~repro.noc.link.SharedLink`).  This module provides the
richer alternative: a 2D mesh of input-buffered routers with
dimension-ordered (X-then-Y) routing, one-flit transactions,
round-robin output arbitration and credit-style backpressure.

Why it matters for the paper's story: in a mesh, *where* a core sits
determines how much of the victim's traffic crosses its path, so
contention — and therefore leakage — is position-dependent.  ReqC
still closes the channel because it shapes traffic before injection,
wherever the core sits.

:class:`MeshNetwork` implements the same producer/consumer interface
as :class:`SharedLink` (``can_inject`` / ``inject`` / ``tick`` /
``pop_arrivals`` / ``grant_trace``), so
:meth:`repro.sim.SystemBuilder.with_noc` can swap topologies without
touching the rest of the system.  One instance carries one direction:
``to_hub`` (cores → memory controller) or ``from_hub`` (controller →
cores); ``port`` always names the core endpoint.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ProtocolError
from repro.memctrl.transaction import MemoryTransaction
from repro.obs.events import CATEGORY_NOC
from repro.obs.ring import make_trace_buffer
from repro.obs.tracer import NULL_TRACER

#: Router port names: four neighbours plus the local inject/eject port.
_DIRECTIONS = ("N", "S", "E", "W", "L")


@dataclass(frozen=True)
class MeshConfig:
    """Mesh geometry and buffering."""

    buffer_depth: int = 4

    def __post_init__(self) -> None:
        if self.buffer_depth <= 0:
            raise ConfigurationError("buffer_depth must be positive")


class _Router:
    """One input-buffered router with round-robin output arbitration."""

    def __init__(self, node: int, buffer_depth: int) -> None:
        self.node = node
        self.inputs: Dict[str, Deque] = {
            d: deque() for d in _DIRECTIONS
        }
        self._depth = buffer_depth
        self._rr: Dict[str, int] = {d: 0 for d in _DIRECTIONS}

    def has_room(self, direction: str) -> bool:
        return len(self.inputs[direction]) < self._depth

    def push(self, direction: str, flit) -> None:
        if not self.has_room(direction):
            raise ProtocolError(
                f"router {self.node} input {direction} overflow"
            )
        self.inputs[direction].append(flit)

    def arbitrate(self, route_fn) -> List[Tuple[str, str]]:
        """Pick at most one (input, output) grant per output port.

        ``route_fn(flit)`` returns the output direction a flit wants.
        Only input heads compete (virtual cut-through with one-flit
        packets).  Returns the granted pairs; the caller moves flits.
        """
        wants: Dict[str, List[str]] = {}
        for direction in _DIRECTIONS:
            queue = self.inputs[direction]
            if queue:
                out = route_fn(queue[0])
                wants.setdefault(out, []).append(direction)
        grants: List[Tuple[str, str]] = []
        for out, requesters in wants.items():
            start = self._rr[out] % len(_DIRECTIONS)
            ordered = sorted(
                requesters,
                key=lambda d: (_DIRECTIONS.index(d) - start) % len(_DIRECTIONS),
            )
            chosen = ordered[0]
            grants.append((chosen, out))
            self._rr[out] = _DIRECTIONS.index(chosen) + 1
        return grants


class MeshNetwork:
    """A 2D mesh carrying one traffic direction (to or from the hub).

    Parameters
    ----------
    num_ports:
        Core endpoints.  The grid is the smallest square holding all
        cores plus the hub (memory controller), which occupies the
        last node.
    direction:
        ``"to_hub"``: ``inject(port=i)`` enters at core *i*'s node,
        destined for the hub.  ``"from_hub"``: enters at the hub,
        destined for core *i*'s node.
    """

    def __init__(
        self,
        num_ports: int,
        direction: str = "to_hub",
        config: Optional[MeshConfig] = None,
        latency: int = 1,  # accepted for SharedLink API parity (per hop)
        port_capacity: int = 16,
        trace_limit: Optional[int] = None,
    ) -> None:
        if num_ports <= 0:
            raise ConfigurationError("num_ports must be positive")
        if direction not in ("to_hub", "from_hub"):
            raise ConfigurationError(f"unknown direction {direction!r}")
        if trace_limit is not None and trace_limit <= 0:
            raise ConfigurationError("trace_limit must be positive")
        self.config = config or MeshConfig()
        self.direction = direction
        self.num_ports = num_ports
        self._port_capacity = port_capacity

        self.width = max(2, math.ceil(math.sqrt(num_ports + 1)))
        self.height = max(2, math.ceil((num_ports + 1) / self.width))
        self.num_nodes = self.width * self.height
        self.hub_node = self.num_nodes - 1
        # Core i sits at node i (row-major); the hub takes the last node.
        if num_ports > self.hub_node:
            raise ConfigurationError("grid sizing failed to fit all cores")

        self.routers = [
            _Router(node, self.config.buffer_depth)
            for node in range(self.num_nodes)
        ]
        # Source queues feeding each injection point.
        self._source_queues: List[Deque] = [
            deque() for _ in range(num_ports)
        ]
        self._arrivals: Deque[MemoryTransaction] = deque()
        self.trace_limit = trace_limit
        self.grant_trace = self._new_trace()
        self.total_grants = 0
        self.total_hops = 0
        self._in_flight = 0
        self.tracer = NULL_TRACER
        self.trace_label = ""

    def _new_trace(self):
        return make_trace_buffer(self.trace_limit)

    def attach_tracer(self, tracer, label: str) -> None:
        """Wire the event tracer in; ``label`` names the channel
        direction ("request"/"response") on emitted grants."""
        self.tracer = tracer
        self.trace_label = label

    # -- geometry -----------------------------------------------------------

    def _xy(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def _node_of_port(self, port: int) -> int:
        return port

    def _route(self, at_node: int, dest_node: int) -> str:
        """Dimension-ordered (X then Y) next hop, 'L' when arrived."""
        x, y = self._xy(at_node)
        dx, dy = self._xy(dest_node)
        if x < dx:
            return "E"
        if x > dx:
            return "W"
        if y < dy:
            return "S"
        if y > dy:
            return "N"
        return "L"

    def _neighbor(self, node: int, direction: str) -> int:
        x, y = self._xy(node)
        if direction == "E":
            x += 1
        elif direction == "W":
            x -= 1
        elif direction == "S":
            y += 1
        elif direction == "N":
            y -= 1
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ProtocolError(f"route off the mesh at node {node}")
        return y * self.width + x

    @staticmethod
    def _opposite(direction: str) -> str:
        return {"N": "S", "S": "N", "E": "W", "W": "E"}[direction]

    # -- producer interface (SharedLink parity) ---------------------------------

    def can_inject(self, port: int) -> bool:
        return len(self._source_queues[port]) < self._port_capacity

    def inject(self, port: int, txn: MemoryTransaction) -> None:
        if not self.can_inject(port):
            raise ProtocolError(f"inject into full mesh port {port}")
        self._source_queues[port].append(txn)

    def occupancy(self, port: int) -> int:
        return len(self._source_queues[port])

    # -- per-cycle operation -------------------------------------------------------

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """``cycle`` while any flit is buffered anywhere, else ``None``.

        Unlike :class:`~repro.noc.link.SharedLink` the mesh has no
        timed in-flight state — every buffered flit can move (or eject)
        on the very next tick — so the mesh is only ever skippable when
        completely empty.
        """
        if self._arrivals or self.in_flight_count:
            return cycle
        return None

    def tick(self, cycle: int, dest_ready: bool = True) -> None:
        """Advance every router by one cycle.

        ``dest_ready`` gates ejection at the hub (to_hub direction):
        when the consumer (the memory controller) has no room, hub
        ejections stall and backpressure builds hop by hop.
        """
        # 1. Source injection into local input buffers.
        for port, queue in enumerate(self._source_queues):
            if not queue:
                continue
            node = (
                self._node_of_port(port)
                if self.direction == "to_hub"
                else self.hub_node
            )
            router = self.routers[node]
            if router.has_room("L"):
                txn = queue.popleft()
                dest = (
                    self.hub_node
                    if self.direction == "to_hub"
                    else self._node_of_port(txn.core_id)
                )
                router.push("L", (txn, dest))

        # 2. Arbitration: collect all moves first, then apply, so a
        #    flit moves at most one hop per cycle.
        moves = []  # (router, in_dir, out_dir, flit)
        for router in self.routers:
            def route_fn(flit, _node=router.node):
                return self._route(_node, flit[1])

            for in_dir, out_dir in router.arbitrate(route_fn):
                flit = router.inputs[in_dir][0]
                if out_dir == "L":
                    ejecting_at_hub = router.node == self.hub_node
                    if (
                        self.direction == "to_hub"
                        and ejecting_at_hub
                        and not dest_ready
                    ):
                        continue  # consumer full: hold the flit
                    moves.append((router, in_dir, None, flit))
                else:
                    neighbor = self.routers[
                        self._neighbor(router.node, out_dir)
                    ]
                    if neighbor.has_room(self._opposite(out_dir)):
                        moves.append((router, in_dir, out_dir, flit))

        for router, in_dir, out_dir, flit in moves:
            router.inputs[in_dir].popleft()
            txn, dest = flit
            if out_dir is None:
                self._arrivals.append(txn)
                self.grant_trace.append((cycle, txn.core_id, txn))
                self.total_grants += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        cycle, CATEGORY_NOC, "noc.grant",
                        core_id=txn.core_id,
                        channel=self.trace_label,
                        node=router.node,
                        kind=txn.kind.name,
                    )
            else:
                neighbor = self.routers[self._neighbor(router.node, out_dir)]
                neighbor.push(self._opposite(out_dir), flit)
                self.total_hops += 1

    def pop_arrivals(self, cycle: int) -> List[MemoryTransaction]:
        out = list(self._arrivals)
        self._arrivals.clear()
        return out

    # -- introspection ------------------------------------------------------------

    @property
    def in_flight_count(self) -> int:
        buffered = sum(
            len(q) for r in self.routers for q in r.inputs.values()
        )
        return buffered + sum(len(q) for q in self._source_queues)

    def drain_trace(self):
        trace = list(self.grant_trace)
        self.grant_trace = self._new_trace()
        return trace

    def hop_distance(self, port: int) -> int:
        """Manhattan distance from a core's node to the hub."""
        x, y = self._xy(self._node_of_port(port))
        hx, hy = self._xy(self.hub_node)
        return abs(x - hx) + abs(y - hy)

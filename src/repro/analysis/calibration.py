"""Workload-calibration validation.

The reproduction substitutes synthetic generators for the paper's
SPEC/Apache traces (DESIGN.md §2); this module measures what the
substitution actually produces — per-benchmark memory intensity,
row-buffer behaviour, bandwidth, burstiness — so the preserved
properties the substitution claims (intensity ordering, locality
styles, burstiness contrast) can be asserted rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.experiments import ExperimentDefaults, run_alone
from repro.sim.bandwidth import bandwidth_series, burstiness_index
from repro.sim.system import SystemBuilder
from repro.workloads.spec import BENCHMARK_NAMES, make_trace


@dataclass(frozen=True)
class WorkloadCalibration:
    """Measured characteristics of one benchmark running alone."""

    name: str
    ipc: float
    llc_mpki: float
    requests_per_kilocycle: float
    row_hit_rate: float
    mean_latency: float
    burstiness: float


def calibrate_benchmark(
    name: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    window_cycles: int = 1024,
) -> WorkloadCalibration:
    """Run one benchmark alone and summarize its memory behaviour."""
    builder = SystemBuilder(seed=defaults.seed)
    builder.add_core(make_trace(name, defaults.accesses, seed=defaults.seed))
    system = builder.build()
    report = system.run(defaults.cycles, stop_when_done=False)
    stats = report.core(0)
    insts = max(1, stats.retired_instructions)
    series = bandwidth_series(
        system.request_link.grant_trace, window_cycles, report.cycles_run
    )
    return WorkloadCalibration(
        name=name,
        ipc=stats.ipc,
        llc_mpki=1000.0 * stats.llc_misses / insts,
        requests_per_kilocycle=(
            1000.0 * stats.demand_requests / max(1, stats.cycles)
        ),
        row_hit_rate=report.row_hit_rate(),
        mean_latency=stats.mean_memory_latency(),
        burstiness=burstiness_index(series),
    )


def calibrate_suite(
    defaults: ExperimentDefaults = ExperimentDefaults(),
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, WorkloadCalibration]:
    """Calibrate every benchmark in the suite (or a subset)."""
    return {
        name: calibrate_benchmark(name, defaults)
        for name in (benchmarks or BENCHMARK_NAMES)
    }


#: The qualitative properties the substitution must preserve, with the
#: published characterizations they come from (see workloads/spec.py).
EXPECTED_INTENSITY_ORDER = ("mcf", "astar", "sjeng")
EXPECTED_STREAMING = "libquantum"
EXPECTED_POINTER_CHASING = "mcf"
EXPECTED_BURSTY = ("apache", "gcc")
EXPECTED_STEADY = ("libquantum", "mcf", "omnetpp")


def check_substitution_claims(
    calibrations: Dict[str, WorkloadCalibration],
) -> Dict[str, bool]:
    """Evaluate each DESIGN.md substitution claim against measurements.

    Returns claim-name → held?, so a harness can both report and
    assert them.
    """
    def rate(name: str) -> float:
        return calibrations[name].requests_per_kilocycle

    claims = {}
    hi, mid, lo = EXPECTED_INTENSITY_ORDER
    claims["intensity_ordering (mcf > astar > sjeng)"] = (
        rate(hi) > rate(mid) > rate(lo)
    )
    claims["libquantum streams (highest row-hit rate)"] = (
        calibrations[EXPECTED_STREAMING].row_hit_rate
        == max(c.row_hit_rate for c in calibrations.values())
    )
    claims["mcf pointer-chases (row-hit below suite median)"] = (
        calibrations[EXPECTED_POINTER_CHASING].row_hit_rate
        < sorted(c.row_hit_rate for c in calibrations.values())[
            len(calibrations) // 2
        ]
    )
    claims["bursty profiles (apache, gcc) beat steady ones"] = min(
        calibrations[name].burstiness for name in EXPECTED_BURSTY
    ) > 2 * max(
        calibrations[name].burstiness for name in EXPECTED_STEADY
    )
    return claims

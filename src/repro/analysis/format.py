"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], precision: int = 3
) -> str:
    """Render rows as an aligned text table.

    Floats are formatted to ``precision`` digits; everything else via
    ``str``.
    """

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def ascii_series(values: Sequence[float], width: int = 64) -> str:
    """A one-line sparkline of a numeric series (downsampled to fit)."""
    values = list(values)
    if not values:
        return "(empty)"
    if len(values) > width:
        stride = len(values) / width
        values = [
            values[min(len(values) - 1, int(i * stride))] for i in range(width)
        ]
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _BLOCKS[1] * len(values)
    scale = len(_BLOCKS) - 2
    return "".join(
        _BLOCKS[1 + int((v - low) / span * scale)] for v in values
    )


def format_distribution(counts: Sequence[int], label: str = "") -> str:
    """Bin counts as a labelled bar row (Figure 11 style)."""
    total = sum(counts) or 1
    bars = ascii_series([c / total for c in counts], width=len(counts))
    numbers = " ".join(f"{c:>4d}" for c in counts)
    prefix = f"{label:<12s} " if label else ""
    return f"{prefix}{bars}  [{numbers}]"

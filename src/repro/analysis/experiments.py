"""Experiment drivers for every table and figure in the evaluation.

Each public function regenerates the data behind one paper artefact
(the index lives in DESIGN.md section 3).  They are deliberately
deterministic: a (defaults, seed) pair pins every workload draw and
every fake-traffic address, so benchmark output is stable run to run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.util import geometric_mean
from repro.core.bins import (
    BinConfiguration,
    BinSpec,
    MAX_CREDITS_PER_BIN,
    constant_rate_config,
)
from repro.core.distribution import InterArrivalHistogram
from repro.ga.online import OnlineGaTuner, ShaperHandle, TunerConfig
from repro.security.attacks import bit_error_rate, decode_covert_key
from repro.security.leakage import accumulated_response_difference
from repro.security.mutual_information import (
    interarrival_mi,
    windowed_rate_mi,
)
from repro.sim.stats import SystemReport
from repro.sim.system import (
    RequestShapingPlan,
    ResponseShapingPlan,
    System,
    SystemBuilder,
)
from repro.workloads.covert import CovertChannelConfig, covert_sender_trace, key_to_bits
from repro.workloads.spec import make_trace

#: Address-space stride separating co-running programs' allocations.
_CORE_ADDRESS_STRIDE = 1 << 33


def constant_rate_interval_for(
    spec: BinSpec, target_interval: float, context: str = ""
) -> int:
    """The CS-baseline release interval for a target inter-arrival time.

    Picks the largest bin edge not exceeding ``target_interval`` (never
    slower than the bandwidth budget, slightly favouring the CS
    baseline).  When *every* edge exceeds the target — the program's
    rate outruns even the fastest bin — there is no edge on the correct
    side, so the interval clamps to the **nearest** edge instead of
    silently using ``spec.edges[0]`` by fall-through, and the clamp is
    reported through :mod:`repro.obs.diag` (the old silent fallback
    happened to equal the nearest edge, but an anchor that cannot honour
    its bandwidth target is exactly the kind of comparability hazard the
    sweep's reader needs to see).
    """
    from repro.obs.diag import emit_diagnostic

    eligible = [edge for edge in spec.edges if edge <= target_interval]
    if eligible:
        return max(eligible)
    nearest = min(spec.edges, key=lambda e: (abs(e - target_interval), e))
    emit_diagnostic(
        "analysis.cs_interval_clamped",
        context=context,
        target_interval=float(target_interval),
        interval=int(nearest),
    )
    return nearest


@dataclass(frozen=True)
class ExperimentDefaults:
    """Shared experiment knobs.

    ``accesses`` bounds each program's trace length; ``cycles`` bounds
    each run.  The paper's runs are longer in absolute terms; these
    defaults keep a full benchmark sweep tractable on one machine
    while leaving every workload deep in steady state.
    """

    accesses: int = 4000
    cycles: int = 40000
    seed: int = 42
    spec: BinSpec = BinSpec()

    def scaled(self, factor: float) -> "ExperimentDefaults":
        return replace(
            self,
            accesses=max(1, int(self.accesses * factor)),
            cycles=max(1, int(self.cycles * factor)),
        )


# ---------------------------------------------------------------------------
# basic runs
# ---------------------------------------------------------------------------


def _build_mix(
    benchmarks: Sequence[str],
    defaults: ExperimentDefaults,
    request_plans: Optional[Dict[int, RequestShapingPlan]] = None,
    response_plans: Optional[Dict[int, ResponseShapingPlan]] = None,
    scheduler: str = "frfcfs",
    scheduler_kwargs: Optional[Dict] = None,
    bank_partitioning: bool = False,
    trace_repeat: int = 1,
) -> System:
    """``trace_repeat`` loops each program's trace — needed when a run
    is longer than the default cycle budget (e.g. a GA CONFIG phase
    preceding the measured RUN phase) so no core drains early."""
    request_plans = request_plans or {}
    response_plans = response_plans or {}
    builder = SystemBuilder(seed=defaults.seed)
    builder.with_scheduler(scheduler, **(scheduler_kwargs or {}))
    if bank_partitioning:
        builder.with_bank_partitioning()
    for core_id, name in enumerate(benchmarks):
        trace = make_trace(
            name,
            num_accesses=defaults.accesses,
            seed=defaults.seed + core_id,
            base_address=core_id * _CORE_ADDRESS_STRIDE,
        )
        if trace_repeat > 1:
            trace = trace.repeated(trace_repeat)
        builder.add_core(
            trace,
            request_shaping=request_plans.get(core_id),
            response_shaping=response_plans.get(core_id),
        )
    return builder.build()


def run_mix(
    benchmarks: Sequence[str],
    defaults: ExperimentDefaults = ExperimentDefaults(),
    **kwargs,
) -> SystemReport:
    """Run a multiprogram mix for the default cycle budget."""
    system = _build_mix(benchmarks, defaults, **kwargs)
    return system.run(defaults.cycles, stop_when_done=False)


def run_alone(
    benchmark: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    request_plan: Optional[RequestShapingPlan] = None,
    core_slot: int = 0,
) -> SystemReport:
    """Run one program alone (no co-runners, FR-FCFS).

    ``core_slot`` reproduces the address-space placement the program
    would have inside a mix, so alone-vs-shared IPC ratios compare the
    same trace byte for byte.
    """
    builder = SystemBuilder(seed=defaults.seed)
    trace = make_trace(
        benchmark,
        num_accesses=defaults.accesses,
        seed=defaults.seed + core_slot,
        base_address=core_slot * _CORE_ADDRESS_STRIDE,
    )
    builder.add_core(trace, request_shaping=request_plan)
    system = builder.build()
    return system.run(defaults.cycles, stop_when_done=False)


# ---------------------------------------------------------------------------
# configuration derivation
# ---------------------------------------------------------------------------


def config_from_histogram(
    histogram: InterArrivalHistogram,
    events_per_cycle: float,
    spec: BinSpec,
) -> BinConfiguration:
    """Turn a measured distribution + rate into a credit configuration.

    Credits per period = rate × period, split across bins proportional
    to the measured frequencies.  This is how the paper's experiments
    set a shaper to "the response distribution of workload X"
    (section IV-D2) and how ReqC "leverages applications' constructive
    traffic" at a fixed bandwidth budget (section IV-E2).
    """
    if events_per_cycle < 0:
        raise ConfigurationError("events_per_cycle must be non-negative")
    total = max(1, round(events_per_cycle * spec.replenish_period))
    freqs = histogram.frequencies()
    credits = [min(MAX_CREDITS_PER_BIN, round(f * total)) for f in freqs]
    if sum(credits) == 0:
        # Degenerate histogram (too few samples): put the budget into
        # the bin matching the average gap.
        gap = int(1.0 / events_per_cycle) if events_per_cycle > 0 else spec.edges[-1]
        credits[spec.bin_of(gap)] = total
    return BinConfiguration(tuple(credits))


def derive_request_config(
    benchmark: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    bandwidth_scale: float = 1.0,
    core_slot: int = 0,
) -> BinConfiguration:
    """Profile a program alone and build a matching request config.

    ``bandwidth_scale`` scales the credit budget relative to the
    measured intrinsic rate (1.0 = just enough for the intrinsic
    traffic on average).
    """
    report = run_alone(benchmark, defaults, core_slot=core_slot)
    stats = report.core(0)
    hist = stats.request_intrinsic
    rate = hist.total / max(1, report.cycles_run)
    return config_from_histogram(hist, rate * bandwidth_scale, defaults.spec)


def staircase_config(
    spec: BinSpec, events_per_cycle: float
) -> BinConfiguration:
    """A *predetermined* distribution independent of any program.

    The DESIRED staircase of Figure 11 — decreasing credit counts from
    the fastest to the slowest bin — scaled so its total credit budget
    sustains ``events_per_cycle`` on average.  Used wherever the paper
    shapes into a fixed distribution chosen without looking at the
    intrinsic traffic (the property that makes the shaped stream carry
    no program information).
    """
    if events_per_cycle <= 0:
        raise ConfigurationError("events_per_cycle must be positive")
    total = max(1, round(events_per_cycle * spec.replenish_period))
    n = spec.num_bins
    weights = [n - k for k in range(n)]
    weight_sum = sum(weights)
    # Largest-remainder apportionment: the credit total is honoured
    # exactly, so small budgets actually throttle (a per-bin floor of 1
    # would silently raise every budget to >= num_bins credits).
    exact = [w * total / weight_sum for w in weights]
    credits = [int(e) for e in exact]
    remainders = sorted(
        range(n), key=lambda k: exact[k] - credits[k], reverse=True
    )
    shortfall = total - sum(credits)
    for k in remainders[:shortfall]:
        credits[k] += 1
    credits = [min(MAX_CREDITS_PER_BIN, c) for c in credits]
    if sum(credits) == 0:
        credits[0] = 1
    return BinConfiguration(tuple(credits))


def derive_response_config(
    benchmarks: Sequence[str],
    adversary_core: int,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    rate_scale: float = 1.0,
) -> BinConfiguration:
    """Measure a mix's adversary response distribution → RespC config."""
    report = run_mix(benchmarks, defaults)
    stats = report.core(adversary_core)
    hist = stats.response_intrinsic
    rate = hist.total / max(1, report.cycles_run)
    return config_from_histogram(hist, rate * rate_scale, defaults.spec)


# ---------------------------------------------------------------------------
# Figure 12 — ReqC vs the constant rate shaper
# ---------------------------------------------------------------------------


def reqc_speedup_experiment(
    benchmark: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    headroom: float = 1.1,
) -> Dict[str, float]:
    """Program speedup of ReqC over a static rate limiter (Fig 12).

    Both shapers get the *same average bandwidth budget*, set a small
    ``headroom`` above the program's measured average request rate —
    the analogue of the paper's fixed 1 GB/s allotment, which sits
    near the suite's average demands.  The constant shaper serializes
    every burst at its fixed interval; Camouflage spreads the identical
    credit total across bins proportional to the intrinsic
    distribution, so bursts pass through at burst speed.  Programs with
    bursty traffic (mcf, omnetpp, apache) gain most; smooth or sparse
    programs are unaffected — the Figure 12 pattern.
    """
    spec = defaults.spec
    intrinsic = run_alone(benchmark, defaults).core(0).request_intrinsic
    base_report = run_alone(benchmark, defaults)
    rate = intrinsic.total / max(1, base_report.cycles_run)
    target_interval = 1.0 / max(rate * headroom, 1e-9)
    # The constant shaper's interval must be one of the bin edges.
    interval = constant_rate_interval_for(
        spec, target_interval, context=f"reqc_speedup:{benchmark}"
    )
    budget = spec.replenish_period // interval

    cs_config = constant_rate_config(spec, interval)
    cs_report = run_alone(
        benchmark, defaults,
        request_plan=RequestShapingPlan(config=cs_config, spec=spec),
    )

    camo_config = config_from_histogram(
        intrinsic, budget / spec.replenish_period, spec
    )
    camo_report = run_alone(
        benchmark, defaults,
        request_plan=RequestShapingPlan(config=camo_config, spec=spec),
    )

    cs_ipc = cs_report.core(0).ipc
    camo_ipc = camo_report.core(0).ipc
    return {
        "benchmark": benchmark,
        "interval": float(interval),
        "cs_ipc": cs_ipc,
        "camouflage_ipc": camo_ipc,
        "speedup": camo_ipc / cs_ipc if cs_ipc > 0 else float("inf"),
    }


# ---------------------------------------------------------------------------
# Figures 9 / 10 — Response Camouflage
# ---------------------------------------------------------------------------


def _mix_names(adversary: str, victim: str) -> List[str]:
    """The paper's w(ADVERSARY, victim) = (ADV, victim, victim, victim)."""
    return [adversary, victim, victim, victim]


def respc_context_experiment(
    adversary: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    contexts: Tuple[str, str] = ("astar", "mcf"),
) -> Dict[str, Dict[str, float]]:
    """Figure 10: shape each context's ADV responses to the *other*.

    Returns per-context dicts with the ADVERSARY performance slowdown
    and the overall throughput slowdown of RespC relative to no
    shaping (>1 = shaping made it slower).
    """
    ctx_a, ctx_b = contexts
    results: Dict[str, Dict[str, float]] = {}

    baseline = {
        ctx: run_mix(_mix_names(adversary, ctx), defaults)
        for ctx in contexts
    }
    target_config = {
        ctx: derive_response_config(_mix_names(adversary, ctx), 0, defaults)
        for ctx in contexts
    }

    for ctx, other in ((ctx_a, ctx_b), (ctx_b, ctx_a)):
        shaped = run_mix(
            _mix_names(adversary, ctx),
            defaults,
            response_plans={
                0: ResponseShapingPlan(
                    config=target_config[other], spec=defaults.spec
                )
            },
            scheduler="priority",
        )
        base = baseline[ctx]
        adv_base_ipc = base.core(0).ipc
        adv_shaped_ipc = shaped.core(0).ipc
        results[ctx] = {
            "adversary_slowdown": (
                adv_base_ipc / adv_shaped_ipc if adv_shaped_ipc > 0 else float("inf")
            ),
            "throughput_slowdown": (
                base.total_throughput() / shaped.total_throughput()
                if shaped.total_throughput() > 0
                else float("inf")
            ),
        }
    return results


def fig9_experiment(
    adversary: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    contexts: Tuple[str, str] = ("astar", "mcf"),
) -> Dict[str, np.ndarray]:
    """Figure 9: accumulated response-time difference across contexts.

    The adversary runs once next to each context; the difference of its
    cumulative response-time curves is returned for FR-FCFS (grows)
    and for RespC with a *fixed* target distribution (stays flat).
    """
    ctx_a, ctx_b = contexts
    base_a = run_mix(_mix_names(adversary, ctx_a), defaults)
    base_b = run_mix(_mix_names(adversary, ctx_b), defaults)
    unshaped = accumulated_response_difference(base_a.core(0), base_b.core(0))

    # One fixed target distribution for both contexts: the defining
    # property of Camouflage (the observable does not track co-runners).
    # The target is derived from the *slower* context (higher-intensity
    # co-runners) and tightened slightly, so the credit schedule — not
    # the co-runner-dependent service rate — binds in both contexts.
    target = derive_response_config(
        _mix_names(adversary, ctx_b), 0, defaults, rate_scale=0.6
    )
    plan = {
        0: ResponseShapingPlan(
            config=target, spec=defaults.spec, strict_binning=True
        )
    }
    shaped_a = run_mix(
        _mix_names(adversary, ctx_a), defaults,
        response_plans=plan, scheduler="priority",
    )
    shaped_b = run_mix(
        _mix_names(adversary, ctx_b), defaults,
        response_plans=plan, scheduler="priority",
    )
    shaped = accumulated_response_difference(shaped_a.core(0), shaped_b.core(0))
    baseline_total = float(base_a.core(0).accumulated_response_time()[-1])
    return {
        "frfcfs_difference": unshaped,
        "camouflage_difference": shaped,
        "baseline_total": baseline_total,
    }


# ---------------------------------------------------------------------------
# Figure 13 — BDC vs TP vs FS
# ---------------------------------------------------------------------------


def bdc_comparison(
    adversary: str,
    victim: str,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    tp_turn_length: int = 128,
    fs_interval: int = 20,
    tune: bool = False,
    tuner_config: Optional[TunerConfig] = None,
) -> Dict[str, float]:
    """Figure 13: program average slowdown under TP, FS+banks, and BDC.

    Slowdown of each program = IPC alone / IPC in the protected mix;
    reported per technique as the mean over the four programs.
    """
    names = _mix_names(adversary, victim)
    alone_ipcs = [
        run_alone(name, defaults, core_slot=slot).core(0).ipc
        for slot, name in enumerate(names)
    ]

    tp_report = run_mix(
        names, defaults, scheduler="tp",
        scheduler_kwargs={"turn_length": tp_turn_length},
    )
    fs_report = run_mix(
        names, defaults, scheduler="fs",
        scheduler_kwargs={"interval": fs_interval},
        bank_partitioning=True,
    )

    # BDC: request shaping on the protected victims, response shaping
    # on the adversary.  Distributions are derived from the *shared*
    # baseline run: a config pinned at a program's alone-rate would
    # force the shapers to flood the bus with fake traffic whenever
    # contention keeps the program below that rate, drowning the mix
    # (the GA would never pick such a point).  Optionally refined
    # online by the GA when ``tune``.
    baseline = run_mix(names, defaults)
    request_plans = {}
    for core in (1, 2, 3):
        hist = baseline.core(core).request_intrinsic
        rate = hist.total / max(1, baseline.cycles_run)
        request_plans[core] = RequestShapingPlan(
            config=config_from_histogram(hist, rate * 1.1, defaults.spec),
            spec=defaults.spec,
        )
    resp_hist = baseline.core(0).response_intrinsic
    resp_rate = resp_hist.total / max(1, baseline.cycles_run)
    response_plans = {
        0: ResponseShapingPlan(
            config=config_from_histogram(resp_hist, resp_rate, defaults.spec),
            spec=defaults.spec,
        )
    }
    # Long settle windows: the fake-traffic feedback loop (shaper
    # shortfall → fake load → congestion → more shortfall) takes
    # ~15k cycles to reach steady state, and a child must be scored on
    # its steady state or the GA keeps transient-flattered infeasible
    # configurations.
    effective_tuner_config = tuner_config or TunerConfig(
        epoch_cycles=6000, profile_cycles=1500, settle_cycles=14000,
        population_size=6, generations=3,
    )
    trace_repeat = 1
    if tune:
        # The CONFIG phase consumes cycles before the measured RUN
        # phase; loop the traces so no core drains mid-tuning.
        tc = effective_tuner_config
        config_cycles = tc.generations * (
            len(names) * tc.profile_cycles
            + tc.population_size * (tc.epoch_cycles + tc.settle_cycles)
        )
        trace_repeat = 1 + math.ceil(
            3.0 * (config_cycles + defaults.cycles) / max(1, defaults.cycles)
        )
    bdc_system = _build_mix(
        names, defaults,
        request_plans=request_plans,
        response_plans=response_plans,
        scheduler="priority",
        trace_repeat=trace_repeat,
    )
    if tune:
        handles = [
            ShaperHandle(
                name=f"req-core{core}",
                num_bins=defaults.spec.num_bins,
                reconfigure=bdc_system.request_paths[core].shaper.reconfigure,
            )
            for core in (1, 2, 3)
        ] + [
            ShaperHandle(
                name="resp-core0",
                num_bins=defaults.spec.num_bins,
                reconfigure=bdc_system.response_paths[0].shaper.reconfigure,
            )
        ]
        tuner = OnlineGaTuner(
            bdc_system, handles,
            config=effective_tuner_config,
            seed=defaults.seed,
            alone_ipcs=alone_ipcs,
        )
        seed_genome = tuple(
            g
            for core in (1, 2, 3)
            for g in request_plans[core].config.credits
        ) + tuple(response_plans[0].config.credits)
        # Seed the search with the derived configs plus scaled-down
        # variants: tight budgets avoid the fake-traffic saturation
        # spiral in heavy mixes and give the GA a feasible region to
        # refine from.
        seeds = [seed_genome] + [
            tuple(max(0, round(g * f)) for g in seed_genome)
            for f in (0.7, 0.5, 0.35)
        ]
        tuning = tuner.tune(seed_genomes=seeds)
        # Validation pass: the GA's per-child windows are short and
        # noisy, so re-measure the seed and the GA winner over longer
        # windows and install whichever is actually better (a runtime
        # would do exactly this before committing a configuration).
        def validate(genome) -> float:
            tuner.apply_genome(genome)
            bdc_system.run(effective_tuner_config.settle_cycles or 1,
                           stop_when_done=False)
            rates, alphas, ipcs = tuner._measure_window(
                2 * effective_tuner_config.epoch_cycles
            )
            return _avg_slowdown(ipcs, alone_ipcs)

        candidates = [seed_genome, tuning.best_genome]
        scores = [validate(g) for g in candidates]
        winner = candidates[scores.index(min(scores))]
        tuner.apply_genome(winner)
        # Settle on the winning configuration before measuring.
        bdc_system.run(effective_tuner_config.settle_cycles or 1,
                       stop_when_done=False)

    # Measure the BDC RUN phase as a window delta so a preceding GA
    # CONFIG phase (profiling + bad children) does not pollute the IPC.
    before_retired = [core.retired_instructions for core in bdc_system.cores]
    before_cycles = [core.cycles for core in bdc_system.cores]
    bdc_system.run(defaults.cycles, stop_when_done=False)
    bdc_ipcs = []
    for core_id, core in enumerate(bdc_system.cores):
        cycles = core.cycles - before_cycles[core_id]
        retired = core.retired_instructions - before_retired[core_id]
        bdc_ipcs.append(retired / cycles if cycles else 0.0)

    def avg_slowdown_report(report: SystemReport) -> float:
        return _avg_slowdown([c.ipc for c in report.cores], alone_ipcs)

    return {
        "tp_slowdown": avg_slowdown_report(tp_report),
        "fs_slowdown": avg_slowdown_report(fs_report),
        "camouflage_slowdown": _avg_slowdown(bdc_ipcs, alone_ipcs),
    }


def _avg_slowdown(shared_ipcs: Sequence[float],
                  alone_ipcs: Sequence[float]) -> float:
    slowdowns = [
        alone / shared
        for shared, alone in zip(shared_ipcs, alone_ipcs)
        if shared > 0 and alone > 0
    ]
    return float(np.mean(slowdowns)) if slowdowns else float("inf")


# ---------------------------------------------------------------------------
# Section IV-B2 — mutual-information measurements
# ---------------------------------------------------------------------------


def measure_mi_suite(
    adversary: str = "astar",
    protected: str = "bzip",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    window_cycles: int = 2048,
    replenish_period: int = 512,
) -> Dict[str, Dict[str, float]]:
    """The paper's MI table: no shaping / CS / ReqC, ± fake traffic.

    ``window_cycles`` spans several replenishment periods: Camouflage
    targets *long-term* timing information ("longer than the
    replenishment period", section IV-B4) — fake-traffic compensation
    is one period delayed, so single-period windows see a differenced
    echo that telescopes away over multi-period windows.

    For each scheme, two MI views of the protected program's request
    stream: ``paired`` (intrinsic vs shaped inter-arrival sequences,
    section IV-B2's measurement) and ``windowed`` (per-window rate MI
    including fake traffic — the bus prober's statistic).  Both the CS
    and ReqC targets are *predetermined* distributions chosen without
    reference to the program's intrinsic shape, as in the paper — a
    distribution derived from the intrinsic traffic would preserve the
    very correlation the shaper exists to destroy.  Miller–Madow bias
    correction is applied: the plug-in estimator's finite-sample bias
    would otherwise dominate the near-zero leakage values.
    """
    spec = BinSpec(edges=defaults.spec.edges, replenish_period=replenish_period)
    names = [adversary, protected]

    def times(hist: InterArrivalHistogram) -> List[int]:
        out, t = [], 0
        for g in hist.gaps:
            t += g
            out.append(t)
        return out

    def mi_of(report: SystemReport) -> Dict[str, float]:
        stats = report.core(1)
        intrinsic = stats.request_intrinsic
        shaped = stats.request_shaped
        paired = interarrival_mi(
            intrinsic.gaps, shaped.gaps, spec, bias_correction=True
        )
        windowed = windowed_rate_mi(
            times(intrinsic), times(shaped), window_cycles,
            report.cycles_run, bias_correction=True,
        )
        return {"paired": paired, "windowed": windowed}

    base = run_mix(names, defaults)
    base_stats = base.core(1)
    # The anchor must use the same estimator configuration as every
    # shaped row (bias correction included), or the table's rows are
    # not mutually comparable.
    self_mi = interarrival_mi(
        base_stats.request_intrinsic.gaps,
        base_stats.request_intrinsic.gaps,
        spec,
        bias_correction=True,
    )
    base_times = times(base_stats.request_intrinsic)

    rate = base_stats.request_intrinsic.total / max(1, base.cycles_run)
    camo_config = staircase_config(spec, rate * 1.2)
    # Constant-rate interval: the largest edge sustaining 1.2x the rate.
    cs_interval = constant_rate_interval_for(
        spec, 1.0 / max(rate * 1.2, 1e-9),
        context=f"measure_mi:{protected}",
    )
    cs_config = constant_rate_config(spec, cs_interval)

    results: Dict[str, Dict[str, float]] = {
        "no_shaping": {
            "paired": self_mi,
            "windowed": windowed_rate_mi(
                base_times, base_times, window_cycles, base.cycles_run,
                bias_correction=True,
            ),
        }
    }
    for label, config, fake in (
        ("cs_no_fake", cs_config, False),
        ("reqc_no_fake", camo_config, False),
        ("cs_fake", cs_config, True),
        ("reqc_fake", camo_config, True),
    ):
        report = run_mix(
            names, defaults,
            request_plans={
                1: RequestShapingPlan(config=config, spec=spec, generate_fake=fake)
            },
        )
        results[label] = mi_of(report)
    return results


# ---------------------------------------------------------------------------
# Figures 14 / 15 — covert channel
# ---------------------------------------------------------------------------


def covert_channel_experiment(
    key: int,
    bits: int = 32,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    pulse_cycles: int = 3000,
    shaped: bool = True,
    shaping_config: Optional[BinConfiguration] = None,
    replenish_period: int = 512,
) -> Dict:
    """Run the Algorithm-1 sender and attack the bus trace.

    Returns the bus-event timeline, the per-pulse window counts, the
    decoded bits and the bit error rate — for the unshaped channel
    (``shaped=False``: perfect recovery) or under ReqC
    (``shaped=True``: recovery collapses).

    ``replenish_period`` defaults to a short window: fake-traffic
    compensation is one period delayed (Figure 7), so a window much
    shorter than PULSE removes the transition echo an attacker could
    otherwise correlate on — the paper's own mitigation ("short term
    information leakage can be mitigated by reducing the size of the
    replenishment window", section IV-B4).
    """
    key_bits = key_to_bits(key, bits)
    covert_config = CovertChannelConfig(pulse_cycles=pulse_cycles)
    trace = covert_sender_trace(key_bits, covert_config)

    builder = SystemBuilder(seed=defaults.seed)
    spec = BinSpec(
        edges=defaults.spec.edges, replenish_period=replenish_period
    )
    if shaped:
        if shaping_config is None:
            # A mid-rate staircase: most credits at fast bins, a tail of
            # slow ones — the DESIRED shape of Figure 11, scaled so the
            # total rate sits between the sender's ON and OFF rates.
            staircase = tuple(
                max(1, (spec.num_bins - k) * 4) for k in range(spec.num_bins)
            )
            shaping_config = BinConfiguration(staircase)
        builder.add_core(
            trace,
            request_shaping=RequestShapingPlan(config=shaping_config, spec=spec),
        )
    else:
        builder.add_core(trace)
    system = builder.build()
    total_cycles = pulse_cycles * bits + 4 * pulse_cycles
    system.run(total_cycles, stop_when_done=False)

    bus_events = [
        grant_cycle
        for grant_cycle, port, _txn in system.request_link.grant_trace
        if port == 0
    ]
    decoded = decode_covert_key(bus_events, pulse_cycles, bits)
    counts = np.zeros(bits, dtype=np.int64)
    for t in bus_events:
        index = t // pulse_cycles
        if index < bits:
            counts[index] += 1
    return {
        "key_bits": key_bits,
        "bus_events": bus_events,
        "window_counts": counts,
        "decoded_bits": decoded,
        "bit_error_rate": bit_error_rate(decoded, key_bits),
    }


def covert_interference_experiment(
    key: int,
    bits: int = 16,
    defaults: ExperimentDefaults = ExperimentDefaults(),
    pulse_cycles: int = 3000,
    defense: Optional[str] = None,
    replenish_period: int = 512,
) -> Dict:
    """The two-VM covert channel (section II-A's receiver variant).

    Unlike Figures 14/15 (an observer on the bus), here the *receiver*
    is a co-scheduled VM that issues steady probe requests and decodes
    the key from its own per-pulse mean response latencies — the
    channel rides on memory interference, not on wire visibility.

    ``defense`` ∈ {None, "reqc", "respc"}: shape the sender's requests
    (closing the channel at its source) or the receiver's responses
    (denying it the latency measurement).
    """
    from repro.security.prober import prober_trace
    from repro.workloads.covert import (
        CovertChannelConfig,
        covert_sender_trace,
        key_to_bits,
    )

    if defense not in (None, "reqc", "respc"):
        raise ConfigurationError(f"unknown defense {defense!r}")
    key_bits = key_to_bits(key, bits)
    sender_trace = covert_sender_trace(
        key_bits, CovertChannelConfig(pulse_cycles=pulse_cycles)
    )
    total_cycles = pulse_cycles * bits + 4 * pulse_cycles
    # The receiver probes steadily for the whole transmission.
    receiver_trace = prober_trace(
        max(64, total_cycles // 25), gap_insts=100
    )

    spec = BinSpec(edges=defaults.spec.edges,
                   replenish_period=replenish_period)
    builder = SystemBuilder(seed=defaults.seed)
    receiver_response_plan = None
    sender_request_plan = None
    if defense == "reqc":
        staircase = tuple(
            max(1, (spec.num_bins - k) * 4) for k in range(spec.num_bins)
        )
        sender_request_plan = RequestShapingPlan(
            config=BinConfiguration(staircase), spec=spec
        )
    elif defense == "respc":
        # A constant response distribution for the receiver: its
        # latency probe then reads back its own shaping, not the
        # sender's interference.
        receiver_response_plan = ResponseShapingPlan(
            config=constant_rate_config(spec, 128), spec=spec,
            enable_warning=False, strict_binning=True,
        )
    builder.add_core(receiver_trace,
                     response_shaping=receiver_response_plan)
    builder.add_core(sender_trace, request_shaping=sender_request_plan)
    system = builder.build()
    system.run(total_cycles, stop_when_done=False)
    report = system.report()

    # Decode from the receiver's per-pulse mean latency.
    receiver = report.core(0)
    window_sums = np.zeros(bits)
    window_counts = np.zeros(bits)
    for delivered_cycle, latency in receiver.response_times:
        index = delivered_cycle // pulse_cycles
        if index < bits:
            window_sums[index] += latency
            window_counts[index] += 1
    means = np.divide(
        window_sums, np.maximum(window_counts, 1),
        out=np.zeros(bits), where=window_counts > 0,
    )
    threshold = (means.min() + means.max()) / 2.0
    decoded = [1 if m > threshold else 0 for m in means]
    key_array = np.array(key_bits, dtype=float)
    correlation = 0.0
    if means.std() > 0 and key_array.std() > 0:
        correlation = float(np.corrcoef(key_array, means)[0, 1])
    return {
        "key_bits": key_bits,
        "window_mean_latency": means,
        "decoded_bits": decoded,
        "bit_error_rate": bit_error_rate(decoded, key_bits),
        # Point-biserial correlation between key bits and the
        # receiver's per-pulse latency: the honest strength measure of
        # this channel, which in this substrate is much weaker than
        # the bus channel (the open-loop trace sender drifts out of
        # pulse alignment under contention — a real sender would
        # re-synchronize from the clock).
        "latency_key_correlation": correlation,
        "receiver_probes": len(receiver.response_times),
    }


# ---------------------------------------------------------------------------
# Figure 2 — the security/performance trade-off space
# ---------------------------------------------------------------------------


def _resolve_executor(executor, jobs: int, cache_dir: Optional[str],
                      seed: int):
    """The executor an experiment fans out through.

    An explicitly passed ``executor`` wins (callers can share one
    cache/seed counter across experiments); otherwise a fresh
    :class:`~repro.parallel.executor.SweepExecutor` is built from
    ``jobs``/``cache_dir``.  Imported lazily — the parallel layer
    depends on this module's task helpers.
    """
    if executor is not None:
        return executor
    from repro.parallel import SweepExecutor

    return SweepExecutor(jobs=jobs, seed=seed, cache=cache_dir)


def tradeoff_sweep(
    benchmark: str = "apache",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    scales: Sequence[float] = (0.6, 0.8, 1.0, 1.4, 2.0),
    window_cycles: int = 2048,
    replenish_period: int = 512,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> List[Dict[str, float]]:
    """Sweep Camouflage configs between CS and no shaping (Fig 2).

    Each point reports the program's IPC and the windowed MI (bias
    corrected, multi-period windows) between its intrinsic request
    stream and the observed (shaped + fake) bus stream.  The sweep uses
    *predetermined* staircase distributions at growing bandwidth
    scales: tight budgets sit near the CS corner (secure, slow), loose
    budgets approach no-shaping performance while leaking more — the
    trade-off space Figure 2 sketches.

    Every point (the no-shaping anchor included) estimates MI with the
    same ``bias_correction=True`` configuration — mixing estimators
    across one curve was the ISSUE-5 comparability bug.  The shaped
    points are independent simulations and fan out through
    ``jobs``/``cache_dir``/``executor`` (see docs/parallel.md); the
    returned points additionally carry each run's ``digest``.
    """
    from repro.parallel.tasks import (
        _event_times,
        alone_base_task,
        make_run_payload,
        tradeoff_point_task,
    )

    spec = BinSpec(edges=defaults.spec.edges, replenish_period=replenish_period)
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)

    [base] = runner.map(
        alone_base_task, [make_run_payload(benchmark, defaults)],
        kind="alone-base", labels=[f"{benchmark}:base"],
    )
    base_rate = len(base["gaps"]) / max(1, base["cycles_run"])

    # CS anchor: constant interval near the program's average rate.
    cs_interval = constant_rate_interval_for(
        spec, 1.0 / max(base_rate, 1e-9), context=f"tradeoff:{benchmark}"
    )

    def point_payload(label: str, config: BinConfiguration) -> Dict:
        payload = make_run_payload(benchmark, defaults, spec=spec)
        payload["credits"] = list(config.credits)
        payload["window_cycles"] = window_cycles
        payload["label"] = label
        payload["detect_seed"] = defaults.seed
        return payload

    shaped = [point_payload("cs", constant_rate_config(spec, cs_interval))]
    for scale in scales:
        shaped.append(
            point_payload(
                f"camo-x{scale}", staircase_config(spec, base_rate * scale)
            )
        )
    shaped_points = runner.map(
        tradeoff_point_task, shaped, kind="tradeoff-point",
        labels=[p["label"] for p in shaped],
    )

    base_times = _event_times(base["gaps"])
    anchor_mi = windowed_rate_mi(
        base_times, base_times, window_cycles, base["cycles_run"],
        bias_correction=True,
    )
    # The anchor's zoo scores use the same estimator configuration as
    # every shaped point (the comparability rule again): the observed
    # stream is the intrinsic one, tested against the reference
    # staircase at the program's own rate — the distribution the
    # shaped points are moving toward.
    from repro.security.detect import detect_report

    anchor_zoo = detect_report(
        label="no-shaping",
        intrinsic_gaps=base["gaps"],
        observed_gaps=base["gaps"],
        spec=spec,
        target_frequencies=staircase_config(spec, base_rate).normalized(),
        seed=defaults.seed,
        window_cycles=window_cycles,
        mi_bits=anchor_mi,
    )
    no_shaping = {
        "label": "no-shaping",
        "ipc": base["ipc"],
        "mi": anchor_mi,
        "auc": anchor_zoo.auc,
        "auc_logistic": anchor_zoo.auc_logistic,
        "auc_stumps": anchor_zoo.auc_stumps,
        "xcorr": anchor_zoo.xcorr,
        "spectral": anchor_zoo.spectral,
        "digest": base["digest"],
    }
    return [shaped_points[0], no_shaping] + shaped_points[1:]


def detect_suite(
    benchmark: str = "apache",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    scales: Sequence[float] = (0.8, 1.2),
    window_cycles: int = 2048,
    replenish_period: int = 512,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[str, object]:
    """The attacker zoo over a canned config ladder (``repro detect``).

    Scores three rungs against the detectability lab
    (:mod:`repro.security.detect`): the unshaped stream (the
    covert-channel worst case — every attacker should win), the CS
    anchor, and Camouflage staircases at each bandwidth ``scale``.
    Every rung's classifiers test the observed stream against that
    rung's *own* target distribution (the unshaped rung uses the
    reference staircase at the program's rate — the distribution
    shaping would have imposed).

    The returned document — rows of label / ipc / mi / auc / xcorr /
    spectral plus per-rung report digests and one suite digest — is a
    pure function of ``(benchmark, defaults, scales, window)``:
    byte-identical across repeated runs and across ``jobs`` values.
    """
    from repro.common.util import canonical_json_digest
    from repro.parallel.tasks import (
        alone_base_task,
        detect_point_task,
        make_run_payload,
    )

    spec = BinSpec(
        edges=defaults.spec.edges, replenish_period=replenish_period
    )
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    [base] = runner.map(
        alone_base_task, [make_run_payload(benchmark, defaults)],
        kind="alone-base", labels=[f"{benchmark}:base"],
    )
    base_rate = len(base["gaps"]) / max(1, base["cycles_run"])
    cs_interval = constant_rate_interval_for(
        spec, 1.0 / max(base_rate, 1e-9), context=f"detect:{benchmark}"
    )
    reference = staircase_config(spec, base_rate)

    def payload(label: str, config: Optional[BinConfiguration],
                target: BinConfiguration) -> Dict:
        doc = make_run_payload(benchmark, defaults, spec=spec)
        doc["label"] = label
        doc["credits"] = None if config is None else list(config.credits)
        doc["target_credits"] = list(target.credits)
        doc["window_cycles"] = window_cycles
        doc["detect_seed"] = defaults.seed
        return doc

    payloads = [
        payload("no-shaping", None, reference),
        payload("cs", constant_rate_config(spec, cs_interval),
                constant_rate_config(spec, cs_interval)),
    ]
    for scale in scales:
        config = staircase_config(spec, base_rate * scale)
        payloads.append(payload(f"camo-x{scale}", config, config))
    rows = runner.map(
        detect_point_task, payloads, kind="detect-point",
        labels=[p["label"] for p in payloads],
    )
    doc: Dict[str, object] = {
        "benchmark": benchmark,
        "window_cycles": window_cycles,
        "seed": defaults.seed,
        "rows": rows,
    }
    doc["digest"] = canonical_json_digest(doc)
    return doc


def scalability_experiment(
    benchmark: str = "gcc",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    core_counts: Sequence[int] = (2, 4, 8),
    tp_turn_length: int = 128,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[int, Dict[str, float]]:
    """Section II-B's scalability claim: TP vs Camouflage vs core count.

    Temporal partitioning gives each of N mutually distrusting domains
    1/N of the schedule ("if one hundred processes ... each of them
    only receives 1/100 of the memory bandwidth"), so its slowdown
    grows with N.  Camouflage shapes each core independently; a core's
    slowdown depends on the *traffic*, not on how many security
    domains exist.

    Returns per-core-count average slowdowns for FR-FCFS (contention
    only), TP, and per-core ReqC Camouflage.  The per-(core-count,
    baseline) mixes are independent simulations and fan out through
    ``jobs``/``cache_dir``/``executor`` (see docs/parallel.md).
    """
    from repro.parallel.tasks import (
        alone_base_task,
        make_run_payload,
        mix_slowdown_task,
    )

    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    [base] = runner.map(
        alone_base_task, [make_run_payload(benchmark, defaults)],
        kind="alone-base", labels=[f"{benchmark}:base"],
    )
    alone_ipc = base["ipc"]
    base_rate = len(base["gaps"]) / max(1, base["cycles_run"])
    camo_credits = list(
        staircase_config(defaults.spec, base_rate * 1.15).credits
    )

    def mix_payload(n: int, **kwargs) -> Dict:
        payload = make_run_payload(benchmark, defaults)
        del payload["benchmark"]
        payload["names"] = [benchmark] * n
        payload["alone_ipcs"] = [alone_ipc] * n
        payload.update(kwargs)
        return payload

    payloads, labels = [], []
    for n in core_counts:
        payloads.append(mix_payload(n))
        labels.append(f"frfcfs:n{n}")
        payloads.append(
            mix_payload(
                n, scheduler="tp",
                scheduler_kwargs={"turn_length": tp_turn_length},
            )
        )
        labels.append(f"tp:n{n}")
        payloads.append(
            mix_payload(
                n,
                request_plans={
                    str(core): {"credits": camo_credits}
                    for core in range(n)
                },
                # Zoo-score core 0's shaped stream in every Camouflage
                # mix: detectability must stay flat as domains scale,
                # or per-core shaping only looks scalable.
                detect={"core": 0, "seed": defaults.seed},
            )
        )
        labels.append(f"camo:n{n}")

    rows = runner.map(
        mix_slowdown_task, payloads, kind="mix-slowdown", labels=labels
    )
    results: Dict[int, Dict[str, float]] = {}
    for position, n in enumerate(core_counts):
        frfcfs, tp, camo = rows[3 * position: 3 * position + 3]
        results[n] = {
            "frfcfs": frfcfs["slowdown"],
            "tp": tp["slowdown"],
            "camouflage": camo["slowdown"],
            "camouflage_mi": camo["mi"],
            "camouflage_auc": camo["auc"],
            "camouflage_xcorr": camo["xcorr"],
        }
    return results


def headline_speedups(
    defaults: ExperimentDefaults = ExperimentDefaults(),
    benchmarks: Optional[Sequence[str]] = None,
    adversaries: Sequence[str] = ("astar", "gcc", "apache"),
) -> Dict[str, float]:
    """The abstract's headline: Camouflage vs CS / TP / FS throughput.

    Aggregates the Fig 12 sweep (vs CS) and a Fig 13 sweep over
    ``adversaries`` × {astar, mcf} victim contexts (vs TP / FS) into
    geometric-mean factors.
    """
    from repro.workloads.spec import BENCHMARK_NAMES

    benchmarks = list(benchmarks or BENCHMARK_NAMES)
    vs_cs = geometric_mean(
        [reqc_speedup_experiment(b, defaults)["speedup"] for b in benchmarks]
    )
    ratios_tp, ratios_fs = [], []
    for victim in ("astar", "mcf"):
        for adversary in adversaries:
            result = bdc_comparison(adversary, victim, defaults)
            ratios_tp.append(
                result["tp_slowdown"] / result["camouflage_slowdown"]
            )
            ratios_fs.append(
                result["fs_slowdown"] / result["camouflage_slowdown"]
            )
    return {
        "vs_constant_shaper": vs_cs,
        "vs_temporal_partitioning": geometric_mean(ratios_tp),
        "vs_fixed_service": geometric_mean(ratios_fs),
    }

"""Experiment drivers and result formatting.

Each function in :mod:`repro.analysis.experiments` regenerates the data
behind one of the paper's tables/figures (see DESIGN.md section 3 for
the index); :mod:`repro.analysis.format` renders the same rows/series
the paper reports as text tables and ASCII sparklines so benchmark
output is self-describing.
"""

from repro.analysis.calibration import (
    calibrate_benchmark,
    calibrate_suite,
    check_substitution_claims,
)
from repro.analysis.experiments import (
    ExperimentDefaults,
    bdc_comparison,
    config_from_histogram,
    covert_channel_experiment,
    covert_interference_experiment,
    derive_request_config,
    measure_mi_suite,
    respc_context_experiment,
    reqc_speedup_experiment,
    run_alone,
    run_mix,
    tradeoff_sweep,
)
from repro.analysis.format import ascii_series, format_table

__all__ = [
    "ExperimentDefaults",
    "ascii_series",
    "bdc_comparison",
    "calibrate_benchmark",
    "calibrate_suite",
    "check_substitution_claims",
    "config_from_histogram",
    "covert_channel_experiment",
    "covert_interference_experiment",
    "derive_request_config",
    "format_table",
    "measure_mi_suite",
    "respc_context_experiment",
    "reqc_speedup_experiment",
    "run_alone",
    "run_mix",
    "tradeoff_sweep",
]

"""Assemble archived benchmark outputs into one markdown report.

The benchmark harness archives every table under
``benchmarks/results/<name>.txt``; this module stitches them into a
single human-readable report so a fresh run can be summarized with::

    python -m repro.analysis.report [results_dir] [-o report.md]

The per-figure index (which file belongs to which paper artefact)
mirrors DESIGN.md section 3.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

#: Display order and titles for known result files.
_SECTIONS = [
    ("table1_techniques", "Table I — technique capability matrix"),
    ("fig2_tradeoff", "Figure 2 — security/performance trade-off space"),
    ("mi_measurement", "Section IV-B2 — mutual-information measurements"),
    ("fig9_return_time", "Figure 9 — accumulated response-time difference"),
    ("fig10_respc", "Figure 10 — Response Camouflage performance"),
    ("fig11_distributions", "Figure 11 — distribution-shaping accuracy"),
    ("fig12_reqc_speedup", "Figure 12 — ReqC vs constant-rate shaper"),
    ("fig13_bdc_astar", "Figure 13a — BDC vs TP vs FS (astar victims)"),
    ("fig13_bdc_mcf", "Figure 13b — BDC vs TP vs FS (mcf victims)"),
    ("fig14_15_covert", "Figures 14/15 — covert channel"),
    ("ga_convergence", "Figure 8 — online GA convergence"),
    ("headline_speedups", "Headline — Camouflage vs CS / TP / FS"),
    ("ablation_replenish_window", "Ablation — replenishment window size"),
    ("ablation_binning_modes", "Ablation — release-rule variants"),
    ("ablation_epoch_cs", "Ablation — epoch-rate CS vs Camouflage"),
    ("ablation_baseline_params", "Ablation — baseline parameter sweeps"),
    ("scalability_domains", "Scalability — TP vs domain count"),
    ("mesh_position", "Mesh NoC — position-dependent leakage"),
    ("detect_zoo", "Attacker zoo — detectability lab (MI / AUC / XCorr)"),
]


def generate_report(results_dir: Path) -> str:
    """Render all present result files as one markdown document."""
    lines: List[str] = [
        "# Camouflage reproduction — benchmark report",
        "",
        f"Assembled from `{results_dir}`.  Regenerate any entry with",
        "`pytest benchmarks/bench_<name>.py --benchmark-only`.",
        "",
    ]
    known = {name for name, _ in _SECTIONS}
    missing: List[str] = []
    for name, title in _SECTIONS:
        path = results_dir / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in known
    )
    for name in extras:
        lines.append(f"## (unindexed) {name}")
        lines.append("")
        lines.append("```")
        lines.append((results_dir / f"{name}.txt").read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append("## Not yet run")
        lines.append("")
        for name in missing:
            lines.append(f"* `{name}` — run `benchmarks/bench_{name}.py`")
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.report",
        description="assemble benchmark results into a markdown report",
    )
    default_dir = Path(__file__).resolve().parents[3] / (
        "benchmarks/results"
    )
    parser.add_argument("results_dir", nargs="?", type=Path,
                        default=default_dir)
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="write to a file instead of stdout")
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"no results directory at {args.results_dir}",
              file=sys.stderr)
        return 1
    report = generate_report(args.results_dir)
    if args.output:
        args.output.write_text(report)
    else:
        print(report, file=sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Parameter sweeps for the baselines and the substrate.

The Figure 13 comparison depends on configuration choices the paper
does not pin down (TP turn length, FS slot interval).  These sweeps
make the sensitivity explicit, so the comparison's fairness can be
audited: the benchmark harness runs them and EXPERIMENTS.md reports
where each baseline was operated relative to its own optimum.

Every sweep's points are independent simulations, so each function
accepts ``jobs``/``cache_dir``/``executor`` and fans out through
:class:`repro.parallel.SweepExecutor` (docs/parallel.md); results are
merged in submission order and are bit-identical for every ``jobs``
value.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.experiments import (
    ExperimentDefaults,
    _mix_names,
    _resolve_executor,
)
from repro.parallel.tasks import (
    alone_ipc_task,
    make_run_payload,
    mesh_position_task,
    mix_slowdown_task,
    noc_latency_task,
)


def _alone_ipcs(names: Sequence[str], defaults: ExperimentDefaults, runner):
    payloads = []
    for slot, name in enumerate(names):
        payload = make_run_payload(name, defaults)
        payload["core_slot"] = slot
        payloads.append(payload)
    rows = runner.map(
        alone_ipc_task, payloads, kind="alone-ipc",
        labels=[f"{name}:slot{slot}" for slot, name in enumerate(names)],
    )
    return [row["ipc"] for row in rows]


def _mix_payload(names: Sequence[str], defaults: ExperimentDefaults,
                 alone, **kwargs) -> Dict:
    payload = make_run_payload(names[0], defaults)
    del payload["benchmark"]
    payload["names"] = list(names)
    payload["alone_ipcs"] = list(alone)
    payload.update(kwargs)
    return payload


def tp_turn_length_sweep(
    adversary: str = "gcc",
    victim: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    turn_lengths: Sequence[int] = (64, 96, 128, 192, 256, 384),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[int, float]:
    """Average slowdown of TP across turn lengths.

    Short turns waste a larger dead-time fraction; long turns make
    non-owners wait longer.  The sweep exposes the U-shape and shows
    where the Figure 13 default (128) sits.
    """
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    names = _mix_names(adversary, victim)
    alone = _alone_ipcs(names, defaults, runner)
    rows = runner.map(
        mix_slowdown_task,
        [
            _mix_payload(
                names, defaults, alone, scheduler="tp",
                scheduler_kwargs={"turn_length": turn},
            )
            for turn in turn_lengths
        ],
        kind="mix-slowdown",
        labels=[f"tp:turn{turn}" for turn in turn_lengths],
    )
    return {
        turn: row["slowdown"] for turn, row in zip(turn_lengths, rows)
    }


def fs_interval_sweep(
    adversary: str = "gcc",
    victim: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    intervals: Sequence[int] = (12, 16, 20, 24, 32, 48),
    bank_partitioning: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[int, Dict[str, float]]:
    """FS (+banks) across slot intervals: slowdown AND leak proxy.

    Tight intervals perform better but *slip* — services land late
    because the aggregate constant injection exceeds what the channel
    sustains, making observable service load-dependent (a leak; see
    :meth:`FixedServiceScheduler.slip_fraction`).  The Figure 13
    comparison must use the best interval among the leak-free ones.
    """
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    names = _mix_names(adversary, victim)
    alone = _alone_ipcs(names, defaults, runner)
    rows = runner.map(
        mix_slowdown_task,
        [
            _mix_payload(
                names, defaults, alone, scheduler="fs",
                scheduler_kwargs={"interval": interval},
                bank_partitioning=bank_partitioning,
            )
            for interval in intervals
        ],
        kind="mix-slowdown",
        labels=[f"fs:interval{interval}" for interval in intervals],
    )
    return {
        interval: {
            "slowdown": row["slowdown"],
            "slip_fraction": row["slip_fraction"],
        }
        for interval, row in zip(intervals, rows)
    }


def noc_latency_sweep(
    benchmark: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    latencies: Sequence[int] = (1, 2, 4, 8, 16),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[int, float]:
    """Single-core mean memory latency vs NoC hop latency (sanity
    sweep for the substrate: end-to-end latency must grow by exactly
    2x the added hop latency — request plus response traversal)."""
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    payloads = []
    for latency in latencies:
        payload = make_run_payload(benchmark, defaults)
        payload["noc_latency"] = latency
        payloads.append(payload)
    rows = runner.map(
        noc_latency_task, payloads, kind="noc-latency",
        labels=[f"noc:hop{latency}" for latency in latencies],
    )
    return {
        latency: row["mean_latency"]
        for latency, row in zip(latencies, rows)
    }


def mesh_position_leakage(
    defaults: ExperimentDefaults = ExperimentDefaults(),
    victims: Sequence[str] = ("mcf", "astar"),
    shaped: bool = False,
    num_cores: int = 8,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor=None,
) -> Dict[int, float]:
    """Per-position side-channel strength on the mesh NoC.

    The secret is *which program* runs at position *p* (mcf vs astar —
    the paper's canonical intensity contrast).  For each position the
    adversary (core 0, a gcc-like program) times its own memory
    latencies in both worlds; the returned value is the
    distinguishability between them.  On a mesh, positions whose
    routes to the memory controller share more links with the
    adversary's leak more; with the victim's traffic shaped to one
    predetermined distribution the two worlds look alike at *every*
    position.
    """
    runner = _resolve_executor(executor, jobs, cache_dir, defaults.seed)
    positions = list(range(1, num_cores))
    payloads = []
    for position in positions:
        payload = make_run_payload("gcc", defaults)
        del payload["benchmark"]
        payload.update(
            victims=list(victims), position=position,
            shaped=bool(shaped), num_cores=int(num_cores),
        )
        payloads.append(payload)
    rows = runner.map(
        mesh_position_task, payloads, kind="mesh-position",
        labels=[f"mesh:pos{position}" for position in positions],
    )
    return {row["position"]: row["distinguishability"] for row in rows}

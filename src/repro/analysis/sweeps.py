"""Parameter sweeps for the baselines and the substrate.

The Figure 13 comparison depends on configuration choices the paper
does not pin down (TP turn length, FS slot interval).  These sweeps
make the sensitivity explicit, so the comparison's fairness can be
audited: the benchmark harness runs them and EXPERIMENTS.md reports
where each baseline was operated relative to its own optimum.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.experiments import (
    ExperimentDefaults,
    _avg_slowdown,
    _mix_names,
    run_alone,
    run_mix,
)


def _alone_ipcs(names: Sequence[str], defaults: ExperimentDefaults):
    return [
        run_alone(name, defaults, core_slot=slot).core(0).ipc
        for slot, name in enumerate(names)
    ]


def tp_turn_length_sweep(
    adversary: str = "gcc",
    victim: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    turn_lengths: Sequence[int] = (64, 96, 128, 192, 256, 384),
) -> Dict[int, float]:
    """Average slowdown of TP across turn lengths.

    Short turns waste a larger dead-time fraction; long turns make
    non-owners wait longer.  The sweep exposes the U-shape and shows
    where the Figure 13 default (128) sits.
    """
    names = _mix_names(adversary, victim)
    alone = _alone_ipcs(names, defaults)
    out: Dict[int, float] = {}
    for turn in turn_lengths:
        report = run_mix(
            names, defaults, scheduler="tp",
            scheduler_kwargs={"turn_length": turn},
        )
        out[turn] = _avg_slowdown([c.ipc for c in report.cores], alone)
    return out


def fs_interval_sweep(
    adversary: str = "gcc",
    victim: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    intervals: Sequence[int] = (12, 16, 20, 24, 32, 48),
    bank_partitioning: bool = True,
) -> Dict[int, Dict[str, float]]:
    """FS (+banks) across slot intervals: slowdown AND leak proxy.

    Tight intervals perform better but *slip* — services land late
    because the aggregate constant injection exceeds what the channel
    sustains, making observable service load-dependent (a leak; see
    :meth:`FixedServiceScheduler.slip_fraction`).  The Figure 13
    comparison must use the best interval among the leak-free ones.
    """
    from repro.analysis.experiments import _build_mix

    names = _mix_names(adversary, victim)
    alone = _alone_ipcs(names, defaults)
    out: Dict[int, Dict[str, float]] = {}
    for interval in intervals:
        system = _build_mix(
            names, defaults, scheduler="fs",
            scheduler_kwargs={"interval": interval},
            bank_partitioning=bank_partitioning,
        )
        report = system.run(defaults.cycles, stop_when_done=False)
        out[interval] = {
            "slowdown": _avg_slowdown([c.ipc for c in report.cores], alone),
            "slip_fraction": system.scheduler.slip_fraction(),
        }
    return out


def noc_latency_sweep(
    benchmark: str = "mcf",
    defaults: ExperimentDefaults = ExperimentDefaults(),
    latencies: Sequence[int] = (1, 2, 4, 8, 16),
) -> Dict[int, float]:
    """Single-core mean memory latency vs NoC hop latency (sanity
    sweep for the substrate: end-to-end latency must grow by exactly
    2x the added hop latency — request plus response traversal)."""
    from repro.sim.system import SystemBuilder
    from repro.workloads.spec import make_trace

    out: Dict[int, float] = {}
    for latency in latencies:
        builder = SystemBuilder(seed=defaults.seed)
        builder.with_noc(latency=latency)
        builder.add_core(make_trace(benchmark, defaults.accesses,
                                    seed=defaults.seed))
        report = builder.build().run(defaults.cycles, stop_when_done=False)
        out[latency] = report.core(0).mean_memory_latency()
    return out


def mesh_position_leakage(
    defaults: ExperimentDefaults = ExperimentDefaults(),
    victims: Sequence[str] = ("mcf", "astar"),
    shaped: bool = False,
    num_cores: int = 8,
) -> Dict[int, float]:
    """Per-position side-channel strength on the mesh NoC.

    The secret is *which program* runs at position *p* (mcf vs astar —
    the paper's canonical intensity contrast).  For each position the
    adversary (core 0, a gcc-like program) times its own memory
    latencies in both worlds; the returned value is the
    distinguishability between them.  On a mesh, positions whose
    routes to the memory controller share more links with the
    adversary's leak more; with the victim's traffic shaped to one
    predetermined distribution the two worlds look alike at *every*
    position.
    """
    from repro.analysis.experiments import staircase_config
    from repro.core.bins import BinSpec
    from repro.security.attacks import corunner_distinguishability
    from repro.sim.system import RequestShapingPlan, SystemBuilder
    from repro.workloads.spec import make_trace

    spec = BinSpec(replenish_period=512)
    out: Dict[int, float] = {}
    adversary_position = 0  # fixed; the victim's position varies

    def run(victim_name: str, position: int):
        builder = SystemBuilder(seed=defaults.seed).with_noc(topology="mesh")
        for core in range(num_cores):
            if core == adversary_position:
                builder.add_core(
                    make_trace("gcc", defaults.accesses, seed=1)
                )
            elif core == position:
                plan = None
                if shaped:
                    # One predetermined distribution for either program
                    # — what makes the worlds indistinguishable.
                    plan = RequestShapingPlan(
                        config=staircase_config(spec, 1 / 16), spec=spec
                    )
                builder.add_core(
                    make_trace(victim_name, defaults.accesses,
                               seed=2 + core, base_address=core << 33),
                    request_shaping=plan,
                )
            else:
                builder.add_core(
                    make_trace("sjeng", defaults.accesses // 4,
                               seed=50 + core, base_address=core << 33)
                )
        system = builder.build()
        report = system.run(defaults.cycles, stop_when_done=False)
        return report.core(adversary_position).memory_latencies

    for position in range(1, num_cores):
        world_a = run(victims[0], position)
        world_b = run(victims[1], position)
        out[position] = corunner_distinguishability(world_a, world_b)
    return out

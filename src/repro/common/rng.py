"""Deterministic random number generation.

Every stochastic component in the simulator (workload generators, fake
traffic address selection, genetic-algorithm operators) draws from a
:class:`DeterministicRng` seeded from the experiment configuration.
This keeps whole-system runs bit-for-bit reproducible, which the test
suite and the benchmark harness both rely on.

The implementation wraps :class:`random.Random` (a Mersenne twister)
rather than ``numpy`` so that single-draw call sites stay cheap and the
stream is stable across numpy versions.  Components that need bulk
vectorised draws can call :meth:`DeterministicRng.numpy_generator`.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


class DeterministicRng:
    """A seeded random source with convenience helpers.

    Parameters
    ----------
    seed:
        Any integer.  Two instances built with the same seed produce
        identical streams.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._random = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The seed this generator was constructed with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent child generator.

        Forking lets each subsystem own a private stream so that adding
        a draw in one component does not perturb any other component's
        sequence.  The child seed mixes the parent seed with ``salt``
        using splitmix64-style constants.
        """
        mixed = (self._seed * 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9) & (
            (1 << 64) - 1
        )
        return DeterministicRng(mixed)

    def substream(self, task_id: int) -> "DeterministicRng":
        """Derive the worker stream for parallel task ``task_id``.

        Unlike :meth:`fork` (a fast linear mix for in-process
        subsystems), substream derivation is domain-separated through
        SHA-256 over ``(tag, seed, task_id)``: the child seed cannot
        collide with the parent seed, with any :meth:`fork` child, or
        with another task's substream short of a hash collision.  This
        is the derivation :class:`repro.parallel.SweepExecutor` uses to
        seed worker processes — it depends only on the construction
        seed and the task id, never on draws already taken from this
        generator or on worker scheduling, so a task's stream is the
        same under any ``--jobs`` value and under fork or spawn start
        methods.
        """
        if task_id < 0:
            raise ValueError(f"task_id must be non-negative, got {task_id}")
        material = b"repro.substream\x00%d\x00%d" % (self._seed, task_id)
        digest = hashlib.sha256(material).digest()
        return DeterministicRng(int.from_bytes(digest[:8], "big"))

    def numpy_generator(self) -> np.random.Generator:
        """Return a numpy Generator seeded from this stream."""
        return np.random.default_rng(self._random.getrandbits(64))

    # -- scalar draws -------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        """Sample ``k`` distinct elements from ``seq``."""
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed float with the given rate."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)

    def geometric(self, p: float) -> int:
        """Geometrically distributed trial count (support ``>= 1``).

        ``p`` is the per-trial success probability; the return value is
        the index of the first success.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric probability must be in (0, 1], got {p}")
        if p == 1.0:
            return 1
        # Inverse-CDF sampling keeps this a single draw.
        u = self._random.random()
        import math

        return int(math.floor(math.log(1.0 - u) / math.log(1.0 - p))) + 1

"""Shared low-level utilities used by every subsystem.

This package deliberately has no dependency on any other ``repro``
subpackage: it provides deterministic randomness, configuration
plumbing, error types and small numeric helpers that the DRAM model,
the caches, the shapers and the workload generators all build on.
"""

from repro.common.errors import (
    ConfigurationError,
    ProtocolError,
    SimulationError,
)
from repro.common.rng import DeterministicRng
from repro.common.util import (
    ceil_div,
    clamp,
    geometric_mean,
    is_power_of_two,
    log2_int,
    saturating_add,
)

__all__ = [
    "ConfigurationError",
    "DeterministicRng",
    "ProtocolError",
    "SimulationError",
    "ceil_div",
    "clamp",
    "geometric_mean",
    "is_power_of_two",
    "log2_int",
    "saturating_add",
]

"""Exception hierarchy for the Camouflage reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes (caller
bugs) from protocol violations (library bugs surfaced by internal
assertions) and runtime simulation failures.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised eagerly at construction time so that a bad parameter fails
    the experiment immediately instead of corrupting results mid-run.
    """


class MetricNameError(ConfigurationError):
    """A metric or probe name is invalid for Prometheus exposition.

    Raised at *registration* time (``MetricsRegistry.counter/gauge/
    histogram``, ``IntervalSampler.add_probe``) rather than at render
    time, so a name the OpenMetrics exporter could never emit —
    a leading digit, a ``-``, whitespace — fails the experiment
    immediately instead of producing a malformed ``/metrics`` family
    hours into a run.  ``name`` carries the offending string.
    """

    def __init__(self, message: str, name: str = "") -> None:
        super().__init__(message)
        self.name = name


class TraceFormatError(ConfigurationError):
    """A trace input (file, stream or record list) is malformed.

    Carries the offending ``source`` (file path or a description of
    the in-memory input) and, when known, the 1-based ``line`` number,
    so batch trace conversions can point at the exact broken record.
    Subclasses :class:`ConfigurationError` — existing callers that
    catch the broader class keep working.
    """

    def __init__(self, message: str, source: str = "", line: int = 0) -> None:
        super().__init__(message)
        self.source = source
        self.line = line


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Examples: a DRAM command issued before its timing constraint
    expired, a response delivered for an unknown request id, or a
    shaper consuming a credit from an empty bin.  These indicate bugs
    in the simulator rather than in user configuration.
    """


class QueueOverflowError(ProtocolError):
    """A bounded queue was pushed past its capacity.

    The simulator's queues (the controller's 32-entry transaction
    queue, the write queue, NoC link ports) model finite hardware
    buffers whose fullness *is* the backpressure signal the timing
    channel rides on.  A push into a full queue therefore means a
    producer ignored ``is_full``/``can_accept`` — state silently grew
    where hardware would have stalled.  ``capacity`` and ``depth``
    record the bound and the occupancy at the failed push.
    """

    def __init__(self, message: str, capacity: int = 0, depth: int = 0) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.depth = depth


class SimulationError(ReproError):
    """The simulation reached an unrecoverable runtime state.

    For instance, a watchdog detecting that no component made forward
    progress for an implausibly long time (deadlock), or statistics
    requested before any cycles were simulated.
    """


class WatchdogError(SimulationError):
    """The stall watchdog detected a no-progress livelock/deadlock.

    Subclasses :class:`SimulationError` so existing handlers keep
    working.  ``dump`` holds the structured diagnostic captured at
    abort time (queue depths, per-core pending state, shaper credit
    registers); ``dump_path`` is where it was written as JSON, when a
    dump file was configured.
    """

    def __init__(self, message: str, dump=None, dump_path: str = "") -> None:
        super().__init__(message)
        self.dump = dump if dump is not None else {}
        self.dump_path = dump_path


class ResilienceError(ReproError):
    """Base class for checkpoint/restore and fault-harness failures."""


class WorkerFailureError(ResilienceError):
    """A parallel worker task failed after exhausting its retry budget.

    Raised by :class:`repro.parallel.SweepExecutor` when a task keeps
    raising, keeps timing out, or its worker process keeps dying across
    ``RetryPolicy.max_attempts`` attempts.  ``task_index`` and
    ``label`` identify the shard; ``attempts`` counts what was tried;
    ``last_error`` holds the final attempt's stringified cause (the
    original exception object may not survive the process boundary).
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        label: str = "",
        attempts: int = 0,
        last_error: str = "",
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.label = label
        self.attempts = attempts
        self.last_error = last_error


class SnapshotError(ResilienceError):
    """A snapshot could not be written, parsed or restored.

    Raised on bad magic bytes, a format-version mismatch, a truncated
    payload, or a payload of the wrong kind (e.g. feeding a GA-tuner
    checkpoint to ``repro resume``).
    """


class ShardTimeoutError(ResilienceError):
    """A sweep shard exceeded its per-attempt execution budget.

    Raised by :class:`repro.parallel.SweepExecutor` when a pooled
    worker holds a shard past ``RetryPolicy.timeout_seconds`` — a
    wedged simulation (unserviceable shaping configuration in a
    spawned worker, a hung import) must abort the shard with a typed
    error instead of hanging the whole sweep.  ``dump`` carries a
    watchdog-style structured picture of the stuck shard (index,
    label, timeout, chunk geometry, whether the pool was rebuilt);
    the executor also mirrors it as a ``parallel.shard_timeout``
    diagnostic event.
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        label: str = "",
        timeout_seconds: float = 0.0,
        dump=None,
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.label = label
        self.timeout_seconds = timeout_seconds
        self.dump = dump if dump is not None else {}


class DispatchError(ResilienceError):
    """Base class for multi-host sweep-dispatch failures.

    Everything the coordinator/worker protocol can get wrong derives
    from here, so dispatch call sites can catch the whole family while
    still telling transport corruption apart from lost hosts and
    expired leases.  ``host`` (``"address:port"``) and ``shard`` (the
    executor's submission index, ``-1`` when not shard-specific)
    identify where the failure happened.
    """

    def __init__(self, message: str, host: str = "", shard: int = -1) -> None:
        super().__init__(message)
        self.host = host
        self.shard = shard


class ShardTransportError(DispatchError):
    """A dispatch frame was corrupt, truncated or malformed.

    Raised when a length-prefixed frame fails its magic, size, digest
    or JSON checks (:mod:`repro.parallel.protocol`), or when a decoded
    message violates the coordinator/worker protocol (wrong kind,
    mismatched shard id).  The contract: a bad frame is *never*
    silently merged — the shard is re-dispatched and the connection
    is retired, because a corrupted length-prefixed stream cannot be
    re-synchronised trustworthily.
    """


class HostLostError(DispatchError):
    """A worker host's connection failed or closed mid-protocol.

    Covers connect refusals, resets, and EOF at a frame boundary —
    the remote process died (crash, SIGKILL, OOM) or the link went
    away.  The coordinator retires the host and re-dispatches its
    in-flight shard to a surviving host.
    """


class LeaseExpiredError(DispatchError):
    """A dispatched shard's lease deadline passed without a heartbeat.

    The worker neither produced a result nor a heartbeat within
    ``lease_seconds``; the host is presumed wedged or partitioned, so
    the coordinator retires it and re-dispatches the shard.
    ``lease_seconds`` records the budget that was exceeded.
    """

    def __init__(
        self,
        message: str,
        host: str = "",
        shard: int = -1,
        lease_seconds: float = 0.0,
    ) -> None:
        super().__init__(message, host=host, shard=shard)
        self.lease_seconds = lease_seconds

"""Exception hierarchy for the Camouflage reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes (caller
bugs) from protocol violations (library bugs surfaced by internal
assertions) and runtime simulation failures.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised eagerly at construction time so that a bad parameter fails
    the experiment immediately instead of corrupting results mid-run.
    """


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Examples: a DRAM command issued before its timing constraint
    expired, a response delivered for an unknown request id, or a
    shaper consuming a credit from an empty bin.  These indicate bugs
    in the simulator rather than in user configuration.
    """


class SimulationError(ReproError):
    """The simulation reached an unrecoverable runtime state.

    For instance, a watchdog detecting that no component made forward
    progress for an implausibly long time (deadlock), or statistics
    requested before any cycles were simulated.
    """

"""Exception hierarchy for the Camouflage reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause
while still being able to distinguish configuration mistakes (caller
bugs) from protocol violations (library bugs surfaced by internal
assertions) and runtime simulation failures.
"""


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied.

    Raised eagerly at construction time so that a bad parameter fails
    the experiment immediately instead of corrupting results mid-run.
    """


class MetricNameError(ConfigurationError):
    """A metric or probe name is invalid for Prometheus exposition.

    Raised at *registration* time (``MetricsRegistry.counter/gauge/
    histogram``, ``IntervalSampler.add_probe``) rather than at render
    time, so a name the OpenMetrics exporter could never emit —
    a leading digit, a ``-``, whitespace — fails the experiment
    immediately instead of producing a malformed ``/metrics`` family
    hours into a run.  ``name`` carries the offending string.
    """

    def __init__(self, message: str, name: str = "") -> None:
        super().__init__(message)
        self.name = name


class TraceFormatError(ConfigurationError):
    """A trace input (file, stream or record list) is malformed.

    Carries the offending ``source`` (file path or a description of
    the in-memory input) and, when known, the 1-based ``line`` number,
    so batch trace conversions can point at the exact broken record.
    Subclasses :class:`ConfigurationError` — existing callers that
    catch the broader class keep working.
    """

    def __init__(self, message: str, source: str = "", line: int = 0) -> None:
        super().__init__(message)
        self.source = source
        self.line = line


class ProtocolError(ReproError):
    """An internal protocol invariant was violated.

    Examples: a DRAM command issued before its timing constraint
    expired, a response delivered for an unknown request id, or a
    shaper consuming a credit from an empty bin.  These indicate bugs
    in the simulator rather than in user configuration.
    """


class QueueOverflowError(ProtocolError):
    """A bounded queue was pushed past its capacity.

    The simulator's queues (the controller's 32-entry transaction
    queue, the write queue, NoC link ports) model finite hardware
    buffers whose fullness *is* the backpressure signal the timing
    channel rides on.  A push into a full queue therefore means a
    producer ignored ``is_full``/``can_accept`` — state silently grew
    where hardware would have stalled.  ``capacity`` and ``depth``
    record the bound and the occupancy at the failed push.
    """

    def __init__(self, message: str, capacity: int = 0, depth: int = 0) -> None:
        super().__init__(message)
        self.capacity = capacity
        self.depth = depth


class SimulationError(ReproError):
    """The simulation reached an unrecoverable runtime state.

    For instance, a watchdog detecting that no component made forward
    progress for an implausibly long time (deadlock), or statistics
    requested before any cycles were simulated.
    """


class WatchdogError(SimulationError):
    """The stall watchdog detected a no-progress livelock/deadlock.

    Subclasses :class:`SimulationError` so existing handlers keep
    working.  ``dump`` holds the structured diagnostic captured at
    abort time (queue depths, per-core pending state, shaper credit
    registers); ``dump_path`` is where it was written as JSON, when a
    dump file was configured.
    """

    def __init__(self, message: str, dump=None, dump_path: str = "") -> None:
        super().__init__(message)
        self.dump = dump if dump is not None else {}
        self.dump_path = dump_path


class ResilienceError(ReproError):
    """Base class for checkpoint/restore and fault-harness failures."""


class WorkerFailureError(ResilienceError):
    """A parallel worker task failed after exhausting its retry budget.

    Raised by :class:`repro.parallel.SweepExecutor` when a task keeps
    raising, keeps timing out, or its worker process keeps dying across
    ``RetryPolicy.max_attempts`` attempts.  ``task_index`` and
    ``label`` identify the shard; ``attempts`` counts what was tried;
    ``last_error`` holds the final attempt's stringified cause (the
    original exception object may not survive the process boundary).
    """

    def __init__(
        self,
        message: str,
        task_index: int = -1,
        label: str = "",
        attempts: int = 0,
        last_error: str = "",
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.label = label
        self.attempts = attempts
        self.last_error = last_error


class SnapshotError(ResilienceError):
    """A snapshot could not be written, parsed or restored.

    Raised on bad magic bytes, a format-version mismatch, a truncated
    payload, or a payload of the wrong kind (e.g. feeding a GA-tuner
    checkpoint to ``repro resume``).
    """

"""Small numeric helpers shared across subsystems."""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Iterable, Sequence


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding toward positive infinity."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def clamp(value, low, high):
    """Clamp ``value`` into the inclusive range ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact base-2 logarithm of a power-of-two integer."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def saturating_add(value: int, delta: int, max_value: int) -> int:
    """Add ``delta`` to ``value``, saturating at ``max_value``.

    Models hardware counters of fixed width (e.g. the 10-bit credit
    registers in the Camouflage shaper, paper section III-A3).
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return min(max_value, value + delta)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geometric-mean speedups (Fig. 12); this helper is
    used by the benchmark harness to reproduce those summary rows.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def canonical_doc(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-typed document.

    The normal form behind every fingerprint in the repo
    (:func:`repro.sim.stats.report_digest` for run *outputs*,
    :func:`repro.parallel.cache.config_digest` for run *inputs*):
    dataclasses become sorted dicts, tuples/sets become lists, numpy
    scalars and arrays collapse to their Python values, and anything
    else must already be a JSON scalar.  Two configurations that would
    drive identical simulations normalise to equal documents.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_doc(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = canonical_doc(item)
        return out
    if isinstance(value, (list, tuple)):
        return [canonical_doc(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_doc(item) for item in value)
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if hasattr(value, "tolist") and hasattr(value, "dtype"):
        # numpy scalar or array — collapse to Python values (tolist
        # handles both; item() would reject multi-element arrays).
        return canonical_doc(value.tolist())
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ValueError(
                f"non-finite float {value!r} cannot be fingerprinted"
            )
        return value
    raise TypeError(
        f"value of type {type(value).__name__} is not canonicalisable"
    )


def canonical_json_digest(doc: Any, length: int = 16) -> str:
    """SHA-256 over the canonical JSON encoding of ``doc``.

    ``doc`` is passed through :func:`canonical_doc` first, then dumped
    with sorted keys and no whitespace so the digest is independent of
    dict insertion order and container flavour (tuple vs list).
    """
    blob = json.dumps(
        canonical_doc(doc), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:length]


def cumulative_sum(values: Sequence[float]) -> list:
    """Running prefix sums of ``values`` (same length as the input)."""
    total = 0.0
    out = []
    for v in values:
        total += v
        out.append(total)
    return out

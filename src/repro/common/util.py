"""Small numeric helpers shared across subsystems."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer division rounding toward positive infinity."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def clamp(value, low, high):
    """Clamp ``value`` into the inclusive range ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact base-2 logarithm of a power-of-two integer."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def saturating_add(value: int, delta: int, max_value: int) -> int:
    """Add ``delta`` to ``value``, saturating at ``max_value``.

    Models hardware counters of fixed width (e.g. the 10-bit credit
    registers in the Camouflage shaper, paper section III-A3).
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return min(max_value, value + delta)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports geometric-mean speedups (Fig. 12); this helper is
    used by the benchmark harness to reproduce those summary rows.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cumulative_sum(values: Sequence[float]) -> list:
    """Running prefix sums of ``values`` (same length as the input)."""
    total = 0.0
    out = []
    for v in values:
        total += v
        out.append(total)
    return out

"""Baseline file: repo-blessed suppressions with justifications.

Line format (one entry per line)::

    RL003 src/repro/sim/system.py System -- top-level driver, never \
ticked by the engines

i.e. ``<checker-id> <path> <key> -- <justification>``.  ``<key>`` is
the finding's stable symbol key (class name, function qualname, or
dotted call target — shown in JSON output as ``key``); a bare line
number works too but goes stale on unrelated edits.  The justification
after ``--`` is mandatory: a baseline entry without a *why* is a bug
masquerading as policy.  ``#`` lines and blank lines are comments.

Entries that suppressed nothing in a run are reported as "unused" so
the file cannot silently rot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Set


@dataclass(frozen=True)
class BaselineEntry:
    checker_id: str
    path: str
    key: str
    justification: str
    lineno: int

    @property
    def suppression_key(self) -> str:
        return f"{self.checker_id}:{self.path}:{self.key}"


@dataclass
class Baseline:
    path: Optional[str] = None
    entries: List[BaselineEntry] = field(default_factory=list)
    _hits: Set[str] = field(default_factory=set)

    def suppresses(self, finding) -> bool:
        """True (and record the hit) when an entry matches ``finding``."""
        for candidate in (
            finding.suppression_key,
            f"{finding.checker_id}:{finding.path}:{finding.line}",
        ):
            for entry in self.entries:
                if entry.suppression_key == candidate:
                    self._hits.add(entry.suppression_key)
                    return True
        return False

    def unused_entries(self) -> List[BaselineEntry]:
        return [e for e in self.entries if e.suppression_key not in self._hits]


class BaselineFormatError(ValueError):
    pass


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; missing file means an empty baseline."""
    baseline = Baseline(path=path)
    if not os.path.isfile(path):
        return baseline
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            baseline.entries.append(_parse_entry(line, lineno, path))
    return baseline


def _parse_entry(line: str, lineno: int, path: str) -> BaselineEntry:
    head, sep, justification = line.partition("--")
    if not sep or not justification.strip():
        raise BaselineFormatError(
            f"{path}:{lineno}: baseline entry needs a '-- <justification>' tail: "
            f"{line!r}"
        )
    parts = head.split()
    if len(parts) != 3:
        raise BaselineFormatError(
            f"{path}:{lineno}: expected '<id> <path> <key> -- <why>', got {line!r}"
        )
    checker_id, entry_path, key = parts
    return BaselineEntry(
        checker_id=checker_id.upper(),
        path=entry_path.replace(os.sep, "/"),
        key=key,
        justification=justification.strip(),
        lineno=lineno,
    )

"""Finding and severity types shared by every checker.

A :class:`Finding` is one diagnostic: where it is, which checker
produced it, how bad it is, and (optionally) a *stable key* used for
baseline suppression.  Keys name a symbol (class, function, or dotted
call target) rather than a line number, so a baseline entry survives
unrelated edits to the file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``ERROR > WARNING``."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}: expected 'warning' or 'error'"
            ) from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class FlowStep:
    """One hop of an interprocedural source→sink flow path.

    Emitted by the flow checkers (RL007–RL009): the first step is the
    taint source, the last the sink, intermediate steps the calls and
    assignments the taint travelled through.  Rendered as indented
    continuation lines in text output and as ``codeFlows`` in SARIF.
    """

    path: str
    line: int
    note: str

    def as_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "note": self.note}

    @classmethod
    def from_dict(cls, doc: dict) -> "FlowStep":
        return cls(
            path=doc.get("path", ""),
            line=int(doc.get("line", 1)),
            note=doc.get("note", ""),
        )


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a checker.

    ``path`` is always project-root-relative with forward slashes so
    findings (and baseline entries) are portable across machines.
    ``flow`` (flow checkers only) is the source→sink path, source
    first.
    """

    checker_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    hint: str = ""
    key: str = ""
    flow: Tuple[FlowStep, ...] = ()

    @property
    def suppression_key(self) -> str:
        """Identity used by baseline entries: id + path + symbol key."""
        return f"{self.checker_id}:{self.path}:{self.key or self.line}"

    def as_text(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.checker_id} [{self.severity}] {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        for i, step in enumerate(self.flow):
            role = (
                "source" if i == 0
                else ("sink" if i == len(self.flow) - 1 else "via")
            )
            text += (
                f"\n    {role}: {step.path}:{step.line}  {step.note}"
            )
        return text

    def as_dict(self) -> dict:
        return {
            "checker": self.checker_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "key": self.key,
            "flow": [step.as_dict() for step in self.flow],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Finding":
        """Inverse of :meth:`as_dict` (the AST/summary cache layer)."""
        return cls(
            checker_id=doc["checker"],
            severity=Severity.parse(doc["severity"]),
            path=doc["path"],
            line=int(doc["line"]),
            column=int(doc["column"]),
            message=doc["message"],
            hint=doc.get("hint", ""),
            key=doc.get("key", ""),
            flow=tuple(
                FlowStep.from_dict(step) for step in doc.get("flow", [])
            ),
        )


def sort_findings(findings):
    """Stable display order: by file, then line, then checker id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.checker_id))


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: list = field(default_factory=list)
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0
    unused_baseline: list = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if any(f.severity >= Severity.ERROR for f in self.findings) else 0

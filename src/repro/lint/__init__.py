"""repro.lint — AST-based invariant checks for simulator soundness.

The shaping guarantee (release times match the target distribution)
and the next-event engine's bit-identical replay are *determinism*
guarantees; this package machine-checks the coding invariants they
rest on instead of trusting convention.  See docs/static-analysis.md
for the checker catalog and suppression policy.

Run it as ``python -m repro.lint [paths...]`` or ``repro lint``.
"""

from repro.lint.baseline import Baseline, BaselineEntry, load_baseline
from repro.lint.config import LintConfig, config_from_table, load_config
from repro.lint.findings import Finding, LintResult, Severity
from repro.lint.registry import (
    Checker,
    ModuleContext,
    all_checkers,
    get_checker,
    register,
)
from repro.lint.runner import lint_paths, lint_source, main, run

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Checker",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Severity",
    "all_checkers",
    "config_from_table",
    "get_checker",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_config",
    "main",
    "register",
    "run",
]

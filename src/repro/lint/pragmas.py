"""Inline suppression pragmas.

Two spellings, both comments so they never affect runtime:

* ``# repro-lint: disable=RL001`` — suppress the listed checkers (or
  ``all``) for findings anchored on the *same line*.
* ``# repro-lint: disable-next-line=RL002,RL003`` — same, but for the
  following line (useful when the offending line has no room).

Multiple ids are comma-separated.  Unknown ids are kept verbatim — the
runner reports pragmas that never suppressed anything so stale ones
get cleaned up.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-next-line)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)

ALL = "ALL"


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of disabled checker ids.

    The special member :data:`ALL` disables every checker on that line.
    """
    disabled: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        for match in _PRAGMA_RE.finditer(line):
            kind, ids_text = match.groups()
            target = lineno + 1 if kind.endswith("next-line") else lineno
            ids = {
                part.strip().upper()
                for part in ids_text.split(",")
                if part.strip()
            }
            if "ALL" in ids:
                ids = {ALL}
            disabled.setdefault(target, set()).update(ids)
    return disabled


def is_suppressed(disabled: Dict[int, Set[str]], line: int, checker_id: str) -> bool:
    ids = disabled.get(line)
    if not ids:
        return False
    return ALL in ids or checker_id.upper() in ids

"""SARIF 2.1.0 rendering for lint results.

``repro lint --format sarif`` emits one run containing the full rule
catalog (so GitHub code scanning can show rule help on findings that
reference them), one ``result`` per finding, and — for flow checkers
— a ``codeFlows`` thread walking the source→sink path, which the
code-scanning UI renders as a step-through trace.

The schema subset used here is deliberately small (driver rules,
physical locations, one threadFlow per result) and stable; see
https://docs.oasis-open.org/sarif/sarif/v2.1.0/ for the full spec.
"""

from __future__ import annotations

import json
import sys

from repro.lint.findings import Finding, LintResult, Severity
from repro.lint.registry import all_checkers

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _rules() -> list:
    rules = []
    for checker in all_checkers():
        rules.append(
            {
                "id": checker.id,
                "name": checker.name,
                "shortDescription": {"text": checker.name},
                "fullDescription": {"text": checker.description},
                "defaultConfiguration": {
                    "level": _LEVELS[checker.default_severity]
                },
                "helpUri": (
                    "https://github.com/"  # resolved by the hosting repo
                    "../blob/main/docs/static-analysis.md"
                ),
            }
        )
    return rules


def _location(path: str, line: int, column: int = 1, message: str = "") -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": path, "uriBaseId": "%SRCROOT%"},
            "region": {
                "startLine": max(1, line),
                "startColumn": max(1, column),
            },
        }
    }
    if message:
        loc["message"] = {"text": message}
    return loc


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.checker_id,
        "level": _LEVELS[finding.severity],
        "message": {
            "text": finding.message
            + (f" (hint: {finding.hint})" if finding.hint else "")
        },
        "locations": [
            _location(finding.path, finding.line, finding.column)
        ],
        "partialFingerprints": {
            "reproLintKey": finding.suppression_key,
        },
    }
    if finding.flow:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": _location(
                                    step.path, step.line, message=step.note
                                )
                            }
                            for step in finding.flow
                        ]
                    }
                ]
            }
        ]
    return result


def render_sarif(result: LintResult, out=None) -> None:
    out = out or sys.stdout
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "docs/static-analysis.md"
                        ),
                        "rules": _rules(),
                    }
                },
                "results": [_result(f) for f in result.findings],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    json.dump(doc, out, indent=2, sort_keys=True)
    out.write("\n")

"""Built-in checkers.  Importing this package registers them all."""

from repro.lint.checkers.rl001_determinism import DeterminismChecker
from repro.lint.checkers.rl002_cycle_float import CycleFloatChecker
from repro.lint.checkers.rl003_next_event import NextEventContractChecker
from repro.lint.checkers.rl004_mutable_shared import MutableSharedStateChecker
from repro.lint.checkers.rl005_bare_print import BarePrintChecker
from repro.lint.checkers.rl006_swallowed_exceptions import (
    SwallowedExceptionChecker,
)
from repro.lint.checkers.rl007_secret_independence import (
    SecretIndependenceChecker,
)
from repro.lint.checkers.rl008_dirty_marks import DirtyMarkChecker
from repro.lint.checkers.rl009_rng_streams import RngStreamChecker

__all__ = [
    "DeterminismChecker",
    "CycleFloatChecker",
    "NextEventContractChecker",
    "MutableSharedStateChecker",
    "BarePrintChecker",
    "SwallowedExceptionChecker",
    "SecretIndependenceChecker",
    "DirtyMarkChecker",
    "RngStreamChecker",
]

"""RL007: demand-derived state must not reach release-timing math.

Camouflage's security argument (docs/security.md, paper section III)
is one invariant: the externally visible request/response *timing* is
a function of the precomputed shaping distribution alone — bin
credits, epoch schedule, the seeded jitter stream — never of demand
traffic.  A release-time computation that reads the real queue's
occupancy or contents, request addresses, or per-tenant demand
counters reopens exactly the channel the shapers exist to close
(Gong & Kiyavash's scheduler coupling; Braun et al.'s "timing must
not depend on secrets" discipline).

The checker runs the interprocedural taint engine over the whole
project:

* **sources** — demand-derived attribute reads: real-queue buffers
  (``*._buffer``, ``*._queue``), occupancy probes, request addresses
  and creation cycles, per-epoch demand counters;
* **sinks** — the shaper layer's timing surface: every
  ``repro.core.*`` ``next_event_cycle``/``earliest_*``/
  ``can_release_*`` return, the columnar horizon reductions, and
  writes to the timing registers (``_next_slot``,
  ``_jitter_hold_until``, ``_next_replenish``, ``_last_release``);
* **sanitizers** — the sanctioned credit/bin/epoch interfaces
  (``BinShaper.release_*``/``replenish_if_due``, the
  ``EpochRateController.maybe_advance_*`` boundary methods), declared
  here and via ``# repro-lint: sanitizer=RL007`` pragmas at the defs.

Only *explicit* data flows are reported.  Control dependence —
``return cycle if self._buffer else None``, or selecting one of the
fixed rate-set intervals by comparing against observed demand — is
deliberately out of scope: choosing *among sanctioned constants* is
the accounted ``E × log2(R)``-style channel (Fletcher'14), whereas
computing a timing value *from* demand data is the defect this
checker exists to catch.  See docs/static-analysis.md for the full
threat-model discussion.

Sinks are scoped to the shaper layer on purpose: DRAM bank timing,
NoC arbitration, and the engines' own next-event scheduling
legitimately depend on demand — that internal timing is what the
shapers hide.  The trust boundary RL007 polices is the shaper
interface, not the memory system behind it.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import FlowChecker, register

_SOURCE_ATTRS = [
    "*._buffer",
    "*._queue",
    "*.occupancy",
    "*.address",
    "*.created_cycle",
    "*._demand_this_epoch",
]

_SINK_RETURNS = [
    "repro.core.*.next_event_cycle",
    "repro.core.*.earliest_real_release",
    "repro.core.*.earliest_fake_release",
    "repro.core.*._earliest_eligible",
    "repro.core.*.can_release_*",
    "repro.sim.columnar.ColumnarEngine._min_horizon",
    "repro.sim.columnar.ColumnarEngine._next_target",
]

#: Class-qualified on purpose: ``FixedServiceScheduler`` keeps its own
#: ``_next_slot`` register, but that is memory-controller-internal
#: timing the shapers hide, not shaper surface.
_SINK_ATTR_WRITES = [
    "EpochRateShaper._next_slot",
    "BinShaper._jitter_hold_until",
    "BinShaper._next_replenish",
    "BinShaper._last_release",
]

#: The simulator clock is shared infrastructure: every component reads
#: it and the engines advance it from their (legitimately
#: demand-dependent) internal next-event targets.  Field-based attr
#: tracking would otherwise make it a taint hub that marks every
#: ``cycle`` parameter in the project.  Shaper outputs are checked
#: where they are *computed* (the sink returns/registers above), so
#: dropping clock taint loses no true flows.
_CLEAN_ATTRS = [
    "*.current_cycle",
]

#: The sanctioned interfaces demand is *allowed* to cross: the credit
#: machinery consumes demand only to debit precomputed registers, and
#: the epoch controller's demand→rate coupling is the explicitly
#: accounted Fletcher'14 channel (``EpochRateShaper.leakage_bound_bits``).
#: The epoch methods also carry ``# repro-lint: sanitizer=RL007``
#: pragmas at their defs — config and pragma vocabularies are unioned.
_SANITIZERS = [
    "repro.core.shaper.BinShaper.release_real",
    "repro.core.shaper.BinShaper.release_fake",
    "repro.core.shaper.BinShaper.replenish_if_due",
    "repro.core.epoch_shaper.EpochRateController.maybe_advance_epoch",
    "repro.core.epoch_shaper.EpochRateController.maybe_advance_with_feedback",
]

_KIND_TEXT = {
    "return": "is returned from release-timing function",
    "attr-write": "is written to timing register",
    "call-arg": "is passed to timing interface",
}

_HINT = (
    "release timing must be a function of the precomputed shaping "
    "distribution only; route demand through the credit/bin/epoch "
    "interfaces (declare one with '# repro-lint: sanitizer=RL007' "
    "and justify it in docs/static-analysis.md)"
)


@register
class SecretIndependenceChecker(FlowChecker):
    id = "RL007"
    name = "secret-independence"
    description = (
        "demand-derived state must not flow into shaper release-timing "
        "computations except through sanctioned interfaces"
    )

    def check_project(self, project) -> Iterable[Finding]:
        from repro.lint.flow.taint import TaintSpec, run_taint

        opts = project.options_for(self.id)
        flow_opts = project.options_for("flow")
        spec = TaintSpec(
            checker_id=self.id,
            source_attrs=opts.get("source-attrs", _SOURCE_ATTRS),
            source_calls=opts.get("source-calls", []),
            sink_returns=opts.get("sink-returns", _SINK_RETURNS),
            sink_attr_writes=opts.get("sink-attr-writes", _SINK_ATTR_WRITES),
            sink_call_args=opts.get("sink-call-args", []),
            clean_attrs=opts.get("clean-attrs", _CLEAN_ATTRS),
            sanitizers=(
                list(opts.get("sanitizers", _SANITIZERS))
                + list(flow_opts.get("sanitizers", []))
            ),
        )
        findings: List[Finding] = []
        for hit in run_taint(project, spec):
            source = hit.source_note or "demand-derived state"
            findings.append(
                project.finding(
                    self.id,
                    hit.func.path,
                    hit.node,
                    f"{source} {_KIND_TEXT.get(hit.kind, 'reaches')} "
                    f"'{hit.detail}'",
                    hint=_HINT,
                    key=f"{hit.func.qualname}.{hit.kind}.{hit.detail}",
                    flow=hit.flow,
                    default_severity=self.default_severity,
                )
            )
        return findings

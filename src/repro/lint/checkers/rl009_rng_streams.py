"""RL009: all randomness must come from the DeterministicRng streams.

RL001 already bans raw ``random.*``/``numpy.random.*`` calls — but
with a *file-level* allow list: everything in ``repro/common/rng.py``
is exempt, so a convenience wrapper added to that file (or a module
re-exporting one) silently becomes an unseeded randomness source the
whole project can reach while RL001 stays green.

RL009 refines the discipline to *function* granularity using the
project call graph:

* a raw-randomness primitive (``random.*``, ``numpy.random.*``,
  ``secrets.*`` — alias-resolved, so ``np.random.default_rng`` and
  ``from random import Random`` are both seen) may be called only
  from the sanctioned qualnames (``repro.common.rng
  .DeterministicRng.*`` by default — the seeded wrapper and its
  ``fork``/``substream`` derivation methods);
* every other call site is flagged, wherever the file lives —
  including wrapper helpers inside the RL001-allow-listed module;
* findings carry a reachability path: the raw call, its enclosing
  function, and an example project caller, so a wrapper's blast
  radius is visible in the report;
* module-level and class-body calls (``_RNG = random.Random()`` as a
  global) are flagged unconditionally — no function, no sanction.

Instance method calls through a :class:`DeterministicRng` handle
(``self._rng.randint(...)``) never match: patterns are anchored
against the full alias-canonicalised dotted text.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatchcase
from typing import Iterable, List, Tuple

from repro.lint.findings import Finding, FlowStep
from repro.lint.registry import FlowChecker, register

_BANNED_CALLS = [
    "random.*",
    "numpy.random.*",
    "secrets.*",
]

_ALLOW_FUNCTIONS = [
    "repro.common.rng.DeterministicRng.*",
]

_HINT = (
    "draw from a repro.common.rng.DeterministicRng stream (fork() or "
    "substream() for an independent one; numpy via .numpy_generator())"
)


def _matches(dotted: str, patterns: Iterable[str]) -> bool:
    return any(fnmatchcase(dotted, p) for p in patterns)


class _ModuleLevelCalls(ast.NodeVisitor):
    """Collect Call nodes outside any function body (class bodies and
    module top level — where a stray global RNG would be built)."""

    def __init__(self) -> None:
        self.calls: List[ast.Call] = []

    def visit_FunctionDef(self, node) -> None:  # stop descent
        return

    def visit_AsyncFunctionDef(self, node) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)


@register
class RngStreamChecker(FlowChecker):
    id = "RL009"
    name = "rng-stream-discipline"
    description = (
        "raw random.*/np.random.* use is only sanctioned inside "
        "DeterministicRng, wherever the call site lives"
    )

    def check_project(self, project) -> Iterable[Finding]:
        opts = project.options_for(self.id)
        banned = opts.get("banned-calls", _BANNED_CALLS)
        allowed = opts.get("allow-functions", _ALLOW_FUNCTIONS)

        index = project.index
        callgraph = project.callgraph
        findings: List[Finding] = []

        for qual in sorted(index.functions):
            info = index.functions[qual]
            if _matches(qual, allowed):
                continue
            for node, dotted, _targets in callgraph.call_sites.get(qual, []):
                if not dotted or not _matches(dotted, banned):
                    continue
                findings.append(
                    project.finding(
                        self.id,
                        info.path,
                        node,
                        f"call to '{dotted}' (unseeded randomness) in "
                        f"{qual}, outside the sanctioned "
                        "DeterministicRng streams",
                        hint=_HINT,
                        key=f"{qual}.{dotted}",
                        flow=self._reach_flow(
                            info, node, dotted, callgraph, index
                        ),
                        default_severity=self.default_severity,
                    )
                )

        # Module/class-level calls have no enclosing function to
        # sanction; a global `random.Random()` is always a finding.
        for path in sorted(project.modules):
            mod = project.modules[path]
            collector = _ModuleLevelCalls()
            collector.visit(mod.tree)
            for node in collector.calls:
                dotted = callgraph.dotted_text(path, node.func)
                if not dotted or not _matches(dotted, banned):
                    continue
                findings.append(
                    project.finding(
                        self.id,
                        path,
                        node,
                        f"module-level call to '{dotted}' (unseeded "
                        "randomness) — global RNG state is never "
                        "sanctioned",
                        hint=_HINT,
                        key=f"<module>.{dotted}",
                        default_severity=self.default_severity,
                    )
                )
        return findings

    @staticmethod
    def _reach_flow(
        info, node, dotted, callgraph, index
    ) -> Tuple[FlowStep, ...]:
        steps = [
            FlowStep(info.path, node.lineno, f"raw call to '{dotted}'"),
            FlowStep(
                info.path, info.lineno,
                f"inside {info.qualname} (not a sanctioned stream)",
            ),
        ]
        callers = sorted(callgraph.callers.get(info.qualname, ()))
        if callers:
            caller = index.functions.get(callers[0])
            if caller is not None:
                steps.append(
                    FlowStep(
                        caller.path, caller.lineno,
                        f"reachable from {caller.qualname}"
                        + (
                            f" and {len(callers) - 1} other caller(s)"
                            if len(callers) > 1
                            else ""
                        ),
                    )
                )
        return tuple(steps)

"""RL008: columnar station mutations must be paired with dirty-marks.

The columnar engine (PR 6, ``repro/sim/columnar.py``) only re-polls
``next_event_cycle`` for ledger rows whose ``dirty`` flag is set; a
station mutation that is not paired with a dirty-mark leaves a stale
cached horizon, and the engine silently schedules off it — the
bit-identity guarantee against ``engine="next_event"`` breaks in a
way no local (per-function) check can see when the mutation happens
through a helper.

The rule is function-granularity and interprocedural: a function in
the checked scope that calls a *mutator* (``*.tick``, ``*.enqueue``,
``*.push_response``, ``*._deliver``, the engine's bound-method tick
caches, ...) is **paired** when a dirty-mark appears in the function
itself, in any transitive callee, or in a direct caller (the caller
owning the mark for a mutation helper is the
``_step``/``_refresh_horizons`` split the engine already uses).  A
*dirty-mark* is an assignment of a non-``False`` value to a
``*dirty*`` target (``dirty[i] = True``, ``self._dirty[j] = True``)
or a call to a ``*mark_all_dirty*`` helper; clearing a flag
(``dirty[i] = False``) never counts.

Scope, mutator patterns, and mark patterns are configurable via
``[tool.repro-lint.rl008]`` so future engines can enrol their own
ledgers.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch, fnmatchcase
from typing import Dict, Iterable, List

from repro.lint.findings import Finding, FlowStep
from repro.lint.registry import FlowChecker, register

_PATHS = ["repro/sim/columnar.py"]

_MUTATOR_CALLS = [
    "*.tick",
    "*.enqueue",
    "*.push_response",
    "*.push_request",
    "*.pop_responses",
    "*.pop_arrivals",
    "*._deliver",
    "*._core_tick",
    "*._path_tick",
    "*._resp_tick",
]

_MARK_TARGETS = ["*dirty*"]
_MARK_CALLS = ["*mark_all_dirty*"]

_HINT = (
    "set the station's dirty flag (or call the mark-all helper) in "
    "this function, a callee, or the direct caller, so the cached "
    "horizon is re-polled after the mutation"
)


def _dotted(expr: ast.AST) -> str:
    from repro.lint.flow.callgraph import dotted_parts

    parts = dotted_parts(expr)
    return ".".join(parts) if parts else ""


def _is_mark_value(value: ast.AST) -> bool:
    """Anything but a literal ``False`` counts as setting the flag."""
    return not (isinstance(value, ast.Constant) and value.value is False)


def _path_in_scope(path: str, patterns: Iterable[str]) -> bool:
    for pattern in patterns:
        pat = pattern.strip("/")
        if fnmatch(path, pat) or fnmatch(path, "*/" + pat):
            return True
    return False


@register
class DirtyMarkChecker(FlowChecker):
    id = "RL008"
    name = "dirty-mark-completeness"
    description = (
        "every columnar station mutation must pair with a dirty-mark "
        "(intra- or interprocedurally)"
    )

    def check_project(self, project) -> Iterable[Finding]:
        from repro.lint.flow.callgraph import iter_body_nodes

        opts = project.options_for(self.id)
        scope = opts.get("paths", _PATHS)
        mutators = opts.get("mutator-calls", _MUTATOR_CALLS)
        mark_targets = opts.get("mark-targets", _MARK_TARGETS)
        mark_calls = opts.get("mark-calls", _MARK_CALLS)

        index = project.index
        callgraph = project.callgraph

        # Which functions contain a dirty-mark (computed once, shared
        # by every pairing query).
        has_mark: Dict[str, bool] = {}
        for qual, info in index.functions.items():
            has_mark[qual] = self._contains_mark(
                info.node, mark_targets, mark_calls, iter_body_nodes
            )

        findings: List[Finding] = []
        for qual in sorted(index.functions):
            info = index.functions[qual]
            if not _path_in_scope(info.path, scope):
                continue
            sites = [
                (node, dotted)
                for node, dotted, _targets in callgraph.call_sites.get(
                    qual, []
                )
                if dotted and any(fnmatchcase(dotted, m) for m in mutators)
            ]
            if not sites:
                continue
            if has_mark.get(qual):
                continue
            if any(
                has_mark.get(callee)
                for callee in callgraph.transitive_callees(qual)
            ):
                continue
            if any(
                has_mark.get(caller)
                for caller in callgraph.callers.get(qual, ())
            ):
                continue
            for node, dotted in sites:
                findings.append(
                    project.finding(
                        self.id,
                        info.path,
                        node,
                        f"station mutation '{dotted}' in {qual} has no "
                        "paired dirty-mark (none in the function, its "
                        "callees, or its direct callers)",
                        hint=_HINT,
                        key=f"{qual}.{dotted}",
                        flow=(
                            FlowStep(
                                info.path, node.lineno,
                                f"mutation via '{dotted}()'",
                            ),
                            FlowStep(
                                info.path, info.lineno,
                                f"{qual} re-polls no horizon: no "
                                "dirty-mark reachable",
                            ),
                        ),
                        default_severity=self.default_severity,
                    )
                )
        return findings

    @staticmethod
    def _contains_mark(
        func_node, mark_targets, mark_calls, iter_body_nodes
    ) -> bool:
        for node in iter_body_nodes(func_node):
            if isinstance(node, ast.Assign):
                if _is_mark_value(node.value) and any(
                    fnmatchcase(_dotted(t), pat)
                    for t in node.targets
                    for pat in mark_targets
                    if _dotted(t)
                ):
                    return True
            elif isinstance(node, ast.AugAssign):
                target = _dotted(node.target)
                if target and any(
                    fnmatchcase(target, pat) for pat in mark_targets
                ):
                    return True
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted and any(
                    fnmatchcase(dotted, pat) for pat in mark_calls
                ):
                    return True
        return False

"""RL005: no bare ``print()`` in library code.

The simulator is a library first: experiments, tests, and the CI
harness all import it and parse what *they* choose to emit.  A bare
``print(...)`` inside library modules writes to whatever stdout
happens to be at call time — it interleaves with CLI output, corrupts
machine-read report streams, and (worst) can differ between runs that
must produce bit-identical artifacts.  Observability belongs in
:mod:`repro.obs`; human-facing text belongs in the CLI layer.

A ``print`` call is *bare* when it has no explicit ``file=`` keyword.
Passing ``file=`` (even ``file=sys.stdout``) states the intent and is
allowed — that is how the lint runner and the report generator direct
their own output.  Files named ``__main__.py`` are script entry
points, not library code, and are exempt automatically; further
command-line front-ends are listed in ``allow-paths``
(``repro/cli.py`` by default).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_DEFAULT_ALLOW_PATHS = ["repro/cli.py"]

_HINT = (
    "library code must not write to stdout implicitly: pass an explicit "
    "file= target, return the text to the caller, or move the output "
    "into the CLI layer"
)


def _is_bare_print(node: ast.Call) -> bool:
    if not (isinstance(node.func, ast.Name) and node.func.id == "print"):
        return False
    return not any(kw.arg == "file" for kw in node.keywords)


@register
class BarePrintChecker(Checker):
    id = "RL005"
    name = "no-bare-print"
    description = (
        "flags print() calls without an explicit file= in library "
        "modules (CLI front-ends and __main__.py are exempt)"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        if module.path.endswith("/__main__.py") or module.path == "__main__.py":
            return []
        allow = module.options.get("allow-paths", _DEFAULT_ALLOW_PATHS)
        if self.path_matches(module.path, allow):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_bare_print(node):
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        "bare print() in library code",
                        hint=_HINT,
                    )
                )
        return findings

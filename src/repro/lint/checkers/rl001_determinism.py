"""RL001: all randomness and time must flow through the seeded RNG.

Camouflage's security analysis — and PR 1's bit-identical next-event
replay — both assume that a run is a pure function of its
configuration.  A single ``time.time()`` or ``random.random()`` call
anywhere in the simulated path silently breaks that: reports stop
being reproducible and the shaped release times can no longer be
audited against the target distribution.

The checker therefore bans, outside the allow-listed RNG module
(``repro/common/rng.py`` by default):

* importing :mod:`random` or :mod:`secrets` at all,
* wall-clock calls: ``time.time``/``monotonic``/``perf_counter``/
  ``process_time`` (and ``_ns`` variants), ``time.sleep``,
  ``datetime.now``/``utcnow``/``today``,
* any ``numpy.random.*`` call (including ``default_rng`` — seed it via
  :meth:`repro.common.rng.DeterministicRng.numpy_generator` instead),
* ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``.

Import aliases are resolved (``import numpy as np`` + ``np.random.x``
is caught), so the ban cannot be dodged by renaming.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_DEFAULT_ALLOW = ["repro/common/rng.py"]

_BANNED_IMPORTS = {
    "random": "module-level random (unseeded Mersenne state)",
    "secrets": "OS entropy",
}

_BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "time.process_time": "wall clock",
    "time.process_time_ns": "wall clock",
    "time.sleep": "wall-clock stall",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

_BANNED_PREFIXES = {
    "numpy.random.": "unseeded numpy randomness",
}

_HINT = (
    "route randomness through repro.common.rng.DeterministicRng "
    "(numpy via .numpy_generator()); cycle counts, not wall time, "
    "are the simulator's only clock"
)


class _ImportTracker(ast.NodeVisitor):
    """Resolve local names back to canonical dotted module paths."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}
        self.banned_import_nodes: List[ast.AST] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = canonical
            if alias.name.split(".")[0] in _BANNED_IMPORTS:
                self.banned_import_nodes.append(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"
        if node.module.split(".")[0] in _BANNED_IMPORTS:
            self.banned_import_nodes.append(node)


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> str:
    """Canonical dotted path of an attribute/name chain, or ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    root = aliases.get(node.id, node.id)
    parts.append(root)
    dotted = ".".join(reversed(parts))
    # Normalise the common spellings numpy uses in this repo.
    if dotted.startswith("np.random"):
        dotted = "numpy" + dotted[2:]
    return dotted


@register
class DeterminismChecker(Checker):
    id = "RL001"
    name = "determinism"
    description = (
        "bans wall-clock and unseeded randomness outside repro/common/rng.py"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        allow = module.options.get("allow-paths", _DEFAULT_ALLOW)
        if self.path_matches(module.path, allow):
            return []
        tracker = _ImportTracker()
        tracker.visit(module.tree)

        findings: List[Finding] = []
        for node in tracker.banned_import_nodes:
            mod = (
                node.names[0].name.split(".")[0]
                if isinstance(node, ast.Import)
                else node.module.split(".")[0]
            )
            findings.append(
                module.finding(
                    self.id,
                    node,
                    f"import of '{mod}' ({_BANNED_IMPORTS[mod]}) outside the "
                    "seeded-RNG module",
                    hint=_HINT,
                    key=f"import.{mod}",
                )
            )

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func, tracker.aliases)
            if not dotted:
                continue
            reason = _BANNED_CALLS.get(dotted)
            if reason is None:
                for prefix, prefix_reason in _BANNED_PREFIXES.items():
                    if dotted.startswith(prefix):
                        reason = prefix_reason
                        break
            if reason is None and dotted.startswith("random."):
                reason = "module-level random (unseeded Mersenne state)"
            if reason:
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        f"call to '{dotted}' ({reason}) breaks run determinism",
                        hint=_HINT,
                        key=dotted,
                    )
                )
        return findings

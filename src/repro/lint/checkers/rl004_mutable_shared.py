"""RL004: mutable defaults and class-level shared mutable state.

Two classic Python hazards that are fatal in a simulator whose whole
claim is per-run isolation:

* **Mutable default arguments** — ``def f(trace=[])`` shares one list
  across every call *and every simulated component*, so one run's
  state leaks into the next and back-to-back experiments stop being
  independent.  Flagged everywhere, not just in constructors.
* **Class-attribute mutable literals** — ``class Core: pending = []``
  shares the list across *instances*; two cores then share one queue,
  which both corrupts results and couples components the engine
  assumes are independent.  Flagged for classes that look like
  components (define ``__init__`` or ``tick``), where the idiom is
  almost always an error rather than a registry.

``dataclass`` fields use ``field(default_factory=...)`` and are not
flagged; frozen/annotated constants (``Tuple``, ``frozenset``) are
immutable and fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_MUTABLE_CALLS = {"list", "dict", "set", "deque", "defaultdict", "OrderedDict"}


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else ""
        )
        return name in _MUTABLE_CALLS
    return False


def _has_dataclass_decorator(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        node = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            node.id if isinstance(node, ast.Name)
            else node.attr if isinstance(node, ast.Attribute)
            else ""
        )
        if name == "dataclass":
            return True
    return False


@register
class MutableSharedStateChecker(Checker):
    id = "RL004"
    name = "mutable-shared-state"
    description = (
        "flags mutable default arguments and class-level mutable literals "
        "shared across component instances"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_defaults(module, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_class_attrs(module, node))
        return findings

    def _check_defaults(self, module: ModuleContext, func) -> List[Finding]:
        findings = []
        defaults = list(func.args.defaults) + [
            d for d in func.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                findings.append(
                    module.finding(
                        self.id,
                        default,
                        f"mutable default argument in '{func.name}()' is "
                        "shared across calls (and across simulated "
                        "components)",
                        hint="default to None and build the container in "
                        "the body, or use dataclasses.field(default_factory)",
                        key=func.name,
                    )
                )
        return findings

    def _check_class_attrs(self, module: ModuleContext, cls: ast.ClassDef):
        findings = []
        if _has_dataclass_decorator(cls):
            return findings  # dataclass machinery rejects these itself
        methods = {
            stmt.name
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "__init__" not in methods and "tick" not in methods:
            return findings
        for stmt in cls.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if _is_mutable_literal(value):
                names = ", ".join(
                    t.id for t in targets if isinstance(t, ast.Name)
                )
                findings.append(
                    module.finding(
                        self.id,
                        value,
                        f"class attribute '{names}' of '{cls.name}' is a "
                        "mutable literal shared by every instance",
                        hint="initialise per-instance state in __init__",
                        key=f"{cls.name}.{names}",
                    )
                )
        return findings

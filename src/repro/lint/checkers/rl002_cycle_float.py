"""RL002: cycle/timing arithmetic must stay in exact integers.

The next-event engine's guarantee (DESIGN.md §4) is *bit-identical*
reports whether the clock steps or jumps.  That only holds while every
cycle timestamp, deadline, and release time is an integer: float
quotients compare differently after algebraically-equal rewrites, and
accumulated float error can reorder two events whose integer cycles
are equal.  Ratios, fractions, and statistics may of course be floats
— the checker only fires when a float-producing expression *reaches a
cycle-valued location*.

Float producers: true division ``/``, ``float(...)`` casts, and float
literals — except under an explicit integer coercion (``int()``,
``math.floor``, ``math.ceil``, ``round``), which states intent and
restores exactness.

Cycle sinks (within the configured simulated packages):

* assignment (plain, annotated, or augmented) to a cycle-named target,
* ``return`` inside a function whose name is cycle-valued
  (``next_event_cycle``, ``*_cycle``/``*_cycles``, ``*deadline*``,
  ``*release*``, ``*boundary*``, ``*_at``),
* a keyword argument with a cycle-valued name (``f(cycle=x / 2)``),
* comparison of a cycle-named value against a float expression or a
  *tainted* local — a variable assigned from a float producer earlier
  in the same scope (one level of local dataflow, enough to catch
  ``q = a / b; ... if deadline <= q``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_DEFAULT_PACKAGES = [
    "repro/dram",
    "repro/memctrl",
    "repro/core",
    "repro/noc",
    "repro/sim",
    "repro/cpu",
]

_DEFAULT_NAME_PATTERN = (
    r"(?:^|_)(?:cycle|cycles|deadline|boundary|interval|intervals|release|"
    r"expiry|epoch)(?:_|$)|_at$"
)
_DEFAULT_FUNC_PATTERN = (
    r"(?:^|_)(?:cycle|cycles)$|deadline|release|boundary|expiry|_at$"
)

_INT_COERCIONS = {"int", "floor", "ceil", "round"}

_HINT = (
    "keep cycle math integral: use //, or make the coercion explicit with "
    "int()/math.ceil()/math.floor(); cross-multiply instead of comparing "
    "against a quotient"
)


def _coercion_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _float_sources(node: ast.AST) -> List[ast.AST]:
    """Float-producing subnodes of an expression, pruning int coercions."""
    sources: List[ast.AST] = []

    def walk(n: ast.AST) -> None:
        if isinstance(n, ast.Call):
            name = _coercion_name(n)
            if name in _INT_COERCIONS:
                return  # int()/floor()/ceil()/round() restore exactness
            if name == "float":
                sources.append(n)
                return
        if isinstance(n, ast.BinOp) and isinstance(n.op, ast.Div):
            sources.append(n)
        if isinstance(n, ast.Constant) and isinstance(n.value, float):
            sources.append(n)
        for child in ast.iter_child_nodes(n):
            walk(child)

    walk(node)
    return sources


def _target_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _ScopeScanner:
    """Scan one function (or the module body) for RL002 violations."""

    def __init__(self, checker: "CycleFloatChecker", module: ModuleContext,
                 func: Optional[ast.AST], name_re, func_re) -> None:
        self.checker = checker
        self.module = module
        self.func = func
        self.name_re = name_re
        self.func_re = func_re
        self.tainted: Set[str] = set()
        self.findings: List[Finding] = []
        func_name = getattr(func, "name", "")
        self.func_is_cycle_valued = bool(func_name) and bool(
            func_re.search(func_name)
        )
        self.scope_label = func_name or "<module>"

    def run(self, body: Iterable[ast.stmt]) -> List[Finding]:
        for stmt in body:
            self._scan(stmt)
        return self.findings

    # -- statement dispatch ------------------------------------------------

    def _scan(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested scopes are scanned separately
        if isinstance(node, ast.Assign):
            self._check_assign(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._check_assign([node.target], node.value)
        elif isinstance(node, ast.AugAssign):
            self._check_assign([node.target], node.value, aug=node)
        elif isinstance(node, ast.Return) and node.value is not None:
            self._check_return(node)
        for child in ast.iter_child_nodes(node):
            self._scan(child)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
        if isinstance(node, ast.Call):
            self._check_call_kwargs(node)

    # -- sinks -------------------------------------------------------------

    def _emit(self, anchor: ast.AST, what: str) -> None:
        self.findings.append(
            self.module.finding(
                self.checker.id,
                anchor,
                f"float-valued expression reaches {what}",
                hint=_HINT,
                key=self.scope_label,
            )
        )

    def _value_offends(self, value: ast.AST) -> List[ast.AST]:
        sources = _float_sources(value)
        if sources:
            return sources
        tainted_uses = [
            n for n in ast.walk(value)
            if isinstance(n, ast.Name) and n.id in self.tainted
        ]
        return tainted_uses

    def _check_assign(self, targets, value, aug: Optional[ast.AugAssign] = None):
        offending = self._value_offends(value)
        cycle_targets = [
            t for t in targets if self.name_re.search(_target_name(t) or "")
        ]
        if aug is not None and isinstance(aug.op, ast.Div):
            for t in targets:
                if self.name_re.search(_target_name(t) or ""):
                    self._emit(aug, f"'{_target_name(t)}' via augmented /=")
                    return
        if offending and cycle_targets:
            name = _target_name(cycle_targets[0])
            self._emit(offending[0], f"cycle-valued assignment to '{name}'")
            return
        if offending:
            # Not a sink: remember the poisoned locals for later sinks.
            for t in targets:
                if isinstance(t, ast.Name):
                    self.tainted.add(t.id)
        else:
            for t in targets:
                if isinstance(t, ast.Name):
                    self.tainted.discard(t.id)

    def _check_return(self, node: ast.Return) -> None:
        if not self.func_is_cycle_valued:
            return
        offending = self._value_offends(node.value)
        if offending:
            self._emit(
                offending[0],
                f"the return value of cycle-valued '{self.scope_label}()'",
            )

    def _check_compare(self, node: ast.Compare) -> None:
        comparators = [node.left] + list(node.comparators)
        cycle_named = [
            c for c in comparators
            if self.name_re.search(_target_name(c) or "")
        ]
        if not cycle_named:
            return
        for other in comparators:
            if other in cycle_named:
                continue
            sources = _float_sources(other)
            if sources:
                self._emit(sources[0], "a comparison against a cycle value")
                return
            used = _names_in(other) & self.tainted
            if used:
                self._emit(
                    other,
                    f"a comparison against a cycle value (via tainted "
                    f"'{sorted(used)[0]}')",
                )
                return

    def _check_call_kwargs(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg and self.name_re.search(kw.arg):
                sources = _float_sources(kw.value)
                if sources:
                    self._emit(
                        sources[0], f"cycle-valued argument '{kw.arg}='"
                    )


@register
class CycleFloatChecker(Checker):
    id = "RL002"
    name = "integer-cycle-arithmetic"
    description = (
        "flags float division/casts/literals reaching cycle or timing "
        "expressions in simulated packages"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        packages = module.options.get("packages", _DEFAULT_PACKAGES)
        if not self.path_in_packages(module.path, packages):
            return []
        name_re = re.compile(
            module.options.get("cycle-name-pattern", _DEFAULT_NAME_PATTERN)
        )
        func_re = re.compile(
            module.options.get("cycle-func-pattern", _DEFAULT_FUNC_PATTERN)
        )
        findings: List[Finding] = []
        findings.extend(
            _ScopeScanner(self, module, None, name_re, func_re).run(
                module.tree.body
            )
        )
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    _ScopeScanner(self, module, node, name_re, func_re).run(
                        node.body
                    )
                )
        return findings

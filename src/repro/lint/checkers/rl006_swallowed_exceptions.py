"""RL006: no silently swallowed exceptions.

The resilience contract (docs/resilience.md) is that every failure
ends in a **typed error or a flagged degraded mode — never silence**.
Exception handlers that discard errors wholesale break that end to
end: a swallowed ``ProtocolError`` in the shaper pipeline is precisely
the "silent shaping violation" the whole layer exists to rule out.

Two handler shapes are flagged:

* a **bare** ``except:`` whose body does not re-raise — it catches
  everything including ``KeyboardInterrupt`` and ``SystemExit``;
* an ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose body is *only* ``pass``, ``...`` or ``continue`` — a
  catch-all that provably discards the error without recording,
  wrapping, or handling it.

Narrow typed handlers (``except OSError: pass`` around best-effort
cleanup) are allowed: naming the exception *is* the statement of
intent this checker asks for.  Catch-alls that log, wrap-and-re-raise,
or return a sentinel are likewise untouched — only the provably-silent
shapes are findings.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_DEFAULT_ALLOW_PATHS: List[str] = []

_HINT = (
    "catch a specific exception type, or handle the error (log it, wrap "
    "it in a typed repro.common.errors exception, flag degraded mode) — "
    "a silent catch-all hides exactly the failures the resilience "
    "contract requires to surface"
)

_CATCH_ALL_NAMES = ("Exception", "BaseException")


def _reraises(body: List[ast.stmt]) -> bool:
    """Does any statement in the handler body (re-)raise?"""
    return any(isinstance(n, ast.Raise) for n in ast.walk(ast.Module(
        body=body, type_ignores=[]
    )))


def _is_trivial_body(body: List[ast.stmt]) -> bool:
    """Only ``pass``/``...``/``continue`` statements — provably silent."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


def _names_catch_all(exc: ast.expr) -> bool:
    if isinstance(exc, ast.Name):
        return exc.id in _CATCH_ALL_NAMES
    if isinstance(exc, ast.Tuple):
        return any(_names_catch_all(e) for e in exc.elts)
    return False


@register
class SwallowedExceptionChecker(Checker):
    id = "RL006"
    name = "no-swallowed-exceptions"
    description = (
        "flags bare except: without re-raise, and except "
        "Exception/BaseException whose body only passes — silent "
        "catch-alls that break the typed-error-or-flagged contract"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        allow = module.options.get("allow-paths", _DEFAULT_ALLOW_PATHS)
        if self.path_matches(module.path, allow):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                if not _reraises(node.body):
                    findings.append(
                        module.finding(
                            self.id,
                            node,
                            "bare except: swallows every exception "
                            "(including KeyboardInterrupt) without "
                            "re-raising",
                            hint=_HINT,
                        )
                    )
            elif _names_catch_all(node.type) and _is_trivial_body(node.body):
                findings.append(
                    module.finding(
                        self.id,
                        node,
                        "except Exception with a pass-only body silently "
                        "discards the error",
                        hint=_HINT,
                    )
                )
        return findings

"""RL003: every ``tick()``-able component must publish its next event.

The next-event engine (DESIGN.md §4) may only jump the clock when it
knows a sound lower bound on each component's next state change.  A
class that defines ``tick()`` but not ``next_event_cycle()`` is a trap:
under ``engine="cycle"`` it works, under ``engine="next_event"`` the
engine cannot see its pending work and silently freezes it across a
skip — precisely the divergence the bit-identical guarantee forbids.

Any class in a simulated package that defines the tick method must
therefore either define ``next_event_cycle`` (directly, or via a base
class *in the same module* — cross-module inheritance is out of reach
for a single-file AST pass and should use the exemption list), or be
named in the ``exempt`` option / the baseline file with a
justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.registry import Checker, ModuleContext, register

_DEFAULT_PACKAGES = [
    "repro/dram",
    "repro/memctrl",
    "repro/core",
    "repro/noc",
    "repro/sim",
    "repro/cpu",
    "repro/ga",
]


def _methods_of(cls: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class NextEventContractChecker(Checker):
    id = "RL003"
    name = "next-event-contract"
    description = (
        "classes defining tick() in simulated packages must also define "
        "next_event_cycle() or be explicitly exempted"
    )

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        packages = module.options.get("packages", _DEFAULT_PACKAGES)
        if not self.path_in_packages(module.path, packages):
            return []
        tick_name = module.options.get("tick-method", "tick")
        required = module.options.get("required-method", "next_event_cycle")
        exempt = {name for name in module.options.get("exempt", [])}

        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        }
        satisfied: Set[str] = set()
        # Two passes so a base class later in the file still counts.
        for name, cls in classes.items():
            if required in _methods_of(cls):
                satisfied.add(name)
        changed = True
        while changed:
            changed = False
            for name, cls in classes.items():
                if name in satisfied:
                    continue
                for base in cls.bases:
                    base_name = (
                        base.id if isinstance(base, ast.Name)
                        else base.attr if isinstance(base, ast.Attribute)
                        else ""
                    )
                    if base_name in satisfied:
                        satisfied.add(name)
                        changed = True
                        break

        findings: List[Finding] = []
        for name, cls in classes.items():
            if tick_name not in _methods_of(cls):
                continue
            if name in satisfied or name in exempt:
                continue
            findings.append(
                module.finding(
                    self.id,
                    cls,
                    f"class '{name}' defines {tick_name}() but not "
                    f"{required}(): the next-event engine would freeze it "
                    "across clock skips",
                    hint=(
                        f"implement {required}() returning a sound lower "
                        "bound (or None when idle), or add the class to the "
                        "rl003 exemption list / baseline with a justification"
                    ),
                    key=name,
                )
            )
        return findings

"""Content-digest-keyed findings cache for the lint runner.

The interprocedural pass (RL007–RL009) re-reads and re-analyses the
whole project on every run; this cache keeps the warm-path cost of
``repro lint`` close to the pre-flow runtime by keying results on
*content*, never on timestamps:

* **per-module entries** — one per file, keyed on the file's source
  digest, its project-relative path, the effective configuration, and
  the set of per-module checkers that ran.  A file edit invalidates
  exactly that file's entry.
* **one whole-program entry** — keyed on the digest of *every*
  ``(path, source-digest)`` pair plus config and the flow-checker
  set, because a flow finding in module A can be caused by an edit in
  module B; any edit anywhere invalidates the flow entry.

Entries store findings *after* pragma filtering (pragmas live in the
source, so they are part of the key) together with the suppression
counts; the baseline is applied by the caller on every run — editing
``lint-baseline.txt`` must never require a cache flush.

Keys follow :class:`repro.parallel.ResultCache`: canonical-JSON
digests (:func:`repro.common.util.canonical_json_digest`) with a
two-level directory fan-out, written via
:func:`repro.resilience.snapshot.atomic_write_bytes` so a crashed or
concurrent run never leaves a torn entry.  A corrupt or unreadable
entry is treated as a miss.  ``CACHE_VERSION`` participates in every
key: bumping it (any change to checker logic, finding schema, or key
composition) orphans old entries instead of misreading them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import List, Optional, Sequence, Tuple

from repro.common.util import canonical_json_digest
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.resilience.snapshot import atomic_write_bytes

#: Bump on any change that alters findings for identical sources.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro-lint-cache"


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:32]


def config_digest(config: LintConfig) -> str:
    """Digest of every configuration field that can change findings."""
    return canonical_json_digest(
        {
            "baseline": None,  # applied post-cache; never part of the key
            "exclude": sorted(config.exclude),
            "severity": {
                cid: str(sev)
                for cid, sev in config.severity_overrides.items()
            },
            "disable_per_path": {
                pat: sorted(ids)
                for pat, ids in config.disable_per_path.items()
            },
            "options": config.checker_options,
        }
    )


class FindingsCache:
    """Digest-keyed findings store under ``<root>/.repro-lint-cache``."""

    def __init__(self, root: str, subdir: str = DEFAULT_CACHE_DIR) -> None:
        self.dir = os.path.join(root, subdir)

    # -- keys --------------------------------------------------------------

    def module_key(
        self,
        rel_path: str,
        src_digest: str,
        cfg_digest: str,
        checker_ids: Sequence[str],
    ) -> str:
        return canonical_json_digest(
            {
                "v": CACHE_VERSION,
                "kind": "module",
                "path": rel_path,
                "source": src_digest,
                "config": cfg_digest,
                "checkers": sorted(checker_ids),
            }
        )

    def flow_key(
        self,
        file_digests: Sequence[Tuple[str, str]],
        cfg_digest: str,
        checker_ids: Sequence[str],
    ) -> str:
        return canonical_json_digest(
            {
                "v": CACHE_VERSION,
                "kind": "flow",
                "files": sorted(file_digests),
                "config": cfg_digest,
                "checkers": sorted(checker_ids),
            }
        )

    # -- storage -----------------------------------------------------------

    def _path_for(self, key: str) -> str:
        return os.path.join(self.dir, key[:2], key + ".json")

    def load(self, key: str) -> Optional[Tuple[List[Finding], int]]:
        """Cached ``(findings, pragma_suppressed)`` or None on miss."""
        try:
            with open(self._path_for(key), "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            findings = [Finding.from_dict(f) for f in doc["findings"]]
            return findings, int(doc["pragma_suppressed"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(
        self, key: str, findings: Sequence[Finding], pragma_suppressed: int
    ) -> None:
        payload = json.dumps(
            {
                "v": CACHE_VERSION,
                "findings": [f.as_dict() for f in findings],
                "pragma_suppressed": pragma_suppressed,
            },
            sort_keys=True,
        ).encode("utf-8")
        path = self._path_for(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            atomic_write_bytes(path, payload)
        except OSError:
            # A read-only checkout degrades to cold runs, not failures.
            pass

"""Lint configuration: the ``[tool.repro-lint]`` table in pyproject.toml.

Layout (all keys optional — defaults reproduce the shipped repo
policy)::

    [tool.repro-lint]
    baseline = "lint-baseline.txt"
    exclude = ["src/repro/_vendored"]

    [tool.repro-lint.severity]
    RL004 = "error"

    [tool.repro-lint.disable-per-path]
    "repro/analysis/*" = ["RL002"]

    [tool.repro-lint.rl001]
    allow-paths = ["repro/common/rng.py"]

Per-checker tables (``rl001`` .. ``rl009``) are passed verbatim to the
checker as its ``options`` dict.  The shared ``[tool.repro-lint.flow]``
table carries project-wide vocabulary for the interprocedural checkers
(RL007–RL009), e.g. extra ``sanitizers`` unioned with RL007's own list
and the ``# repro-lint: sanitizer=`` pragmas.

Python 3.11+ parses with :mod:`tomllib`; on 3.9/3.10 (no tomllib, and
the container policy forbids adding ``tomli``) a minimal TOML-subset
reader handles the shapes above: tables, strings, string/int arrays
(single- or multi-line), ints, and booleans.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lint.findings import Severity

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 CI only
    tomllib = None


@dataclass
class LintConfig:
    """Resolved configuration for one lint run."""

    project_root: str = "."
    baseline_path: Optional[str] = "lint-baseline.txt"
    exclude: List[str] = field(default_factory=list)
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    disable_per_path: Dict[str, List[str]] = field(default_factory=dict)
    checker_options: Dict[str, dict] = field(default_factory=dict)

    def options_for(self, checker_id: str) -> dict:
        return self.checker_options.get(checker_id.lower(), {})

    def severity_for(self, checker_id: str, default: Severity) -> Severity:
        return self.severity_overrides.get(checker_id.upper(), default)

    def disabled_for_path(self, path: str) -> List[str]:
        """Checker ids disabled for ``path`` by per-path globs."""
        disabled: List[str] = []
        for pattern, ids in self.disable_per_path.items():
            pat = pattern.strip("/")
            if fnmatch.fnmatch(path, pat) or fnmatch.fnmatch(path, "*/" + pat):
                disabled.extend(i.upper() for i in ids)
        return disabled

    def is_excluded(self, path: str) -> bool:
        for pattern in self.exclude:
            pat = pattern.strip("/")
            if fnmatch.fnmatch(path, pat) or fnmatch.fnmatch(path, pat + "/*"):
                return True
        return False


def find_project_root(start: str) -> str:
    """Walk up from ``start`` to the nearest dir holding pyproject.toml."""
    current = os.path.abspath(start)
    while True:
        if os.path.isfile(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.abspath(start)
        current = parent


def load_config(project_root: str) -> LintConfig:
    """Read ``[tool.repro-lint]`` from ``project_root/pyproject.toml``."""
    pyproject = os.path.join(project_root, "pyproject.toml")
    table: dict = {}
    if os.path.isfile(pyproject):
        with open(pyproject, "rb") as fh:
            raw = fh.read()
        if tomllib is not None:
            data = tomllib.loads(raw.decode("utf-8"))
        else:
            data = _tiny_toml(raw.decode("utf-8"))
        table = data.get("tool", {}).get("repro-lint", {})
    return config_from_table(table, project_root)


def config_from_table(table: dict, project_root: str = ".") -> LintConfig:
    config = LintConfig(project_root=project_root)
    if "baseline" in table:
        config.baseline_path = table["baseline"] or None
    config.exclude = list(table.get("exclude", []))
    for cid, sev in table.get("severity", {}).items():
        config.severity_overrides[cid.upper()] = Severity.parse(str(sev))
    for pattern, ids in table.get("disable-per-path", {}).items():
        config.disable_per_path[pattern] = list(ids)
    for key, value in table.items():
        # Per-checker tables (rl001..rl009) plus the shared [*.flow]
        # table the flow checkers read for project-wide vocabulary
        # (extra sanitizers, etc.).
        if isinstance(value, dict) and (
            key.lower().startswith("rl") or key.lower() == "flow"
        ):
            config.checker_options[key.lower()] = value
    return config


# -- minimal TOML subset (3.9/3.10 fallback) -------------------------------


def _tiny_toml(text: str) -> dict:
    """Parse the TOML subset repro-lint's own config uses.

    Supports ``[dotted.table]`` headers, ``key = value`` with string,
    int, bool, and (possibly multi-line) array values, quoted keys,
    and ``#`` comments.  Inside ``[tool.repro-lint*]`` tables an
    unparseable value raises ``ValueError`` so a config typo fails
    loudly instead of silently linting with defaults; everywhere else
    (pyproject sections we don't own, e.g. inline tables in
    ``[tool.setuptools]``) unsupported values are skipped.
    """
    root: dict = {}
    current = root
    strict = False
    pending_key: Optional[str] = None
    pending_value = ""

    def assign(table: dict, key: str, value: str, strict_here: bool) -> None:
        try:
            table[key] = _parse_value(value)
        except ValueError:
            if strict_here:
                raise

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if pending_key is not None:
            pending_value += " " + line
            if _array_closed(pending_value):
                assign(current, pending_key, pending_value, strict)
                pending_key, pending_value = None, ""
            continue
        line = _strip_comment(line)
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            dotted = line[1:-1].strip()
            current = _descend(root, dotted)
            strict = dotted.startswith("tool.repro-lint")
            continue
        if "=" not in line:
            if strict:
                raise ValueError(f"unparseable TOML line: {raw_line!r}")
            continue
        key, _, value = line.partition("=")
        key = _unquote(key.strip())
        value = value.strip()
        if value.startswith("[") and not _array_closed(value):
            pending_key, pending_value = key, value
        else:
            assign(current, key, value, strict)
    if pending_key is not None:
        raise ValueError(f"unterminated array for key {pending_key!r}")
    return root


def _descend(root: dict, dotted: str) -> dict:
    node = root
    for part in _split_dotted(dotted):
        node = node.setdefault(part, {})
    return node


def _split_dotted(dotted: str) -> List[str]:
    parts: List[str] = []
    buf = ""
    quote = ""
    for ch in dotted:
        if quote:
            if ch == quote:
                quote = ""
            else:
                buf += ch
        elif ch in "\"'":
            quote = ch
        elif ch == ".":
            parts.append(buf.strip())
            buf = ""
        else:
            buf += ch
    parts.append(buf.strip())
    return [p for p in parts if p]


def _strip_comment(line: str) -> str:
    quote = ""
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            return line[:i].strip()
    return line.strip()


def _array_closed(value: str) -> bool:
    depth = 0
    quote = ""
    for ch in value:
        if quote:
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
        elif ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
    return depth == 0


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "\"'":
        return token[1:-1]
    return token


def _parse_value(value: str):
    value = _strip_comment(value.strip())
    if value.startswith("[") and value.endswith("]"):
        return [_parse_value(item) for item in _split_array(value[1:-1])]
    if value in ("true", "false"):
        return value == "true"
    if len(value) >= 2 and value[0] == value[-1] and value[0] in "\"'":
        return value[1:-1]
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"unsupported TOML value: {value!r}") from None


def _split_array(inner: str) -> List[str]:
    items: List[str] = []
    buf = ""
    quote = ""
    depth = 0
    for ch in inner:
        if quote:
            buf += ch
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
            buf += ch
        elif ch == "[":
            depth += 1
            buf += ch
        elif ch == "]":
            depth -= 1
            buf += ch
        elif ch == "," and depth == 0:
            if buf.strip():
                items.append(buf.strip())
            buf = ""
        else:
            buf += ch
    if buf.strip():
        items.append(buf.strip())
    return items

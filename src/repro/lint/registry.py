"""Checker registry: the extension point of :mod:`repro.lint`.

A checker subclasses :class:`Checker`, declares an ``id`` (``RLnnn``),
and implements :meth:`Checker.check_module` over a parsed
:class:`ModuleContext`.  Decorating the class with :func:`register`
makes it discoverable; the runner instantiates every registered
checker once per run.  See ``docs/static-analysis.md`` for the full
recipe for adding one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Type

from repro.lint.findings import Finding, Severity


@dataclass
class ModuleContext:
    """Everything a checker needs to analyse one module.

    ``path`` is project-root-relative with forward slashes; checkers
    match their per-path options (package scopes, allow lists) against
    it.  ``options`` is this checker's table from ``[tool.repro-lint]``
    (already lower-cased keys), and ``severity`` the effective severity
    after any config override.
    """

    path: str
    tree: ast.Module
    source: str
    options: dict
    severity: Severity

    def finding(
        self,
        checker_id: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        key: str = "",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            checker_id=checker_id,
            severity=self.severity,
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=hint,
            key=key,
        )


class Checker:
    """Base class for all checkers."""

    id: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def path_in_packages(path: str, packages: Iterable[str]) -> bool:
        """True when ``path`` lives under any of the package prefixes.

        Prefixes are matched against the tail of the path so configs
        can say ``repro/dram`` regardless of the source root name.
        """
        for prefix in packages:
            prefix = prefix.strip("/")
            if not prefix:
                return True
            if path.startswith(prefix + "/") or f"/{prefix}/" in f"/{path}":
                return True
        return False

    @staticmethod
    def path_matches(path: str, candidates: Iterable[str]) -> bool:
        """True when ``path`` ends with any candidate path suffix."""
        return any(
            path == c or path.endswith("/" + c.lstrip("/")) for c in candidates
        )


class FlowChecker(Checker):
    """Base class for whole-program (interprocedural) checkers.

    Flow checkers see the entire :class:`repro.lint.flow.FlowProject`
    at once instead of one module at a time; the runner invokes
    :meth:`check_project` exactly once per run, after the per-module
    pass.  ``check_module`` is a no-op so a flow checker can share the
    registry and id space (RLnnn) with the local checkers.
    """

    def check_module(self, module: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        """Analyse a :class:`repro.lint.flow.FlowProject`."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} must declare an id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate checker id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_checkers() -> List[Checker]:
    """Instantiate every registered checker, sorted by id."""
    import repro.lint.checkers  # noqa: F401  (registration side effect)

    return [_REGISTRY[cid]() for cid in sorted(_REGISTRY)]


def get_checker(checker_id: str) -> Optional[Checker]:
    import repro.lint.checkers  # noqa: F401

    cls = _REGISTRY.get(checker_id)
    return cls() if cls else None

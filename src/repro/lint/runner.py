"""The lint driver: walk files, run checkers, filter, render, exit.

Public surface:

* :func:`run` — programmatic entry returning an exit code, used by the
  ``repro lint`` CLI subcommand.
* :func:`main` — argparse front end behind ``python -m repro.lint``.
* :func:`lint_paths` / :func:`lint_source` — library API the test
  suite drives directly.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Iterable, List, Optional, Sequence

from repro.lint.baseline import Baseline, BaselineFormatError, load_baseline
from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.findings import Finding, LintResult, Severity, sort_findings
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import ModuleContext, all_checkers


def iter_python_files(paths: Sequence[str], config: LintConfig) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git")
                and not config.is_excluded(_rel_path(
                    os.path.join(dirpath, d), config.project_root))
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(set(found))


def _rel_path(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return rel.replace(os.sep, "/")


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as text (the unit-test entry point)."""
    findings, _ = _lint_module(source, rel_path, config, select)
    return findings


def _lint_module(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
):
    """Lint one module; returns (findings, pragma_suppressed_count)."""
    config = config or LintConfig()
    selected = {s.upper() for s in select} if select else None
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                checker_id="RL000",
                severity=Severity.ERROR,
                path=rel_path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
                key="syntax-error",
            )
        ], 0
    disabled_per_path = set(config.disabled_for_path(rel_path))
    pragma_map = parse_pragmas(source)
    findings: List[Finding] = []
    for checker in all_checkers():
        if selected is not None and checker.id not in selected:
            continue
        if checker.id in disabled_per_path:
            continue
        module = ModuleContext(
            path=rel_path,
            tree=tree,
            source=source,
            options=config.options_for(checker.id),
            severity=config.severity_for(checker.id, checker.default_severity),
        )
        for finding in checker.check_module(module):
            findings.append(finding)
    kept = [
        f for f in findings
        if not is_suppressed(pragma_map, f.line, f.checker_id)
    ]
    return kept, len(findings) - len(kept)


def lint_paths(
    paths: Sequence[str],
    config: LintConfig,
    baseline: Optional[Baseline] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files/directories and apply the baseline."""
    result = LintResult()
    for file_path in iter_python_files(paths, config):
        rel = _rel_path(file_path, config.project_root)
        if config.is_excluded(rel):
            continue
        with open(file_path, "r", encoding="utf-8") as fh:
            source = fh.read()
        file_findings, pragma_hits = _lint_module(source, rel, config, select)
        result.pragma_suppressed += pragma_hits
        result.files_checked += 1
        for finding in file_findings:
            if baseline is not None and baseline.suppresses(finding):
                result.baseline_suppressed += 1
            else:
                result.findings.append(finding)
    result.findings = sort_findings(result.findings)
    if baseline is not None:
        result.unused_baseline = baseline.unused_entries()
    return result


# -- rendering -------------------------------------------------------------


def render_text(result: LintResult, out=None) -> None:
    out = out or sys.stdout
    for finding in result.findings:
        print(finding.as_text(), file=out)
    for entry in result.unused_baseline:
        print(
            f"note: unused baseline entry {entry.suppression_key} "
            f"({(entry.path if not entry.justification else entry.justification)!r})"
            " — remove it",
            file=out,
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    suppressed = result.pragma_suppressed + result.baseline_suppressed
    if suppressed:
        summary += (
            f" ({result.pragma_suppressed} pragma-suppressed, "
            f"{result.baseline_suppressed} baseline-suppressed)"
        )
    print(summary, file=out)


def render_json(result: LintResult, out=None) -> None:
    out = out or sys.stdout
    payload = {
        "findings": [f.as_dict() for f in result.findings],
        "files_checked": result.files_checked,
        "pragma_suppressed": result.pragma_suppressed,
        "baseline_suppressed": result.baseline_suppressed,
        "unused_baseline": [e.suppression_key for e in result.unused_baseline],
        "exit_code": result.exit_code,
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


# -- CLI -------------------------------------------------------------------


def build_arg_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "repro-lint: AST-based invariant checks for simulator "
            "soundness (determinism, integer cycle math, the next-event "
            "contract, shared-state hazards)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file (default: from [tool.repro-lint] baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker catalog and exit",
    )
    return parser


def run(
    paths: Sequence[str],
    output_format: str = "text",
    baseline_path: Optional[str] = None,
    no_baseline: bool = False,
    select: Optional[str] = None,
    list_checkers: bool = False,
    out=None,
) -> int:
    """Programmatic entry point; returns the process exit code."""
    out = out or sys.stdout
    if list_checkers:
        for checker in all_checkers():
            print(
                f"{checker.id}  {checker.name}  [{checker.default_severity}]"
                f"  {checker.description}",
                file=out,
            )
        return 0
    anchor = paths[0] if paths else "."
    root = find_project_root(anchor if os.path.isdir(anchor)
                             else os.path.dirname(anchor) or ".")
    config = load_config(root)
    baseline: Optional[Baseline] = None
    if not no_baseline:
        chosen = baseline_path or config.baseline_path
        if chosen:
            if not os.path.isabs(chosen):
                chosen = os.path.join(root, chosen)
            try:
                baseline = load_baseline(chosen)
            except BaselineFormatError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    selected = [s for s in (select or "").split(",") if s.strip()] or None
    result = lint_paths(paths, config, baseline=baseline, select=selected)
    if output_format == "json":
        render_json(result, out)
    else:
        render_text(result, out)
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing and not args.list_checkers:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    return run(
        paths=args.paths,
        output_format=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        select=args.select,
        list_checkers=args.list_checkers,
    )

"""The lint driver: walk files, run checkers, filter, render, exit.

Two passes per run:

1. **per-module** — every :class:`~repro.lint.registry.Checker` sees
   one parsed module at a time (RL001–RL006);
2. **whole-program** — every :class:`~repro.lint.registry.FlowChecker`
   sees the full :class:`~repro.lint.flow.FlowProject` once
   (RL007–RL009), after all files are read, so findings can follow
   flows across modules.

Public surface:

* :func:`run` — programmatic entry returning an exit code, used by the
  ``repro lint`` CLI subcommand.  Uses the findings cache by default.
* :func:`main` — argparse front end behind ``python -m repro.lint``.
* :func:`lint_paths` / :func:`lint_source` — library API the test
  suite drives directly (cache off unless passed in).  ``lint_source``
  runs the flow pass over the single module, so interprocedural
  checkers are unit-testable one source string at a time.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline, BaselineFormatError, load_baseline
from repro.lint.cache import FindingsCache, config_digest, source_digest
from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.findings import Finding, LintResult, Severity, sort_findings
from repro.lint.pragmas import is_suppressed, parse_pragmas
from repro.lint.registry import FlowChecker, ModuleContext, all_checkers


def iter_python_files(paths: Sequence[str], config: LintConfig) -> List[str]:
    """Expand files/directories into a sorted list of .py files."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git")
                and not config.is_excluded(_rel_path(
                    os.path.join(dirpath, d), config.project_root))
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(set(found))


def _rel_path(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return rel.replace(os.sep, "/")


def _split_checkers(select: Optional[Iterable[str]]):
    """(per-module checkers, flow checkers) honouring ``--select``."""
    selected = {s.upper() for s in select} if select else None
    local, flow = [], []
    for checker in all_checkers():
        if selected is not None and checker.id not in selected:
            continue
        (flow if isinstance(checker, FlowChecker) else local).append(checker)
    return local, flow


def _time_call(timings: Optional[Dict[str, float]], checker_id: str):
    """Context manager accumulating wall-clock per checker id."""

    class _Timer:
        def __enter__(self):
            if timings is not None:
                # repro-lint: disable-next-line=RL001
                import time

                # Wall clock is fine here: --timings is diagnostic
                # tooling output, never simulated behaviour.
                # repro-lint: disable-next-line=RL001
                self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc):
            if timings is not None:
                # repro-lint: disable-next-line=RL001
                import time

                # repro-lint: disable-next-line=RL001
                elapsed = time.perf_counter() - self._t0
                timings[checker_id] = timings.get(checker_id, 0.0) + elapsed
            return False

    return _Timer()


def lint_source(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as text (the unit-test entry point).

    Runs both passes: flow checkers see a one-module project, which is
    exactly what the fixture tests feed them.
    """
    config = config or LintConfig()
    findings, _ = _lint_module(source, rel_path, config, select)
    flow_findings, _ = _run_flow_pass(
        [(rel_path, source)], config, select
    )
    return findings + flow_findings


def _lint_module(
    source: str,
    rel_path: str,
    config: Optional[LintConfig] = None,
    select: Optional[Iterable[str]] = None,
    timings: Optional[Dict[str, float]] = None,
):
    """Per-module pass; returns (findings, pragma_suppressed_count)."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                checker_id="RL000",
                severity=Severity.ERROR,
                path=rel_path,
                line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
                key="syntax-error",
            )
        ], 0
    disabled_per_path = set(config.disabled_for_path(rel_path))
    pragma_map = parse_pragmas(source)
    local, _flow = _split_checkers(select)
    findings: List[Finding] = []
    for checker in local:
        if checker.id in disabled_per_path:
            continue
        module = ModuleContext(
            path=rel_path,
            tree=tree,
            source=source,
            options=config.options_for(checker.id),
            severity=config.severity_for(checker.id, checker.default_severity),
        )
        with _time_call(timings, checker.id):
            for finding in checker.check_module(module):
                findings.append(finding)
    kept = [
        f for f in findings
        if not is_suppressed(pragma_map, f.line, f.checker_id)
    ]
    return kept, len(findings) - len(kept)


def _run_flow_pass(
    sources: Sequence[Tuple[str, str]],
    config: LintConfig,
    select: Optional[Iterable[str]] = None,
    timings: Optional[Dict[str, float]] = None,
):
    """Whole-program pass; returns (findings, pragma_suppressed_count).

    Findings are filtered through the same pragma and per-path-disable
    machinery as the per-module pass, keyed by each finding's own
    path.
    """
    _local, flow = _split_checkers(select)
    if not flow:
        return [], 0
    from repro.lint.flow import FlowProject

    project = FlowProject.from_sources(sources, config=config)
    raw: List[Finding] = []
    for checker in flow:
        with _time_call(timings, checker.id):
            raw.extend(checker.check_project(project))
    pragma_maps = {
        path: parse_pragmas(source) for path, source in sources
    }
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        if finding.checker_id in set(config.disabled_for_path(finding.path)):
            continue
        if is_suppressed(
            pragma_maps.get(finding.path, {}), finding.line,
            finding.checker_id,
        ):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def lint_paths(
    paths: Sequence[str],
    config: LintConfig,
    baseline: Optional[Baseline] = None,
    select: Optional[Iterable[str]] = None,
    cache: Optional[FindingsCache] = None,
    timings: Optional[Dict[str, float]] = None,
) -> LintResult:
    """Lint files/directories and apply the baseline.

    With a ``cache``, per-module results are keyed on each file's
    content digest and the whole-program (flow) result on the digest
    of every file — see :mod:`repro.lint.cache`.  The baseline is
    applied after the cache on every run.
    """
    local_ids = [c.id for c in _split_checkers(select)[0]]
    flow_ids = [c.id for c in _split_checkers(select)[1]]
    cfg_digest = config_digest(config) if cache is not None else ""

    result = LintResult()
    sources: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths, config):
        rel = _rel_path(file_path, config.project_root)
        if config.is_excluded(rel):
            continue
        with open(file_path, "r", encoding="utf-8") as fh:
            sources.append((rel, fh.read()))

    pre_baseline: List[Finding] = []
    for rel, source in sources:
        result.files_checked += 1
        cached = None
        key = ""
        if cache is not None:
            key = cache.module_key(
                rel, source_digest(source), cfg_digest, local_ids
            )
            cached = cache.load(key)
        if cached is not None:
            file_findings, pragma_hits = cached
        else:
            file_findings, pragma_hits = _lint_module(
                source, rel, config, select, timings=timings
            )
            if cache is not None:
                cache.store(key, file_findings, pragma_hits)
        result.pragma_suppressed += pragma_hits
        pre_baseline.extend(file_findings)

    if flow_ids:
        cached = None
        key = ""
        if cache is not None:
            key = cache.flow_key(
                [(rel, source_digest(src)) for rel, src in sources],
                cfg_digest,
                flow_ids,
            )
            cached = cache.load(key)
        if cached is not None:
            flow_findings, pragma_hits = cached
        else:
            flow_findings, pragma_hits = _run_flow_pass(
                sources, config, select, timings=timings
            )
            if cache is not None:
                cache.store(key, flow_findings, pragma_hits)
        result.pragma_suppressed += pragma_hits
        pre_baseline.extend(flow_findings)

    for finding in pre_baseline:
        if baseline is not None and baseline.suppresses(finding):
            result.baseline_suppressed += 1
        else:
            result.findings.append(finding)
    result.findings = sort_findings(result.findings)
    if baseline is not None:
        result.unused_baseline = baseline.unused_entries()
    return result


# -- rendering -------------------------------------------------------------


def render_text(result: LintResult, out=None) -> None:
    out = out or sys.stdout
    for finding in result.findings:
        print(finding.as_text(), file=out)
    for entry in result.unused_baseline:
        print(
            f"note: unused baseline entry {entry.suppression_key} "
            f"({(entry.path if not entry.justification else entry.justification)!r})"
            " — remove it",
            file=out,
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    suppressed = result.pragma_suppressed + result.baseline_suppressed
    if suppressed:
        summary += (
            f" ({result.pragma_suppressed} pragma-suppressed, "
            f"{result.baseline_suppressed} baseline-suppressed)"
        )
    print(summary, file=out)


def render_json(result: LintResult, out=None) -> None:
    out = out or sys.stdout
    payload = {
        "findings": [f.as_dict() for f in result.findings],
        "files_checked": result.files_checked,
        "pragma_suppressed": result.pragma_suppressed,
        "baseline_suppressed": result.baseline_suppressed,
        "unused_baseline": [e.suppression_key for e in result.unused_baseline],
        "exit_code": result.exit_code,
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def render_timings(timings: Dict[str, float], out=None) -> None:
    """Per-checker wall-clock table (``--timings``), slowest first.

    Cache hits skip checker execution entirely, so a warm run shows
    (near-)zero rows — that asymmetry is the point of the flag.
    """
    out = out or sys.stderr
    total = sum(timings.values())
    print("checker timings (wall clock):", file=out)
    for cid in sorted(timings, key=lambda c: (-timings[c], c)):
        print(f"  {cid:<8} {timings[cid] * 1000.0:9.1f} ms", file=out)
    print(f"  {'total':<8} {total * 1000.0:9.1f} ms", file=out)


# -- CLI -------------------------------------------------------------------


def build_arg_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "repro-lint: AST-based invariant checks for simulator "
            "soundness (determinism, integer cycle math, the next-event "
            "contract, shared-state hazards, and whole-program flow "
            "checks for secret-independence)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--select", metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file (default: from [tool.repro-lint] baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-digest findings cache",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print per-checker wall-clock times to stderr",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="print the checker catalog and exit",
    )
    return parser


def run(
    paths: Sequence[str],
    output_format: str = "text",
    baseline_path: Optional[str] = None,
    no_baseline: bool = False,
    select: Optional[str] = None,
    list_checkers: bool = False,
    no_cache: bool = False,
    timings: bool = False,
    out=None,
) -> int:
    """Programmatic entry point; returns the process exit code."""
    out = out or sys.stdout
    if list_checkers:
        for checker in all_checkers():
            kind = "flow" if isinstance(checker, FlowChecker) else "module"
            print(
                f"{checker.id}  {checker.name}  [{checker.default_severity}]"
                f"  ({kind})  {checker.description}",
                file=out,
            )
        return 0
    anchor = paths[0] if paths else "."
    root = find_project_root(anchor if os.path.isdir(anchor)
                             else os.path.dirname(anchor) or ".")
    config = load_config(root)
    baseline: Optional[Baseline] = None
    if not no_baseline:
        chosen = baseline_path or config.baseline_path
        if chosen:
            if not os.path.isabs(chosen):
                chosen = os.path.join(root, chosen)
            try:
                baseline = load_baseline(chosen)
            except BaselineFormatError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    selected = [s for s in (select or "").split(",") if s.strip()] or None
    cache = None if no_cache else FindingsCache(root)
    timing_table: Optional[Dict[str, float]] = {} if timings else None
    result = lint_paths(
        paths, config, baseline=baseline, select=selected,
        cache=cache, timings=timing_table,
    )
    if output_format == "json":
        render_json(result, out)
    elif output_format == "sarif":
        from repro.lint.sarif import render_sarif

        render_sarif(result, out)
    else:
        render_text(result, out)
    if timing_table is not None:
        render_timings(timing_table)
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing and not args.list_checkers:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    return run(
        paths=args.paths,
        output_format=args.format,
        baseline_path=args.baseline,
        no_baseline=args.no_baseline,
        select=args.select,
        list_checkers=args.list_checkers,
        no_cache=args.no_cache,
        timings=args.timings,
    )

"""The module universe a flow checker analyses.

A :class:`FlowProject` owns every parsed module of one lint run, keyed
by project-root-relative path, plus the per-checker options and
severity resolution the per-module :class:`~repro.lint.registry
.ModuleContext` provides for the local checkers.  Building it parses
each file exactly once; the call graph and function index are derived
lazily and shared by every flow checker in the run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding, FlowStep, Severity

#: ``# repro-lint: sanitizer=RL007`` (comma-separated ids) on a
#: ``def`` line — or the line directly above it — declares the
#: function a trusted interface for those checkers: taint does not
#: enter, propagate through, or originate inside it.
_SANITIZER_RE = re.compile(
    r"#\s*repro-lint:\s*sanitizer\s*=\s*([A-Za-z0-9_,\s]+)"
)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a project-relative file path.

    ``src/repro/core/shaper.py`` → ``repro.core.shaper``;
    ``__init__.py`` maps to its package.  Paths outside a recognisable
    source root still get a stable dotted name from their components.
    """
    parts = path.replace("\\", "/").split("/")
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def parse_sanitizer_pragmas(source: str) -> Dict[int, Tuple[str, ...]]:
    """Map 1-based line number -> checker ids declared sanitized there.

    Both the ``def`` line itself and the line above it are accepted
    anchors, so the pragma can sit on its own comment line.
    """
    out: Dict[int, Tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        match = _SANITIZER_RE.search(line)
        if match:
            ids = tuple(
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            )
            out[lineno] = ids
    return out


@dataclass
class ProjectModule:
    """One parsed module of the project."""

    path: str
    module: str
    tree: ast.Module
    source: str
    #: line -> checker ids from ``sanitizer=`` pragmas in this module.
    sanitizer_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ProjectModule":
        return cls(
            path=path,
            module=module_name_for_path(path),
            tree=ast.parse(source, filename=path),
            source=source,
            sanitizer_lines=parse_sanitizer_pragmas(source),
        )


class FlowProject:
    """Everything a flow checker needs to analyse the whole program."""

    def __init__(
        self,
        modules: Iterable[ProjectModule],
        config=None,
    ) -> None:
        self.modules: Dict[str, ProjectModule] = {}
        for mod in modules:
            self.modules[mod.path] = mod
        self._config = config
        self._index = None
        self._callgraph = None

    @classmethod
    def from_sources(
        cls, sources: Iterable[Tuple[str, str]], config=None
    ) -> "FlowProject":
        """Build from ``(rel_path, source)`` pairs, skipping files that
        do not parse (the per-module pass reports those as RL000)."""
        modules: List[ProjectModule] = []
        for path, source in sources:
            try:
                modules.append(ProjectModule.parse(path, source))
            except SyntaxError:
                continue
        return cls(modules, config=config)

    # -- config plumbing ---------------------------------------------------

    def options_for(self, checker_id: str) -> dict:
        if self._config is None:
            return {}
        return self._config.options_for(checker_id)

    def severity_for(self, checker_id: str, default: Severity) -> Severity:
        if self._config is None:
            return default
        return self._config.severity_for(checker_id, default)

    # -- derived structure (built once, shared by all flow checkers) -------

    @property
    def index(self):
        if self._index is None:
            from repro.lint.flow.summaries import build_index

            self._index = build_index(self)
        return self._index

    @property
    def callgraph(self):
        if self._callgraph is None:
            from repro.lint.flow.callgraph import CallGraph

            self._callgraph = CallGraph(self, self.index)
        return self._callgraph

    # -- finding construction ----------------------------------------------

    def finding(
        self,
        checker_id: str,
        path: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        key: str = "",
        flow: Tuple[FlowStep, ...] = (),
        default_severity: Severity = Severity.ERROR,
    ) -> Finding:
        return Finding(
            checker_id=checker_id,
            severity=self.severity_for(checker_id, default_severity),
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=hint,
            key=key,
            flow=flow,
        )

    def module_for(self, path: str) -> Optional[ProjectModule]:
        return self.modules.get(path)

"""The configurable interprocedural taint engine.

A checker declares a :class:`TaintSpec` — *sources* (attribute reads
and calls that introduce tainted data), *sinks* (function returns,
attribute writes, call arguments that tainted data must never reach)
and *sanitizers* (trusted interfaces that launder taint) — and the
:class:`TaintEngine` computes a fixed point over the whole project:

* **attribute accesses** are tracked field-based (by attribute name,
  class-qualified when the receiver is ``self``): storing tainted
  data in ``self.x`` taints every later read of ``.x``;
* **call edges** propagate taint from arguments into the callee's
  parameters and from the callee's return back to the call site, over
  the :class:`~repro.lint.flow.callgraph.CallGraph`'s resolved edges;
* **container writes** (``lst[i] = secret``, ``d[k] = secret``,
  ``lst.append(secret)`` via unknown-call propagation) taint the
  container;
* **unknown callees** (builtins, stdlib, numpy) conservatively
  propagate taint from any argument to the result — ``len(tainted)``
  and ``max(cycle, tainted)`` stay tainted.

Only *explicit* (data) flows are tracked: a value computed under a
tainted branch condition is **not** tainted (``if self._buffer:``
gating which clean bound to return is sanctioned; returning
``len(self._buffer)`` is not).  This matches the secret-independence
argument in docs/security.md — the checker polices the values that
become externally visible timing, not the simulator's internal
control flow.

Facts are monotone (a symbol never becomes un-tainted and its first
witness is kept), so the fixed point terminates on cyclic call graphs
and recursive functions.  Each tainted fact carries a witness chain
from which findings reconstruct the full source→sink flow path.

Sanitizer precedence: a call that matches both a source and a
sanitizer pattern is clean, and a function *declared* a sanitizer
(``# repro-lint: sanitizer=RLnnn`` or a spec pattern) is fully
opaque — taint neither enters it, propagates through it, nor
originates inside its body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import FlowStep
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.project import FlowProject
from repro.lint.flow.summaries import FunctionInfo, ProjectIndex

#: Witness chains longer than this are truncated in reports (the fixed
#: point itself is unaffected — facts stay monotone).
_MAX_FLOW_STEPS = 24

#: Inner (per-function, flow-insensitive) iteration cap; locals
#: stabilise in two passes for straight-line code, a few more under
#: mutually-dependent assignments.
_MAX_LOCAL_ROUNDS = 10

#: Outer whole-program rounds; each round re-analyses every function
#: against the grown fact base.
_MAX_GLOBAL_ROUNDS = 50


@dataclass(frozen=True)
class Witness:
    """One link of a taint provenance chain (source-most link last)."""

    path: str
    line: int
    note: str
    prev: Optional["Witness"] = None

    def extend(self, path: str, line: int, note: str) -> "Witness":
        return Witness(path=path, line=line, note=note, prev=self)

    def steps(self) -> Tuple[FlowStep, ...]:
        chain: List[FlowStep] = []
        node: Optional[Witness] = self
        while node is not None and len(chain) < _MAX_FLOW_STEPS:
            chain.append(FlowStep(node.path, node.line, node.note))
            node = node.prev
        chain.reverse()
        return tuple(chain)

    @property
    def origin(self) -> "Witness":
        node = self
        while node.prev is not None:
            node = node.prev
        return node


@dataclass
class TaintSpec:
    """Source/sink/sanitizer declaration for one flow checker.

    Patterns are dotted-name globs (:func:`fnmatch.fnmatchcase`, where
    ``*`` crosses dots).  Attribute patterns are ``Class.attr`` or
    ``*.attr``; an attribute read through a receiver whose class is
    unknown matches on the attribute part alone (conservative).
    Call/function patterns match the resolved project qualname *and*
    the alias-canonicalised dotted call text, so
    ``repro.core.bins.*`` and ``*.interval_for_demand`` both work.
    ``sink_call_args`` entries are ``<callee-pattern>:<param-name>``
    (``*`` for any parameter).
    """

    checker_id: str
    source_attrs: Sequence[str] = ()
    source_calls: Sequence[str] = ()
    sink_returns: Sequence[str] = ()
    sink_attr_writes: Sequence[str] = ()
    sink_call_args: Sequence[str] = ()
    sanitizers: Sequence[str] = ()
    #: Attributes declared always-clean: reads return no taint and
    #: writes are dropped.  Use for shared infrastructure fields that
    #: would otherwise act as false taint hubs under field-based
    #: tracking (e.g. the simulator clock ``*.current_cycle``, which
    #: every component reads and the engine advances from internally
    #: computed — demand-dependent but sanctioned — event targets).
    clean_attrs: Sequence[str] = ()


@dataclass(frozen=True)
class TaintHit:
    """One sink reached by tainted data (pre-Finding form)."""

    kind: str  # "return" | "attr-write" | "call-arg"
    func: FunctionInfo
    node: ast.AST
    detail: str
    flow: Tuple[FlowStep, ...]

    @property
    def source_note(self) -> str:
        return self.flow[0].note if self.flow else ""


def _match_any(text: str, patterns: Sequence[str]) -> bool:
    return any(fnmatchcase(text, p) for p in patterns)


def _match_attr(
    class_name: Optional[str], attr: str, patterns: Sequence[str]
) -> bool:
    for pattern in patterns:
        cls_pat, _, attr_pat = pattern.rpartition(".")
        if not attr_pat:
            continue
        if not fnmatchcase(attr, attr_pat):
            continue
        if not cls_pat or cls_pat == "*":
            return True
        if class_name is None or fnmatchcase(class_name, cls_pat):
            # Unknown receiver class: match conservatively.
            return True
    return False


class TaintEngine:
    """Fixed-point taint propagation over one :class:`FlowProject`."""

    def __init__(self, project: FlowProject, spec: TaintSpec) -> None:
        self.project = project
        self.spec = spec
        self.index: ProjectIndex = project.index
        self.callgraph: CallGraph = project.callgraph
        # Global facts (monotone).
        self._ret: Dict[str, Witness] = {}
        self._attr: Dict[str, Witness] = {}
        self._param: Dict[Tuple[str, str], Witness] = {}
        self._changed = False
        self._hits: Dict[Tuple[str, int, int, str, str], TaintHit] = {}

    # -- public API --------------------------------------------------------

    def run(self) -> List[TaintHit]:
        functions = sorted(
            (
                f
                for f in self.index.functions.values()
                if not self._is_sanitizer_fn(f)
            ),
            key=lambda f: f.qualname,
        )
        for _ in range(_MAX_GLOBAL_ROUNDS):
            self._changed = False
            for func in functions:
                self._analyze(func)
            if not self._changed:
                break
        return sorted(
            self._hits.values(),
            key=lambda h: (h.func.path, h.node.lineno, h.kind, h.detail),
        )

    # -- sanitizer / pattern plumbing --------------------------------------

    def _is_sanitizer_fn(self, func: FunctionInfo) -> bool:
        return func.is_sanitizer_for(self.spec.checker_id) or _match_any(
            func.qualname, self.spec.sanitizers
        )

    def _call_is_sanitized(
        self, dotted: str, targets: Tuple[str, ...]
    ) -> bool:
        if dotted and _match_any(dotted, self.spec.sanitizers):
            return True
        for target in targets:
            info = self.index.functions.get(target)
            if info is not None and self._is_sanitizer_fn(info):
                return True
            if _match_any(target, self.spec.sanitizers):
                return True
        return False

    # -- fact updates ------------------------------------------------------

    def _set_ret(self, qualname: str, witness: Witness) -> None:
        if qualname not in self._ret:
            self._ret[qualname] = witness
            self._changed = True

    def _set_attr(self, attr: str, witness: Witness) -> None:
        if attr not in self._attr:
            self._attr[attr] = witness
            self._changed = True

    def _set_param(self, qualname: str, param: str, witness: Witness) -> None:
        key = (qualname, param)
        if key not in self._param:
            self._param[key] = witness
            self._changed = True

    def _record_hit(
        self, kind: str, func: FunctionInfo, node: ast.AST,
        detail: str, witness: Witness,
    ) -> None:
        origin = witness.origin
        key = (
            func.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            kind,
            f"{origin.path}:{origin.line}:{origin.note}",
        )
        if key not in self._hits:
            self._hits[key] = TaintHit(
                kind=kind,
                func=func,
                node=node,
                detail=detail,
                flow=witness.steps(),
            )

    # -- per-function analysis ---------------------------------------------

    def _analyze(self, func: FunctionInfo) -> None:
        env: Dict[str, Witness] = {}
        for param in func.params:
            witness = self._param.get((func.qualname, param))
            if witness is not None:
                env[param] = witness.extend(
                    func.path, func.lineno,
                    f"parameter '{param}' of {func.qualname}",
                )
        statements = self._statements(func.node)
        for _ in range(_MAX_LOCAL_ROUNDS):
            before = len(env)
            for stmt in statements:
                self._exec(stmt, func, env)
            if len(env) == before:
                break

    def _statements(self, func_node) -> List[ast.AST]:
        """Statement nodes of the body, nested defs excluded, in
        source order (deterministic witness selection)."""
        out: List[ast.AST] = []
        stack = list(reversed(func_node.body))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.stmt):
                out.append(node)
            for child in reversed(list(ast.iter_child_nodes(node))):
                if isinstance(child, ast.stmt):
                    stack.append(child)
        return out

    def _exec(
        self, stmt: ast.AST, func: FunctionInfo, env: Dict[str, Witness]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            witness = self._eval(stmt.value, func, env)
            for target in stmt.targets:
                self._assign(target, witness, func, env)
        elif isinstance(stmt, ast.AugAssign):
            witness = self._join(
                self._eval_load(stmt.target, func, env),
                self._eval(stmt.value, func, env),
            )
            self._assign(stmt.target, witness, func, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                witness = self._eval(stmt.value, func, env)
                self._assign(stmt.target, witness, func, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                return
            witness = self._eval(stmt.value, func, env)
            if witness is not None:
                returned = witness.extend(
                    func.path, stmt.lineno,
                    f"returned from {func.qualname}",
                )
                self._set_ret(func.qualname, returned)
                if _match_any(func.qualname, self.spec.sink_returns):
                    self._record_hit(
                        "return", func, stmt, func.qualname, returned
                    )
        elif isinstance(stmt, ast.For):
            witness = self._eval(stmt.iter, func, env)
            if witness is not None:
                element = witness.extend(
                    func.path, stmt.lineno, "iterated element"
                )
                self._assign(stmt.target, element, func, env)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                witness = self._eval(item.context_expr, func, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, witness, func, env)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, func, env)
        elif isinstance(stmt, (ast.If, ast.While)):
            # Branch conditions are control flow, not data flow — but
            # calls inside them still bind parameters and hit sinks.
            self._eval(stmt.test, func, env)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, func, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, func, env)

    # -- assignment targets ------------------------------------------------

    def _assign(
        self,
        target: ast.AST,
        witness: Optional[Witness],
        func: FunctionInfo,
        env: Dict[str, Witness],
    ) -> None:
        if isinstance(target, ast.Name):
            if witness is not None and target.id not in env:
                env[target.id] = witness
        elif isinstance(target, ast.Attribute):
            class_name = self._receiver_class(target.value, func)
            if _match_attr(class_name, target.attr, self.spec.clean_attrs):
                return
            if witness is not None:
                stored = witness.extend(
                    func.path, target.lineno,
                    f"stored in attribute '.{target.attr}'",
                )
                self._set_attr(target.attr, stored)
                if _match_attr(
                    class_name, target.attr, self.spec.sink_attr_writes
                ):
                    self._record_hit(
                        "attr-write", func, target, target.attr, stored
                    )
        elif isinstance(target, ast.Subscript):
            # Container write: the container itself becomes tainted.
            if witness is not None:
                stored = witness.extend(
                    func.path, target.lineno, "stored into container"
                )
                self._assign(target.value, stored, func, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, witness, func, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, witness, func, env)

    def _receiver_class(
        self, receiver: ast.AST, func: FunctionInfo
    ) -> Optional[str]:
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            return func.class_name
        return None

    # -- expression evaluation ---------------------------------------------

    def _join(self, *witnesses: Optional[Witness]) -> Optional[Witness]:
        for witness in witnesses:
            if witness is not None:
                return witness
        return None

    def _eval_load(
        self, node: ast.AST, func: FunctionInfo, env: Dict[str, Witness]
    ) -> Optional[Witness]:
        """Evaluate a target expression in load position (AugAssign)."""
        return self._eval(node, func, env)

    def _eval(
        self, node: ast.AST, func: FunctionInfo, env: Dict[str, Witness]
    ) -> Optional[Witness]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, func, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, func, env)
        if isinstance(node, ast.BinOp):
            return self._join(
                self._eval(node.left, func, env),
                self._eval(node.right, func, env),
            )
        if isinstance(node, ast.BoolOp):
            return self._join(
                *(self._eval(v, func, env) for v in node.values)
            )
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, func, env)
        if isinstance(node, ast.Compare):
            return self._join(
                self._eval(node.left, func, env),
                *(self._eval(c, func, env) for c in node.comparators),
            )
        if isinstance(node, ast.IfExp):
            # Explicit flows only: the chosen value's taint matters,
            # the branch condition's does not (control dependence).
            self._eval(node.test, func, env)
            return self._join(
                self._eval(node.body, func, env),
                self._eval(node.orelse, func, env),
            )
        if isinstance(node, ast.Subscript):
            return self._join(
                self._eval(node.value, func, env),
                self._eval(node.slice, func, env),
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._join(
                *(self._eval(e, func, env) for e in node.elts)
            )
        if isinstance(node, ast.Dict):
            parts = [
                self._eval(k, func, env)
                for k in node.keys
                if k is not None
            ]
            parts.extend(self._eval(v, func, env) for v in node.values)
            return self._join(*parts)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, func, env)
        if isinstance(node, ast.JoinedStr):
            return self._join(
                *(self._eval(v, func, env) for v in node.values)
            )
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, func, env)
        if isinstance(node, ast.NamedExpr):
            witness = self._eval(node.value, func, env)
            self._assign(node.target, witness, func, env)
            return witness
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            parts: List[Optional[Witness]] = [
                self._eval(gen.iter, func, env) for gen in node.generators
            ]
            return self._join(*parts)
        if isinstance(node, ast.Slice):
            return self._join(
                *(
                    self._eval(part, func, env)
                    for part in (node.lower, node.upper, node.step)
                    if part is not None
                )
            )
        if isinstance(node, ast.Await):
            return self._eval(node.value, func, env)
        return None

    def _eval_attribute(
        self, node: ast.Attribute, func: FunctionInfo, env: Dict[str, Witness]
    ) -> Optional[Witness]:
        class_name = self._receiver_class(node.value, func)
        if _match_attr(class_name, node.attr, self.spec.clean_attrs):
            return None
        if _match_attr(class_name, node.attr, self.spec.source_attrs):
            owner = class_name or "?"
            return Witness(
                func.path, node.lineno,
                f"read of demand-derived '{owner}.{node.attr}'"
                if class_name
                else f"read of demand-derived '.{node.attr}'",
            )
        known = self._attr.get(node.attr)
        if known is not None:
            return known.extend(
                func.path, node.lineno,
                f"read of tainted attribute '.{node.attr}'",
            )
        receiver = self._eval(node.value, func, env)
        if receiver is not None:
            return receiver.extend(
                func.path, node.lineno,
                f"attribute '.{node.attr}' of tainted object",
            )
        return None

    def _eval_call(
        self, node: ast.Call, func: FunctionInfo, env: Dict[str, Witness]
    ) -> Optional[Witness]:
        dotted = self.callgraph.dotted_text(func.path, node.func)
        targets = self.callgraph.resolve_call(func, node)
        sanitized = self._call_is_sanitized(dotted, targets)
        arg_witnesses: List[Tuple[Optional[str], Optional[Witness]]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arg_witnesses.append(
                    (None, self._eval(arg.value, func, env))
                )
            else:
                arg_witnesses.append((None, self._eval(arg, func, env)))
        for keyword in node.keywords:
            arg_witnesses.append(
                (keyword.arg, self._eval(keyword.value, func, env))
            )
        if sanitized:
            # Sanitizer precedence: a trusted interface's result is
            # clean and its arguments are sanctioned — no propagation,
            # no sink checks inside the call.
            return None
        if dotted and _match_any(dotted, self.spec.source_calls):
            return Witness(
                func.path, node.lineno, f"call to source '{dotted}'"
            )
        if any(_match_any(t, self.spec.source_calls) for t in targets):
            return Witness(
                func.path, node.lineno,
                f"call to source '{targets[0]}'",
            )
        # Sink: tainted argument into a watched callee parameter.
        self._check_call_arg_sinks(node, dotted, targets, arg_witnesses, func)
        # Propagate arguments into resolved callees' parameters.
        result: Optional[Witness] = None
        for target in targets:
            info = self.index.functions.get(target)
            if info is None or self._is_sanitizer_fn(info):
                continue
            self._bind_params(node, info, arg_witnesses, func)
            returned = self._ret.get(target)
            if returned is not None and result is None:
                result = returned.extend(
                    func.path, node.lineno,
                    f"result of call to {target}",
                )
        if targets:
            return result
        # Unknown callee (builtin/stdlib): conservatively propagate
        # taint from any argument — len(tainted), max(c, tainted)...
        tainted_arg = self._join(*(w for _, w in arg_witnesses))
        if tainted_arg is not None:
            label = dotted or "<call>"
            return tainted_arg.extend(
                func.path, node.lineno,
                f"through call to '{label}'",
            )
        # A method call on a tainted receiver yields tainted data
        # (queue.popleft() on a tainted queue).
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value, func, env)
            if receiver is not None:
                return receiver.extend(
                    func.path, node.lineno,
                    f"result of '.{node.func.attr}()' on tainted object",
                )
        return None

    def _bind_params(
        self,
        node: ast.Call,
        info: FunctionInfo,
        arg_witnesses: List[Tuple[Optional[str], Optional[Witness]]],
        func: FunctionInfo,
    ) -> None:
        params = list(info.params)
        offset = 1 if params and params[0] == "self" else 0
        position = 0
        for name, witness in arg_witnesses:
            if witness is None:
                if name is None:
                    position += 1
                continue
            if name is not None:
                if name in params:
                    self._set_param(
                        info.qualname, name,
                        witness.extend(
                            func.path, node.lineno,
                            f"passed to {info.qualname}({name}=...)",
                        ),
                    )
                continue
            index = position + offset
            position += 1
            if index < len(params):
                param = params[index]
                self._set_param(
                    info.qualname, param,
                    witness.extend(
                        func.path, node.lineno,
                        f"passed to {info.qualname} parameter '{param}'",
                    ),
                )

    def _check_call_arg_sinks(
        self,
        node: ast.Call,
        dotted: str,
        targets: Tuple[str, ...],
        arg_witnesses: List[Tuple[Optional[str], Optional[Witness]]],
        func: FunctionInfo,
    ) -> None:
        if not self.spec.sink_call_args:
            return
        for pattern in self.spec.sink_call_args:
            callee_pat, _, param_pat = pattern.rpartition(":")
            if not callee_pat:
                callee_pat, param_pat = pattern, "*"
            names = [dotted] if dotted else []
            names.extend(targets)
            if not any(fnmatchcase(n, callee_pat) for n in names):
                continue
            # Parameter names for positional matching, when resolvable.
            params: List[str] = []
            for target in targets:
                info = self.index.functions.get(target)
                if info is not None:
                    params = list(info.params)
                    if params and params[0] == "self":
                        params = params[1:]
                    break
            position = 0
            for name, witness in arg_witnesses:
                if name is None:
                    arg_name = (
                        params[position] if position < len(params) else
                        f"arg{position}"
                    )
                    position += 1
                else:
                    arg_name = name
                if witness is None:
                    continue
                if fnmatchcase(arg_name, param_pat):
                    self._record_hit(
                        "call-arg", func, node,
                        f"{dotted or targets[0]}({arg_name})",
                        witness.extend(
                            func.path, node.lineno,
                            f"tainted argument '{arg_name}' to "
                            f"'{dotted or targets[0]}'",
                        ),
                    )


def run_taint(
    project: FlowProject, spec: TaintSpec
) -> List[TaintHit]:
    """Convenience wrapper: build the engine and run to fixed point."""
    return TaintEngine(project, spec).run()

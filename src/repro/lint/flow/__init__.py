"""Interprocedural dataflow layer for :mod:`repro.lint`.

The per-function checkers (RL001–RL006) see one module at a time; this
package adds the whole-program view the secret-independence invariant
needs (docs/static-analysis.md, "The flow framework"):

* :mod:`repro.lint.flow.project` — the parsed-module universe a flow
  checker analyses (:class:`FlowProject`), with module-name mapping
  and per-function sanitizer pragmas.
* :mod:`repro.lint.flow.summaries` — per-function def-use summaries
  (:class:`FunctionInfo`) and the project-wide symbol index.
* :mod:`repro.lint.flow.callgraph` — name/alias-resolved call edges
  over the project (:class:`CallGraph`).
* :mod:`repro.lint.flow.taint` — the configurable taint engine
  (:class:`TaintSpec`, :class:`TaintEngine`): sources, sinks and
  sanitizers declared per checker, fixed-point propagation through
  call edges, attribute accesses and container writes, findings that
  carry the full source→sink flow path.

Checkers built on this layer subclass
:class:`repro.lint.registry.FlowChecker` and implement
``check_project`` instead of ``check_module``.
"""

from repro.lint.findings import FlowStep
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.project import FlowProject, ProjectModule
from repro.lint.flow.summaries import FunctionInfo, ProjectIndex, build_index
from repro.lint.flow.taint import TaintEngine, TaintHit, TaintSpec, run_taint

__all__ = [
    "CallGraph",
    "FlowProject",
    "ProjectModule",
    "FunctionInfo",
    "ProjectIndex",
    "build_index",
    "FlowStep",
    "TaintEngine",
    "TaintHit",
    "TaintSpec",
    "run_taint",
]

"""Name- and alias-resolved call edges over a :class:`FlowProject`.

Resolution is deliberately lightweight — this is a lint-grade call
graph, not a type inferencer:

* bare names resolve to same-module functions, then through the
  module's import alias table (``from x import f``);
* ``ClassName(...)`` resolves to ``ClassName.__init__`` when the class
  is defined in the project;
* ``self.meth(...)`` resolves through the enclosing class and its
  same-module bases;
* any other ``recv.meth(...)`` resolves to *every* project class
  defining ``meth`` whose positional arity can accept the call site
  (class-hierarchy-agnostic, like CHA without a hierarchy) —
  conservative over-approximation is the right failure mode for an
  invariant checker, but the arity filter rejects impossible
  dispatches such as a 1-argument file ``handle.write(line)``
  resolving to ``Bank.write(self, cycle, row)``;
* ``recv.table[i](...)`` (calling through a subscripted attribute,
  the columnar engine's bound-method caches) resolves through the
  subscript as if it were the attribute itself.

Unresolvable callees (builtins, stdlib, numpy) produce no edge; the
taint engine treats them as taint-propagating unless a sanitizer
pattern says otherwise.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.flow.project import FlowProject
from repro.lint.flow.summaries import FunctionInfo, ProjectIndex


def iter_body_nodes(func_node):
    """All AST nodes of a function body, excluding nested def bodies.

    Nested functions/classes are separate :class:`FunctionInfo` units;
    walking into them here would double-count their statements.
    """
    stack = list(func_node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def dotted_parts(expr: ast.AST) -> Optional[List[str]]:
    """``self.shaper.earliest_real_release`` → its name parts, or None.

    Subscripts are looked through (``self._core_tick[i]`` →
    ``self._core_tick``); anything else (call results, literals) ends
    the chain unresolved.
    """
    parts: List[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


class CallGraph:
    """Call edges plus per-function resolved call sites."""

    def __init__(self, project: FlowProject, index: ProjectIndex) -> None:
        self.project = project
        self.index = index
        #: caller qualname -> set of callee qualnames
        self.edges: Dict[str, Set[str]] = {}
        #: callee qualname -> set of caller qualnames
        self.callers: Dict[str, Set[str]] = {}
        #: caller qualname -> [(Call node, dotted text, callee quals)]
        self.call_sites: Dict[
            str, List[Tuple[ast.Call, str, Tuple[str, ...]]]
        ] = {}
        for info in index.functions.values():
            self._scan(info)

    # -- resolution --------------------------------------------------------

    def dotted_text(self, path: str, expr: ast.AST) -> str:
        """Alias-canonicalised dotted text of a name chain, or ''.

        ``np.random.default_rng`` → ``numpy.random.default_rng``;
        ``self._rng.random`` stays ``self._rng.random`` (the ``self``
        root is not an alias).
        """
        parts = dotted_parts(expr)
        if not parts:
            return ""
        table = self.index.aliases.get(path, {})
        root = table.get(parts[0], parts[0])
        return ".".join([root] + parts[1:])

    def resolve_call(
        self, func: FunctionInfo, call: ast.Call
    ) -> Tuple[str, ...]:
        """Project function qualnames this call may dispatch to."""
        parts = dotted_parts(call.func)
        if not parts:
            return ()
        index = self.index
        # self.meth(...) — enclosing class first.
        if parts[0] == "self" and func.class_name and len(parts) == 2:
            class_qual = f"{func.module}.{func.class_name}"
            resolved = index.resolve_method(class_qual, parts[1])
            if resolved is not None:
                return (resolved,)
            return self._methods_named(parts[1], call)
        table = index.aliases.get(func.path, {})
        root = table.get(parts[0], parts[0])
        dotted = ".".join([root] + parts[1:])
        # Fully-qualified (or imported) project function.
        if dotted in index.functions:
            return (dotted,)
        # Same-module bare name.
        if len(parts) == 1:
            local = f"{func.module}.{parts[0]}" if func.module else parts[0]
            if local in index.functions:
                return (local,)
            # Nested function of the same enclosing scope.
            host = func.qualname.rsplit(".", 1)[0]
            nested = f"{host}.{parts[0]}"
            if nested in index.functions:
                return (nested,)
        # Constructor call: ClassName(...) or pkg.mod.ClassName(...).
        ctor = self._constructor_for(dotted, parts)
        if ctor is not None:
            return ctor
        # recv.meth(...): every project class defining meth.
        if len(parts) >= 2:
            return self._methods_named(parts[-1], call)
        return ()

    def _methods_named(
        self, name: str, call: ast.Call
    ) -> Tuple[str, ...]:
        """CHA-style candidates for ``name``, arity-filtered."""
        return tuple(
            qual
            for qual in self.index.methods_by_name.get(name, ())
            if self._arity_compatible(call, qual)
        )

    def _arity_compatible(self, call: ast.Call, qualname: str) -> bool:
        """Can this call site's argument shape dispatch to ``qualname``?

        Filters only *impossible* dispatches; starred/double-starred
        call sites are unknowable and stay compatible.
        """
        info = self.index.functions.get(qualname)
        if info is None:
            return True
        if any(isinstance(a, ast.Starred) for a in call.args):
            return True
        if any(k.arg is None for k in call.keywords):
            return True
        offset = 1 if info.params and info.params[0] == "self" else 0
        supplied_pos = len(call.args)
        supplied_kw = len(call.keywords)
        required = max(0, info.min_positional - offset)
        if supplied_pos + supplied_kw < required:
            return False
        if info.max_positional is not None:
            if supplied_pos > max(0, info.max_positional - offset):
                return False
        return True

    def _constructor_for(
        self, dotted: str, parts: List[str]
    ) -> Optional[Tuple[str, ...]]:
        index = self.index
        if dotted in index.class_methods:
            init = index.class_methods[dotted].get("__init__")
            return (init,) if init else ()
        if len(parts) == 1:
            quals = index.classes_by_name.get(parts[0])
            if quals:
                inits = [
                    index.class_methods.get(q, {}).get("__init__")
                    for q in quals
                ]
                return tuple(i for i in inits if i)
        return None

    # -- edge construction -------------------------------------------------

    def _scan(self, info: FunctionInfo) -> None:
        sites: List[Tuple[ast.Call, str, Tuple[str, ...]]] = []
        edges = self.edges.setdefault(info.qualname, set())
        for node in iter_body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = self.dotted_text(info.path, node.func)
            targets = self.resolve_call(info, node)
            sites.append((node, dotted, targets))
            for target in targets:
                edges.add(target)
                self.callers.setdefault(target, set()).add(info.qualname)
        self.call_sites[info.qualname] = sites

    # -- reachability helpers ---------------------------------------------

    def transitive_callees(self, qualname: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def transitive_callers(self, qualname: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            for caller in self.callers.get(current, ()):
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)
        return seen

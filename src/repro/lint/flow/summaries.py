"""Per-function summaries and the project-wide symbol index.

A :class:`FunctionInfo` is the unit of interprocedural analysis: one
``def`` (module-level, method, or nested) with its dotted qualname,
parameter list, declared sanitizer ids, and the raw AST body the taint
engine interprets.  :func:`build_index` walks every project module
once and produces the :class:`ProjectIndex` the call graph and the
checkers share:

* ``functions`` — every function by dotted qualname
  (``repro.core.shaper.BinShaper.release_real``).
* ``methods_by_name`` — bare method name → defining qualnames, the
  class-hierarchy-agnostic resolution set for ``obj.meth(...)`` calls.
* ``classes_by_name`` — bare class name → class qualnames (for
  constructor calls).
* ``aliases`` — per-module import alias tables mapping local names to
  canonical dotted paths (``np`` → ``numpy``, ``Random`` →
  ``random.Random``), the same resolution RL001 performs locally.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.flow.project import FlowProject, ProjectModule


@dataclass
class FunctionInfo:
    """One analysed function/method."""

    qualname: str
    name: str
    path: str
    module: str
    class_name: Optional[str]
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: Tuple[str, ...]
    #: Checker ids this function is a declared sanitizer for
    #: (``# repro-lint: sanitizer=RL007`` on/above the def line).
    sanitizer_ids: Tuple[str, ...] = ()
    #: Positional-arity window (``self`` included): required
    #: positional count, and the positional capacity (None = ``*args``).
    #: The call graph uses it to reject arity-incompatible candidates
    #: in class-hierarchy-agnostic ``recv.meth(...)`` resolution.
    min_positional: int = 0
    max_positional: Optional[int] = None

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    def is_sanitizer_for(self, checker_id: str) -> bool:
        return checker_id.upper() in self.sanitizer_ids


@dataclass
class ProjectIndex:
    """Symbol tables shared by the call graph and the flow checkers."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    classes_by_name: Dict[str, List[str]] = field(default_factory=dict)
    #: class qualname -> method name -> function qualname
    class_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: class qualname -> same-module base class qualnames
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    #: module path -> local name -> canonical dotted path
    aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: dotted module name -> module path
    module_paths: Dict[str, str] = field(default_factory=dict)

    def functions_in(self, path: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.path == path]

    def resolve_method(self, class_qualname: str, name: str) -> Optional[str]:
        """Find ``name`` on the class or its same-module bases."""
        seen = set()
        stack = [class_qualname]
        while stack:
            cls = stack.pop()
            if cls in seen:
                continue
            seen.add(cls)
            method = self.class_methods.get(cls, {}).get(name)
            if method is not None:
                return method
            stack.extend(self.class_bases.get(cls, []))
        return None


def _param_names(node) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names.extend(a.arg for a in args.args)
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _positional_arity(node) -> Tuple[int, Optional[int]]:
    args = node.args
    positional = len(getattr(args, "posonlyargs", [])) + len(args.args)
    required = max(0, positional - len(args.defaults))
    capacity = None if args.vararg else positional
    return required, capacity


def _sanitizer_ids_for(node, mod: ProjectModule) -> Tuple[str, ...]:
    ids: List[str] = []
    for anchor in (node.lineno, node.lineno - 1):
        ids.extend(mod.sanitizer_lines.get(anchor, ()))
    # Decorated defs anchor at the ``def`` line, but the pragma may sit
    # above the first decorator; accept that anchor too.
    if node.decorator_list:
        first = min(d.lineno for d in node.decorator_list)
        for anchor in (first, first - 1):
            ids.extend(mod.sanitizer_lines.get(anchor, ()))
    return tuple(dict.fromkeys(ids))


class _ModuleIndexer(ast.NodeVisitor):
    def __init__(self, mod: ProjectModule, index: ProjectIndex) -> None:
        self.mod = mod
        self.index = index
        self._scope: List[str] = []  # class/function name stack
        self._class_stack: List[str] = []  # class qualnames

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        table = self.index.aliases.setdefault(self.mod.path, {})
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else alias.name.split(".")[0]
            table[local] = canonical

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        table = self.index.aliases.setdefault(self.mod.path, {})
        if node.level:
            # Relative import: resolve against this module's package.
            package = self.mod.module.rsplit(".", node.level)[0] if (
                "." in self.mod.module or node.level == 1
            ) else ""
            base = f"{package}.{node.module}" if node.module else package
        else:
            base = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            table[local] = f"{base}.{alias.name}" if base else alias.name

    # -- defs --------------------------------------------------------------

    def _qual(self, name: str) -> str:
        parts = [self.mod.module] if self.mod.module else []
        parts.extend(self._scope)
        parts.append(name)
        return ".".join(parts)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        self.index.classes_by_name.setdefault(node.name, []).append(qual)
        self.index.class_methods.setdefault(qual, {})
        bases: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                candidate = self._qual(base.id)
                # Same-module base only; cross-module bases resolve via
                # the methods_by_name fallback.
                sibling = ".".join(
                    ([self.mod.module] if self.mod.module else [])
                    + [base.id]
                )
                if sibling in self.index.class_methods:
                    bases.append(sibling)
                elif candidate in self.index.class_methods:
                    bases.append(candidate)
                else:
                    bases.append(sibling)
        self.index.class_bases[qual] = bases
        self._scope.append(node.name)
        self._class_stack.append(qual)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()

    def _visit_def(self, node) -> None:
        qual = self._qual(node.name)
        class_qual = self._class_stack[-1] if self._class_stack else None
        class_name = class_qual.rsplit(".", 1)[-1] if class_qual else None
        min_pos, max_pos = _positional_arity(node)
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            path=self.mod.path,
            module=self.mod.module,
            class_name=class_name,
            node=node,
            params=_param_names(node),
            sanitizer_ids=_sanitizer_ids_for(node, self.mod),
            min_positional=min_pos,
            max_positional=max_pos,
        )
        self.index.functions[qual] = info
        if class_qual is not None and len(self._scope) == 1:
            self.index.class_methods[class_qual][node.name] = qual
            self.index.methods_by_name.setdefault(node.name, []).append(qual)
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._visit_def(node)


def build_index(project: FlowProject) -> ProjectIndex:
    """Walk every module once and build the shared symbol index."""
    index = ProjectIndex()
    for mod in project.modules.values():
        index.module_paths[mod.module] = mod.path
    for mod in sorted(project.modules.values(), key=lambda m: m.path):
        _ModuleIndexer(mod, index).visit(mod.tree)
    return index

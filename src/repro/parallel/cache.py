"""Content-addressed result cache for simulation points.

A sweep point is a pure function of its inputs: benchmark, shaping
plan, bin spec, engine, seed, run length, and the code that interprets
them.  :func:`config_digest` extends the canonical-JSON fingerprinting
of :func:`repro.sim.stats.report_digest` from run *outputs* to run
*inputs* — the digest of that input document addresses the point's
result on disk, so re-running a sweep whose inputs did not change
performs zero simulations.

Key anatomy (see docs/parallel.md for the invalidation rules)::

    {
      "kind":         "tradeoff-point",        # task family
      "task":         {...},                   # the full task payload
      "code_version": "1.0.0",                 # repro.__version__
      "cache_schema": 1,                       # entry layout version
    }

``code_version`` and ``cache_schema`` are folded into every digest, so
a release that changes simulator behaviour or the entry layout
invalidates the whole cache rather than serving stale results.

Entries are JSON files named ``<digest>.json`` in two-level fan-out
directories (``ab/abcdef....json``), written atomically with the
REPROSNAP helper (:func:`repro.resilience.snapshot.atomic_write_bytes`)
— a crashed or concurrent writer never leaves a truncated entry, and
two processes racing on the same key converge on identical bytes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

import repro
from repro.common.errors import ConfigurationError
from repro.common.util import canonical_doc, canonical_json_digest
from repro.resilience.snapshot import atomic_write_bytes

#: Bump when the entry layout changes; folded into every key digest.
#: 2: tradeoff/mix/GA task results grew detectability-lab fields
#: (auc / xcorr / spectral) — stale schema-1 entries must not satisfy
#: sweeps that expect the new columns.
CACHE_SCHEMA = 2

#: Hex digits of the key digest (64 = full SHA-256).
DIGEST_LENGTH = 40


def cache_key(kind: str, task_doc: Any) -> Dict[str, Any]:
    """The canonical key document for one task.

    ``task_doc`` is the task's full payload (everything the worker
    function reads); ``kind`` names the task family so two families
    with coincidentally equal payloads cannot collide.
    """
    return {
        "kind": kind,
        "task": canonical_doc(task_doc),
        "code_version": repro.__version__,
        "cache_schema": CACHE_SCHEMA,
    }


def config_digest(kind: str, task_doc: Any) -> str:
    """Content address of one task's inputs (hex, 40 chars)."""
    return canonical_json_digest(cache_key(kind, task_doc), DIGEST_LENGTH)


@dataclass(frozen=True)
class CacheEntry:
    """One cached result, as listed by :meth:`ResultCache.entries`."""

    digest: str
    kind: str
    path: str
    size_bytes: int
    created: float


class ResultCache:
    """Digest-keyed store of JSON task results under one directory."""

    def __init__(self, directory: str) -> None:
        if not directory:
            raise ConfigurationError("cache directory must be non-empty")
        self.directory = directory
        self.hits = 0
        self.misses = 0

    # -- addressing --------------------------------------------------------

    def path_for(self, digest: str) -> str:
        return os.path.join(self.directory, digest[:2], digest + ".json")

    # -- read/write --------------------------------------------------------

    def get(self, digest: str) -> Optional[Any]:
        """The cached result for ``digest``, or None on miss.

        A corrupt entry (truncated by hand, wrong schema) counts as a
        miss and is removed so the slot heals on the next put.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self.misses += 1
            self._remove_quietly(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_schema") != CACHE_SCHEMA
            or "result" not in entry
        ):
            self.misses += 1
            self._remove_quietly(path)
            return None
        self.hits += 1
        return entry["result"]

    def put(self, digest: str, key: Dict[str, Any], result: Any) -> str:
        """Store ``result`` under ``digest``; returns the entry path.

        ``result`` must canonicalise to JSON (numpy scalars/arrays are
        collapsed); the full ``key`` document is stored alongside it so
        ``repro cache ls`` can say what an entry *is* without a reverse
        index.
        """
        entry = {
            "cache_schema": CACHE_SCHEMA,
            "digest": digest,
            "key": canonical_doc(key),
            "result": canonical_doc(result),
            # Prune metadata only — never part of the digest or the
            # result, so wall clock cannot influence any run output.
            # repro-lint: disable-next-line=RL001
            "created_unix": time.time(),
        }
        payload = json.dumps(entry, sort_keys=True).encode("utf-8")
        path = self.path_for(digest)
        atomic_write_bytes(path, payload)
        return path

    # -- management (the `repro cache` CLI verbs) -------------------------

    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def entries(self) -> List[CacheEntry]:
        """All readable entries, sorted oldest-first by creation time."""
        out: List[CacheEntry] = []
        for path in self._entry_paths():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                size = os.path.getsize(path)
            except (OSError, json.JSONDecodeError):
                continue
            key = entry.get("key") or {}
            out.append(
                CacheEntry(
                    digest=entry.get("digest", os.path.basename(path)[:-5]),
                    kind=key.get("kind", "?"),
                    path=path,
                    size_bytes=size,
                    created=float(entry.get("created_unix", 0.0)),
                )
            )
        out.sort(key=lambda e: (e.created, e.digest))
        return out

    def prune(
        self,
        keep: Optional[int] = None,
        older_than_days: Optional[float] = None,
    ) -> int:
        """Remove old entries; returns how many files were deleted.

        ``keep`` retains only the newest N entries;
        ``older_than_days`` removes entries created before the cutoff.
        Both filters compose (an entry is removed if either says so).
        """
        if keep is None and older_than_days is None:
            raise ConfigurationError(
                "prune needs --keep and/or --older-than-days"
            )
        if keep is not None and keep < 0:
            raise ConfigurationError("keep must be >= 0")
        listed = self.entries()
        doomed = set()
        if keep is not None and len(listed) > keep:
            doomed.update(e.path for e in listed[: len(listed) - keep])
        if older_than_days is not None:
            # repro-lint: disable-next-line=RL001
            cutoff = time.time() - older_than_days * 86400.0
            doomed.update(e.path for e in listed if e.created < cutoff)
        for path in doomed:
            self._remove_quietly(path)
        return len(doomed)

    def clear(self) -> int:
        """Remove every entry; returns how many files were deleted."""
        removed = 0
        for path in list(self._entry_paths()):
            self._remove_quietly(path)
            removed += 1
        return removed

    @staticmethod
    def _remove_quietly(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            # Entry removal races (another process pruning the same
            # directory) are benign: the goal state is "gone".
            pass

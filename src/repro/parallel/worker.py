"""Dispatch worker host: serves sweep shards over the frame protocol.

One :class:`WorkerHost` is one remote execution endpoint for the
dispatch coordinator (:mod:`repro.parallel.dispatch`): it accepts one
coordinator connection at a time, performs the version handshake, and
then executes ``shard`` requests one by one — each on the process's
existing warm ``spawn`` pool (:func:`repro.parallel.executor._warm_pool`),
so a worker host amortises interpreter spawn and simulator imports
exactly like a local ``--jobs N`` run does.

While a shard executes on the pool, the serving thread sends
``heartbeat`` frames every ``heartbeat_seconds`` so the coordinator's
liveness table can tell "slow but alive" from "dead": a wedged or
killed worker stops heartbeating and its shard's lease expires.

Determinism: the worker adds nothing to a result — it runs the same
module-level task function, with the same payload and the same
executor-derived ``task_seed``, that a local run would, and ships the
JSON-typed result back verbatim.  Task functions are resolved from an
explicit ``module:qualname`` allowlist (``task_modules``), never from
arbitrary pickled code: the coordinator names a function, the worker
decides whether it is willing to run it.

Failure handling mirrors the executor's in-band convention: a task
exception becomes an ``ok=false`` result frame (the coordinator
charges an attempt and re-dispatches), while transport errors tear
down the connection and return the host to its accept loop, ready for
the next coordinator.
"""

from __future__ import annotations

import concurrent.futures
import importlib
import socket
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import repro
from repro.common.errors import (
    ConfigurationError,
    HostLostError,
    ShardTransportError,
)
from repro.obs import diag
from repro.obs.events import CATEGORY_DISPATCH
from repro.parallel.executor import _call_task, _discard_pool, _warm_pool
from repro.parallel.protocol import (
    PROTOCOL_VERSION,
    FrameChannel,
    hello_payload,
)

#: Default task-function allowlist: the repo's own sweep task module.
DEFAULT_TASK_MODULES: Tuple[str, ...] = ("repro.parallel.tasks",)

#: Handshake / idle-read budget.  A peer that connects but never
#: completes the hello within this window is dropped so the accept
#: loop cannot be wedged by a port scanner.
HANDSHAKE_TIMEOUT = 30.0


def resolve_task(
    spec: str, task_modules: Sequence[str]
) -> Callable[..., Any]:
    """Resolve ``"module:qualname"`` against the allowlist.

    Only module-level callables from explicitly allowed modules
    resolve; anything else is a :class:`ConfigurationError` (reported
    in-band to the coordinator as a failed shard).
    """
    if ":" not in spec:
        raise ConfigurationError(
            f"task spec {spec!r} is not of the form 'module:qualname'"
        )
    module_name, _, qualname = spec.partition(":")
    if module_name not in task_modules:
        raise ConfigurationError(
            f"task module {module_name!r} is not in this worker's "
            f"allowlist {tuple(task_modules)}"
        )
    module = importlib.import_module(module_name)
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise ConfigurationError(
                f"{module_name!r} has no attribute {qualname!r}"
            )
    if not callable(obj):
        raise ConfigurationError(f"task {spec!r} is not callable")
    return obj


def task_spec(fn: Callable[..., Any]) -> str:
    """The ``module:qualname`` wire name of a module-level task."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise ConfigurationError(
            f"task {fn!r} is not an addressable module-level function"
        )
    return f"{module}:{qualname}"


class _StopServing(Exception):
    """Internal: a shutdown frame asked the whole host to exit."""


class WorkerHost:
    """One dispatch worker endpoint.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (``bind()``
        returns the actual one — tests depend on this).
    jobs:
        Worker processes in this host's warm spawn pool.
    task_modules:
        Module allowlist for :func:`resolve_task`.
    heartbeat_seconds:
        Interval between heartbeat frames while a shard executes.
    inline:
        Run tasks in the serving thread instead of the pool.  No
        heartbeats are sent mid-task (the task must fit in the lease);
        used by tests and by trivially cheap task functions.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        task_modules: Sequence[str] = DEFAULT_TASK_MODULES,
        heartbeat_seconds: float = 1.0,
        inline: bool = False,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_seconds <= 0:
            raise ConfigurationError("heartbeat_seconds must be positive")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.task_modules = tuple(task_modules)
        self.heartbeat_seconds = heartbeat_seconds
        self.inline = inline
        self.shards_served = 0
        self.shards_failed = 0
        self._listener: Optional[socket.socket] = None
        self._active_channel: Optional[FrameChannel] = None
        self._closing = False

    # -- lifecycle ---------------------------------------------------

    def bind(self) -> Tuple[str, int]:
        """Bind the listening socket; returns ``(host, actual_port)``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(1)
        self._listener = listener
        self.port = listener.getsockname()[1]
        return self.host, self.port

    def close(self) -> None:
        """Stop serving: unblocks ``serve_forever`` from any thread."""
        self._closing = True
        if self._active_channel is not None:
            self._active_channel.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass  # already closed
        if not self.inline:
            _discard_pool()

    def serve_forever(self) -> None:
        """Accept coordinators until closed or told to shut down."""
        if self._listener is None:
            self.bind()
        assert self._listener is not None
        diag.emit_diagnostic(
            "dispatch.worker_listening", category=CATEGORY_DISPATCH,
            host=f"{self.host}:{self.port}", jobs=self.jobs,
            inline=self.inline,
        )
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                if self._closing:
                    return
                raise
            peer = f"{addr[0]}:{addr[1]}"
            channel = FrameChannel(conn, peer)
            self._active_channel = channel
            try:
                self._serve_connection(channel, peer)
            except _StopServing:
                channel.close()
                self.close()
                return
            except (HostLostError, ShardTransportError, socket.timeout) as exc:
                # The coordinator went away or sent garbage: drop the
                # connection, log it, and go back to accepting — a
                # worker host outlives any one coordinator.
                diag.emit_diagnostic(
                    "dispatch.worker_conn_lost", category=CATEGORY_DISPATCH,
                    peer=peer, error=f"{type(exc).__name__}: {exc}",
                )
            finally:
                self._active_channel = None
                channel.close()
            if self._closing:
                return

    # -- per-connection protocol -------------------------------------

    def _serve_connection(self, channel: FrameChannel, peer: str) -> None:
        kind, payload = channel.recv(timeout=HANDSHAKE_TIMEOUT)
        if kind != "hello" or not isinstance(payload, dict):
            raise ShardTransportError(
                f"expected hello frame, got {kind!r}", host=peer
            )
        if payload.get("protocol") != PROTOCOL_VERSION:
            channel.send(
                "error",
                {"error": f"protocol {payload.get('protocol')!r} "
                          f"!= {PROTOCOL_VERSION}"},
            )
            raise ShardTransportError(
                f"coordinator protocol mismatch: {payload.get('protocol')!r}",
                host=peer,
            )
        if payload.get("code_version") != repro.__version__:
            channel.send(
                "error",
                {"error": f"code_version {payload.get('code_version')!r} "
                          f"!= {repro.__version__}"},
            )
            raise ShardTransportError(
                f"coordinator code_version {payload.get('code_version')!r} "
                f"!= worker {repro.__version__}",
                host=peer,
            )
        ack = hello_payload(repro.__version__, "worker")
        ack["jobs"] = self.jobs
        channel.send("hello_ack", ack)
        diag.emit_diagnostic(
            "dispatch.worker_handshake", category=CATEGORY_DISPATCH,
            peer=peer,
        )
        while True:
            kind, payload = channel.recv(timeout=None)
            if kind == "shutdown":
                if isinstance(payload, dict) and payload.get("stop_server"):
                    raise _StopServing()
                return
            if kind != "shard" or not isinstance(payload, dict):
                raise ShardTransportError(
                    f"expected shard frame, got {kind!r}", host=peer
                )
            self._serve_shard(channel, payload)

    def _serve_shard(
        self, channel: FrameChannel, request: Dict[str, Any]
    ) -> None:
        shard = request.get("shard", -1)
        lease = request.get("lease", "")
        result: Dict[str, Any] = {"shard": shard, "lease": lease}
        diag.emit_diagnostic(
            "dispatch.worker_shard_start", category=CATEGORY_DISPATCH,
            shard=shard, label=request.get("label", ""),
        )
        try:
            fn = resolve_task(request.get("fn", ""), self.task_modules)
            value = self._execute(
                fn, request.get("payload"), request.get("task_seed"),
                channel, shard, lease,
            )
            result["ok"] = True
            result["value"] = value
            self.shards_served += 1
        except (HostLostError, ShardTransportError):
            raise  # connection-level: caller retires the connection
        except Exception as exc:  # noqa: BLE001 — in-band task failure
            result["ok"] = False
            result["error"] = f"{type(exc).__name__}: {exc}"
            self.shards_failed += 1
        channel.send("result", result)
        diag.emit_diagnostic(
            "dispatch.worker_shard_done", category=CATEGORY_DISPATCH,
            shard=shard, ok=result["ok"],
        )

    def _execute(
        self,
        fn: Callable[..., Any],
        payload: Any,
        task_seed: Optional[int],
        channel: FrameChannel,
        shard: Any,
        lease: Any,
    ) -> Any:
        if self.inline:
            return _call_task(fn, payload, task_seed)
        pool = _warm_pool(self.jobs)
        future = pool.submit(_call_task, fn, payload, task_seed)
        seq = 0
        while True:
            done, _ = concurrent.futures.wait(
                [future], timeout=self.heartbeat_seconds
            )
            if done:
                break
            seq += 1
            channel.send(
                "heartbeat", {"shard": shard, "lease": lease, "seq": seq}
            )
            diag.emit_diagnostic(
                "dispatch.worker_heartbeat", category=CATEGORY_DISPATCH,
                shard=shard, seq=seq,
            )
        if getattr(pool, "_broken", False):
            _discard_pool()
        return future.result()

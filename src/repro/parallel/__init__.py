"""repro.parallel: deterministic fan-out + content-addressed caching.

The throughput layer for the paper's sweep-shaped experiments
(Figures 2, 10-13): :class:`SweepExecutor` runs independent simulation
points across worker processes and merges results in submission order
— bit-identical output for every ``--jobs`` value — while
:class:`ResultCache` addresses each point's result by a canonical
digest of its inputs, so unchanged points are never re-simulated.
See docs/parallel.md for the determinism contract and the cache-key
anatomy.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    CacheEntry,
    ResultCache,
    cache_key,
    config_digest,
)
from repro.parallel.dispatch import (
    ChaosProxy,
    DispatchCoordinator,
    FrameCorruption,
    HostCrash,
    LinkStall,
    SlowHost,
    parse_hosts,
)
from repro.parallel.executor import SweepExecutor
from repro.parallel.ledger import DispatchLedger
from repro.parallel.tasks import ga_population_evaluator
from repro.parallel.worker import WorkerHost

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "ResultCache",
    "cache_key",
    "config_digest",
    "ChaosProxy",
    "DispatchCoordinator",
    "FrameCorruption",
    "HostCrash",
    "LinkStall",
    "SlowHost",
    "parse_hosts",
    "SweepExecutor",
    "DispatchLedger",
    "ga_population_evaluator",
    "WorkerHost",
]

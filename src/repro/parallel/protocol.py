"""Length-prefixed, digest-verified JSON frames for sweep dispatch.

The coordinator (:mod:`repro.parallel.dispatch`) and the worker host
(:mod:`repro.parallel.worker`) speak a deliberately small wire
protocol over one TCP connection per host: every message is a single
*frame* and every frame is independently verifiable, because a
corrupted length-prefixed stream cannot be re-synchronised — once a
length field is wrong, every subsequent read is garbage.  The framing
therefore fails *loudly and typed* (:class:`ShardTransportError`)
and the caller retires the connection instead of guessing.

Frame layout (all integers big-endian)::

    MAGIC   4 bytes   b"RDSP"
    LENGTH  4 bytes   byte length of BODY (bounded by MAX_FRAME_BYTES)
    DIGEST 16 bytes   first 16 hex chars of sha256(BODY), ASCII
    BODY    LENGTH    canonical JSON: {"v": 1, "kind": ..., "payload": ...}

The digest makes truncation/corruption detectable before JSON parsing
ever runs; the canonical-JSON body keeps frames deterministic, which
the chaos harness relies on (a `FrameCorruption` spec flips bytes in
a frame whose exact bytes are reproducible).

Error taxonomy at this layer:

* bad magic, oversized length, digest mismatch, non-JSON or
  non-protocol body ⇒ :class:`ShardTransportError` (the *stream* is
  poisoned);
* EOF at a frame boundary, connection reset ⇒ :class:`HostLostError`
  (the *peer* is gone);
* ``socket.timeout`` propagates unchanged — the dispatch coordinator
  converts recv deadlines into lease expiries itself.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import HostLostError, ShardTransportError
from repro.common.util import canonical_doc

#: Protocol version embedded in every frame body; a mismatch at
#: handshake retires the host (no cross-version negotiation).
PROTOCOL_VERSION = 1

#: Frame preamble — lets a peer reject a non-dispatch stream (an HTTP
#: client, a port scan) on the first four bytes.
MAGIC = b"RDSP"

#: Upper bound on a frame body.  Sweep payloads and result documents
#: are small (a few KiB of JSON plus a serialized metrics registry);
#: 64 MiB is generous headroom while still catching a corrupted
#: length field before it turns into a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">4sI16s")
DIGEST_CHARS = 16


def body_digest(body: bytes) -> bytes:
    """First :data:`DIGEST_CHARS` hex chars of sha256(body), as ASCII."""
    return hashlib.sha256(body).hexdigest()[:DIGEST_CHARS].encode("ascii")


def encode_frame(kind: str, payload: Any) -> bytes:
    """Serialise one protocol message to its on-wire bytes."""
    doc = {"v": PROTOCOL_VERSION, "kind": kind, "payload": canonical_doc(payload)}
    body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ShardTransportError(
            f"frame body of {len(body)} bytes exceeds "
            f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(MAGIC, len(body), body_digest(body)) + body


def decode_body(body: bytes, host: str = "") -> Tuple[str, Any]:
    """Parse a verified frame body into ``(kind, payload)``."""
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardTransportError(
            f"frame body is not valid JSON: {exc}", host=host
        ) from exc
    if not isinstance(doc, dict) or set(doc) != {"v", "kind", "payload"}:
        raise ShardTransportError(
            "frame body is not a protocol message "
            f"(keys: {sorted(doc) if isinstance(doc, dict) else type(doc).__name__})",
            host=host,
        )
    if doc["v"] != PROTOCOL_VERSION:
        raise ShardTransportError(
            f"frame protocol version {doc['v']!r} != {PROTOCOL_VERSION}",
            host=host,
        )
    if not isinstance(doc["kind"], str):
        raise ShardTransportError("frame kind is not a string", host=host)
    return doc["kind"], doc["payload"]


def read_exact(sock: socket.socket, count: int, host: str = "") -> bytes:
    """Read exactly ``count`` bytes or raise :class:`HostLostError`.

    EOF mid-read means the peer died between frames or mid-frame;
    either way the connection is unusable.  ``socket.timeout``
    propagates to the caller (lease logic), other ``OSError``\\ s are
    wrapped as :class:`HostLostError`.
    """
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout:
            raise
        except OSError as exc:
            raise HostLostError(
                f"connection error after {count - remaining}/{count} bytes: {exc}",
                host=host,
            ) from exc
        if not chunk:
            raise HostLostError(
                f"peer closed connection after {count - remaining}/{count} bytes",
                host=host,
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameChannel:
    """One framed, digest-verified message stream over a socket.

    Thin and stateless beyond the socket itself: ``send`` writes one
    frame, ``recv`` reads and verifies one frame.  Both sides of the
    dispatch protocol use the same channel class, so framing bugs
    cannot hide in an asymmetric reimplementation.
    """

    def __init__(self, sock: socket.socket, host: str = "") -> None:
        self._sock = sock
        self.host = host

    def send(self, kind: str, payload: Any) -> None:
        data = encode_frame(kind, payload)
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise HostLostError(
                f"send of {kind!r} frame failed: {exc}", host=self.host
            ) from exc

    def recv(self, timeout: Optional[float] = None) -> Tuple[str, Any]:
        """Read one frame; ``timeout`` bounds the wait for its *first*
        byte (and each subsequent read) via ``socket.settimeout``.

        ``socket.timeout`` propagates so the coordinator can treat it
        as a missed heartbeat rather than a transport fault.
        """
        try:
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise HostLostError(
                f"socket unusable: {exc}", host=self.host
            ) from exc
        header = read_exact(self._sock, _HEADER.size, host=self.host)
        magic, length, digest = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ShardTransportError(
                f"bad frame magic {magic!r}", host=self.host
            )
        if length > MAX_FRAME_BYTES:
            raise ShardTransportError(
                f"frame length {length} exceeds MAX_FRAME_BYTES="
                f"{MAX_FRAME_BYTES} (corrupt length field?)",
                host=self.host,
            )
        body = read_exact(self._sock, length, host=self.host)
        actual = body_digest(body)
        if actual != digest:
            raise ShardTransportError(
                f"frame digest mismatch: header {digest!r} != body {actual!r}",
                host=self.host,
            )
        return decode_body(body, host=self.host)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already closed/reset by the peer; nothing to shut down
        try:
            self._sock.close()
        except OSError:
            pass  # double-close is harmless here


def hello_payload(code_version: str, role: str) -> Dict[str, Any]:
    """Handshake body: both sides announce version and role."""
    return {"code_version": code_version, "role": role, "protocol": PROTOCOL_VERSION}

"""Fault-tolerant multi-host sweep dispatch.

:class:`DispatchCoordinator` fans a :class:`~repro.parallel.executor.
SweepExecutor`'s shards out to remote worker hosts
(:mod:`repro.parallel.worker`) over the digest-verified frame protocol
(:mod:`repro.parallel.protocol`), and owns every robustness decision
in between:

* **leases** — each dispatched shard carries a lease id; the
  coordinator's wait for the next frame is bounded by
  ``lease_seconds``, and the worker's heartbeats (sent while its pool
  executes) renew that wait.  Silence past the deadline is a
  :class:`~repro.common.errors.LeaseExpiredError`: the host is
  presumed wedged or partitioned.
* **liveness + re-dispatch** — a lost host (connect failure, reset,
  EOF), an expired lease, or a corrupt frame retires that host for
  the rest of the run and requeues its shard for a surviving host,
  after an exponential-backoff delay computed by the *same*
  :class:`~repro.resilience.retry.RetryPolicy` the local executor
  uses (satisfying the one-resilience-vocabulary rule).  Task-raised
  exceptions are different: they travel in-band, consume the policy's
  ``max_attempts`` budget, and end in the same typed
  :class:`~repro.common.errors.WorkerFailureError` a local run would
  raise.
* **graceful degradation** — when every host is retired, whatever is
  still unresolved drains through a caller-supplied local runner (the
  executor's own inline/pooled path), flagged via the
  ``dispatch.degraded`` event and gauge; the sweep *completes*, it
  never silently loses shards.
* **ledger** — every transition is recorded in a
  :class:`~repro.parallel.ledger.DispatchLedger` (atomic rewrites),
  so an interrupted sweep leaves an honest on-disk account and the
  re-run serves completed shards from the result cache.

Determinism: the coordinator owns *placement and recovery*, never
*results*.  Shard payloads, seeds and the submission-order merge are
all fixed by the executor before dispatch begins, so which host runs
a shard — or whether it ran twice, or locally — is unobservable in
the merged output.  The coordinator's own ``dispatch.*`` metrics live
in a **separate registry** from the executor's merged sweep registry
for the same reason: host counts and re-dispatches are run-dependent
and must not leak into the byte-identical exposition.

The :class:`ChaosProxy` makes the failure paths testable the way the
resilience layer's :class:`~repro.resilience.faults.FaultInjector`
made shaper faults testable: frozen spec dataclasses keyed off shard
index (never wall clock), firing deterministically at the
coordinator's transport boundary.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import repro
from repro.common.errors import (
    ConfigurationError,
    DispatchError,
    HostLostError,
    LeaseExpiredError,
    ShardTransportError,
    WorkerFailureError,
)
from repro.common.rng import DeterministicRng
from repro.obs import diag
from repro.obs.events import CATEGORY_DISPATCH
from repro.obs.metrics import MetricsRegistry
from repro.parallel.ledger import DispatchLedger
from repro.parallel.protocol import FrameChannel, hello_payload
from repro.parallel.worker import task_spec
from repro.resilience.retry import RetryPolicy, _default_sleep

#: Dispatch default: three tries per shard, exponential backoff between
#: re-dispatches starting at 100 ms, capped at 2 s.
DEFAULT_DISPATCH_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    backoff_seconds=0.1,
    backoff_factor=2.0,
    backoff_max_seconds=2.0,
)

#: Default lease deadline: how long the coordinator waits for a frame
#: (result *or* heartbeat) before declaring the shard's host wedged.
DEFAULT_LEASE_SECONDS = 30.0

#: TCP connect budget per host.
DEFAULT_CONNECT_TIMEOUT = 5.0


def parse_hosts(spec: str) -> List[Tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (the ``--hosts`` flag)."""
    out: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"host spec {part!r} is not of the form 'host:port'"
            )
        try:
            out.append((host, int(port)))
        except ValueError as exc:
            raise ConfigurationError(
                f"host spec {part!r} has a non-integer port"
            ) from exc
    if not out:
        raise ConfigurationError(f"no hosts in spec {spec!r}")
    return out


# -- chaos ------------------------------------------------------------


@dataclass(frozen=True)
class HostCrash:
    """Retire the host that picks up ``shard_index``, at send time.

    Models a worker process dying between accepting a shard and
    acknowledging it: the coordinator sees the connection vanish
    (:class:`HostLostError`) and must re-dispatch elsewhere.
    """

    shard_index: int


@dataclass(frozen=True)
class LinkStall:
    """Stall the link while ``shard_index`` is in flight.

    The coordinator's frame wait times out exactly as if heartbeats
    stopped arriving — the lease expires and the shard re-dispatches.
    """

    shard_index: int


@dataclass(frozen=True)
class FrameCorruption:
    """Corrupt the frame carrying ``shard_index``'s result.

    The digest check fails (:class:`ShardTransportError`); the
    contract under test is that a corrupt frame is *never* merged —
    the shard re-runs and the stream is abandoned.
    """

    shard_index: int


@dataclass(frozen=True)
class SlowHost:
    """Inject ``heartbeats`` synthetic heartbeats before
    ``shard_index``'s real result frame.

    Exercises the lease-renewal path: a slow-but-alive host must keep
    its lease and its shard, with zero effect on the merged output.
    """

    shard_index: int
    heartbeats: int = 3


class ChaosProxy:
    """Deterministic failure injection at the coordinator's transport
    boundary.

    Specs are keyed off the *shard index* being dispatched — never
    wall clock, thread timing, or host identity alone — so a chaos
    scenario replays identically on every run (the FaultInjector
    discipline from :mod:`repro.resilience.faults`).  Each spec fires
    exactly once; everything that fires is appended to :attr:`log`.
    """

    def __init__(self, specs: Sequence[Any] = ()) -> None:
        for spec in specs:
            if not isinstance(
                spec, (HostCrash, LinkStall, FrameCorruption, SlowHost)
            ):
                raise ConfigurationError(
                    f"unknown chaos spec {type(spec).__name__}"
                )
        self.specs = tuple(specs)
        self.log: List[Dict[str, Any]] = []
        self._fired: set = set()
        self._lock = threading.Lock()

    def _fire(self, position: int, spec: Any, host: str, shard: int) -> None:
        self.log.append(
            {
                "spec": type(spec).__name__,
                "shard": shard,
                "host": host,
            }
        )
        self._fired.add(position)

    def before_send(self, host: str, shard: int) -> None:
        """Hook before a shard frame is sent; may raise."""
        with self._lock:
            for position, spec in enumerate(self.specs):
                if position in self._fired:
                    continue
                if isinstance(spec, HostCrash) and spec.shard_index == shard:
                    self._fire(position, spec, host, shard)
                    raise HostLostError(
                        "chaos: host crashed taking shard "
                        f"{shard}", host=host, shard=shard,
                    )

    def recv(
        self,
        host: str,
        shard: int,
        lease: str,
        real_recv: Callable[[], Tuple[str, Any]],
    ) -> Tuple[str, Any]:
        """Hook around one frame receive; may raise or inject."""
        with self._lock:
            for position, spec in enumerate(self.specs):
                if position in self._fired:
                    continue
                if not isinstance(
                    spec, (LinkStall, FrameCorruption, SlowHost)
                ) or spec.shard_index != shard:
                    continue
                if isinstance(spec, LinkStall):
                    self._fire(position, spec, host, shard)
                    raise socket.timeout(
                        f"chaos: link stalled on shard {shard}"
                    )
                if isinstance(spec, FrameCorruption):
                    self._fire(position, spec, host, shard)
                    raise ShardTransportError(
                        f"chaos: frame digest mismatch on shard {shard}",
                        host=host, shard=shard,
                    )
                if isinstance(spec, SlowHost):
                    remaining = self._slow_remaining(position, spec)
                    if remaining > 0:
                        self._slow_consume(position)
                        return (
                            "heartbeat",
                            {
                                "shard": shard,
                                "lease": lease,
                                "seq": spec.heartbeats - remaining + 1,
                                "synthetic": True,
                            },
                        )
                    self._fire(position, spec, host, shard)
        return real_recv()

    # SlowHost needs per-spec countdown state; keep it out of the
    # frozen spec itself.
    def _slow_remaining(self, position: int, spec: SlowHost) -> int:
        if not hasattr(self, "_slow_state"):
            self._slow_state: Dict[int, int] = {}
        return self._slow_state.setdefault(position, spec.heartbeats)

    def _slow_consume(self, position: int) -> None:
        self._slow_state[position] -= 1


# -- coordinator ------------------------------------------------------


@dataclass
class _HostState:
    """Coordinator-side view of one worker host."""

    index: int
    address: Tuple[str, int]
    channel: Optional[FrameChannel] = None
    alive: bool = True
    shards_completed: int = 0

    @property
    def name(self) -> str:
        return f"{self.address[0]}:{self.address[1]}"


@dataclass
class _PendingShard:
    """One shard's dispatch bookkeeping (distinct from the executor's
    submission bookkeeping, which never changes here)."""

    shard: Any  # executor _Shard: .index .payload .label .task_seed .digest
    task_failures: int = 0
    redispatches: int = 0

    @property
    def attempts(self) -> int:
        return self.task_failures + self.redispatches


class _TaskFailed(Exception):
    """Internal: the remote task raised (in-band ok=False result)."""


class DispatchCoordinator:
    """Fans shards out to worker hosts; survives the hosts not
    surviving.

    Parameters
    ----------
    hosts:
        ``(host, port)`` pairs, or a ``"h:p,h:p"`` spec string.
    retry:
        Shared :class:`RetryPolicy`: ``max_attempts`` bounds in-band
        task failures per shard, the backoff fields pace re-dispatch.
    lease_seconds:
        Frame-wait deadline per dispatched shard (renewed by
        heartbeats).
    ledger:
        Path, :class:`DispatchLedger`, or ``None`` (in-memory ledger).
    chaos:
        Optional :class:`ChaosProxy`.
    sleep, rng:
        Injectable backoff primitives (tests pass recorders); the
        defaults are the real ``time.sleep`` and midpoint jitter.
    """

    def __init__(
        self,
        hosts: Any,
        retry: RetryPolicy = DEFAULT_DISPATCH_RETRY_POLICY,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        ledger: Any = None,
        chaos: Optional[ChaosProxy] = None,
        sleep: Callable[[float], None] = _default_sleep,
        rng: Optional[DeterministicRng] = None,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        if isinstance(hosts, str):
            hosts = parse_hosts(hosts)
        if not hosts:
            raise ConfigurationError("dispatch needs at least one host")
        if lease_seconds <= 0:
            raise ConfigurationError("lease_seconds must be positive")
        self.retry = retry
        self.lease_seconds = lease_seconds
        self.connect_timeout = connect_timeout
        self.chaos = chaos
        self._sleep = sleep
        self._rng = rng
        if isinstance(ledger, str):
            ledger = DispatchLedger(ledger)
        self.ledger: DispatchLedger = (
            ledger if ledger is not None else DispatchLedger(None)
        )
        self._hosts = [
            _HostState(index=i, address=tuple(addr))
            for i, addr in enumerate(hosts)
        ]
        self.degraded = False
        self.registry = MetricsRegistry()
        self.registry.gauge("dispatch.hosts_configured").set(len(self._hosts))
        self.registry.gauge("dispatch.hosts_alive").set(0)
        self.registry.gauge("dispatch.degraded").set(0)
        # Pre-register every counter family so `repro dispatch status`
        # and scrapes see a stable zero-filled set, not one that grows
        # as failures happen to occur.
        for family in (
            "dispatch.shards_dispatched",
            "dispatch.shards_completed",
            "dispatch.cached_shards",
            "dispatch.redispatches",
            "dispatch.heartbeats",
            "dispatch.task_failures",
            "dispatch.transport_errors",
            "dispatch.lease_expiries",
            "dispatch.hosts_retired",
            "dispatch.local_fallback_shards",
        ):
            self.registry.counter(family)
        self._cond = threading.Condition()
        self._queue: Deque[_PendingShard] = deque()
        self._results: Dict[int, Any] = {}
        self._unresolved: set = set()
        self._failure: Optional[BaseException] = None

    # -- events / counters (callers hold no lock; diag is append-only,
    # -- counters are plain int adds guarded by self._cond where racy) --

    def _emit(self, name: str, shard: int = -1, **args: Any) -> None:
        diag.emit_diagnostic(
            name, category=CATEGORY_DISPATCH, shard=shard, **args
        )

    # -- connection management ----------------------------------------

    def _connect(self, state: _HostState) -> None:
        """Connect + handshake one host; raises DispatchError flavours."""
        if state.channel is not None:
            return
        try:
            sock = socket.create_connection(
                state.address, timeout=self.connect_timeout
            )
        except OSError as exc:
            raise HostLostError(
                f"connect to {state.name} failed: {exc}", host=state.name
            ) from exc
        channel = FrameChannel(sock, state.name)
        try:
            channel.send(
                "hello", hello_payload(repro.__version__, "coordinator")
            )
            kind, payload = channel.recv(timeout=self.connect_timeout)
        except socket.timeout as exc:
            channel.close()
            raise HostLostError(
                f"handshake with {state.name} timed out", host=state.name
            ) from exc
        except DispatchError:
            channel.close()
            raise
        if kind != "hello_ack" or not isinstance(payload, dict):
            detail = ""
            if kind == "error" and isinstance(payload, dict):
                detail = f": {payload.get('error', '')}"
            channel.close()
            raise ShardTransportError(
                f"handshake with {state.name} rejected ({kind}){detail}",
                host=state.name,
            )
        if payload.get("code_version") != repro.__version__:
            channel.close()
            raise ShardTransportError(
                f"{state.name} runs code_version "
                f"{payload.get('code_version')!r} != {repro.__version__} — "
                "results would not be cache-compatible",
                host=state.name,
            )
        state.channel = channel
        self._emit("dispatch.host_up", host=state.name)

    def _retire_host(self, state: _HostState, error: BaseException) -> None:
        with self._cond:
            if not state.alive:
                return
            state.alive = False
            alive = sum(1 for h in self._hosts if h.alive)
            self.registry.gauge("dispatch.hosts_alive").set(alive)
            self.registry.counter("dispatch.hosts_retired").inc()
            self._cond.notify_all()
        if state.channel is not None:
            state.channel.close()
            state.channel = None
        self._emit(
            "dispatch.host_retired", host=state.name,
            error=f"{type(error).__name__}: {error}",
        )

    def close(self) -> None:
        """Drop all connections (worker hosts keep serving)."""
        for state in self._hosts:
            if state.channel is not None:
                state.channel.close()
                state.channel = None

    def shutdown_workers(self) -> None:
        """Ask every reachable worker *process* to exit, then close."""
        for state in self._hosts:
            try:
                self._connect(state)
            except DispatchError:
                continue
            try:
                state.channel.send("shutdown", {"stop_server": True})
            except DispatchError:
                pass  # already gone — the goal state anyway
        self.close()

    # -- the run ------------------------------------------------------

    def run(
        self,
        fn: Callable[..., Any],
        shards: Sequence[Any],
        kind: str = "",
        cached_shards: Sequence[Any] = (),
        local_runner: Optional[
            Callable[[List[Any]], Dict[int, Any]]
        ] = None,
    ) -> Dict[int, Any]:
        """Execute ``shards`` across the hosts; returns index->result.

        ``cached_shards`` are recorded in the ledger (state
        ``cached``) but never dispatched — the executor already served
        them from the result cache.  ``local_runner`` is the
        degradation path: called with every shard still unresolved
        after all hosts are gone.
        """
        spec = task_spec(fn)
        self.ledger.begin(
            kind or spec,
            [h.name for h in self._hosts],
            len(shards) + len(cached_shards),
        )
        for shard in cached_shards:
            self.registry.counter("dispatch.cached_shards").inc()
            self.ledger.record(
                shard.index, "cached", label=shard.label,
                digest=getattr(shard, "digest", None) or "",
            )
        self._queue = deque(_PendingShard(shard) for shard in shards)
        self._results = {}
        self._unresolved = {shard.index for shard in shards}
        self._failure = None
        for shard in shards:
            self.ledger.record(shard.index, "queued", label=shard.label)
        self._emit(
            "dispatch.sweep_begin", kind=kind or spec,
            shards=len(shards), cached=len(cached_shards),
            hosts=len(self._hosts),
        )

        threads = []
        for state in self._hosts:
            if not state.alive:
                continue
            thread = threading.Thread(
                target=self._host_loop, args=(state, spec),
                name=f"dispatch-{state.name}", daemon=True,
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()

        if self._failure is not None:
            raise self._failure

        leftovers = self._drain_leftovers()
        if leftovers:
            self._run_degraded(leftovers, local_runner)

        self._emit(
            "dispatch.sweep_done", shards=len(shards),
            degraded=self.degraded,
        )
        return dict(self._results)

    def _drain_leftovers(self) -> List[_PendingShard]:
        with self._cond:
            leftovers = sorted(self._queue, key=lambda p: p.shard.index)
            self._queue.clear()
            missing = self._unresolved - {
                p.shard.index for p in leftovers
            }
            if missing:
                raise DispatchError(
                    f"shards {sorted(missing)} neither completed nor "
                    "requeued — coordinator bookkeeping bug"
                )
            return leftovers

    def _run_degraded(
        self,
        leftovers: List[_PendingShard],
        local_runner: Optional[Callable[[List[Any]], Dict[int, Any]]],
    ) -> None:
        self.degraded = True
        self.registry.gauge("dispatch.degraded").set(1)
        self.registry.counter("dispatch.local_fallback_shards").inc(
            len(leftovers)
        )
        self.ledger.set_degraded(True)
        self._emit(
            "dispatch.degraded", shards=len(leftovers),
            reason="all hosts retired",
        )
        if local_runner is None:
            raise DispatchError(
                f"all {len(self._hosts)} host(s) retired with "
                f"{len(leftovers)} shard(s) unresolved and no local "
                "runner to degrade to"
            )
        local_results = local_runner([p.shard for p in leftovers])
        for pending in leftovers:
            index = pending.shard.index
            if index not in local_results:
                raise DispatchError(
                    f"local drain did not produce shard {index}"
                )
            self._results[index] = local_results[index]
            self._unresolved.discard(index)
            self.ledger.record(
                index, "local", label=pending.shard.label,
                attempts=pending.attempts + 1,
            )

    # -- per-host worker thread ---------------------------------------

    def _host_loop(self, state: _HostState, spec: str) -> None:
        try:
            self._connect(state)
        except DispatchError as exc:
            self._retire_host(state, exc)
            return
        with self._cond:
            alive = sum(1 for h in self._hosts if h.alive)
            self.registry.gauge("dispatch.hosts_alive").set(alive)
        while True:
            with self._cond:
                while (
                    not self._queue
                    and self._unresolved
                    and self._failure is None
                    and state.alive
                ):
                    self._cond.wait(timeout=0.05)
                if (
                    self._failure is not None
                    or not self._unresolved
                    or not state.alive
                ):
                    return
                if not self._queue:
                    continue
                pending = self._queue.popleft()
            try:
                value = self._execute_on_host(state, spec, pending)
            except _TaskFailed as exc:
                self._handle_task_failure(state, pending, exc)
                continue
            except (
                LeaseExpiredError, ShardTransportError, HostLostError,
            ) as exc:
                self._handle_transport_failure(state, pending, exc)
                return
            except Exception as exc:  # defensive: never strand a shard
                with self._cond:
                    self._queue.append(pending)
                    if self._failure is None:
                        self._failure = exc
                    self._cond.notify_all()
                return
            with self._cond:
                self._results[pending.shard.index] = value
                self._unresolved.discard(pending.shard.index)
                state.shards_completed += 1
                self.registry.counter("dispatch.shards_completed").inc()
                self._cond.notify_all()
            self.ledger.record(
                pending.shard.index, "completed",
                label=pending.shard.label, host=state.name,
                attempts=pending.attempts + 1,
                digest=getattr(pending.shard, "digest", None) or "",
            )
            self._emit(
                "dispatch.shard_done", shard=pending.shard.index,
                host=state.name, attempts=pending.attempts + 1,
            )

    def _execute_on_host(
        self, state: _HostState, spec: str, pending: _PendingShard
    ) -> Any:
        shard = pending.shard
        lease = f"{shard.index}:{pending.attempts + 1}"
        if self.chaos is not None:
            self.chaos.before_send(state.name, shard.index)
        assert state.channel is not None
        state.channel.send(
            "shard",
            {
                "shard": shard.index,
                "lease": lease,
                "fn": spec,
                "payload": shard.payload,
                "task_seed": shard.task_seed,
                "label": shard.label,
            },
        )
        with self._cond:
            self.registry.counter("dispatch.shards_dispatched").inc()
        self.ledger.record(
            shard.index, "leased", label=shard.label, host=state.name,
            attempts=pending.attempts + 1,
        )
        self._emit(
            "dispatch.shard_leased", shard=shard.index, host=state.name,
            lease=lease,
        )

        def real_recv() -> Tuple[str, Any]:
            assert state.channel is not None
            return state.channel.recv(timeout=self.lease_seconds)

        while True:
            try:
                if self.chaos is not None:
                    kind, payload = self.chaos.recv(
                        state.name, shard.index, lease, real_recv
                    )
                else:
                    kind, payload = real_recv()
            except socket.timeout as exc:
                raise LeaseExpiredError(
                    f"lease {lease} on {state.name} expired after "
                    f"{self.lease_seconds}s without heartbeat or result",
                    host=state.name, shard=shard.index,
                    lease_seconds=self.lease_seconds,
                ) from exc
            if not isinstance(payload, dict):
                raise ShardTransportError(
                    f"non-object {kind!r} payload from {state.name}",
                    host=state.name, shard=shard.index,
                )
            if payload.get("lease") != lease:
                # A frame from a previous lease (e.g. a result that
                # raced its own expiry): log and keep waiting — stale
                # results are *never* merged.
                self._emit(
                    "dispatch.stale_frame", shard=shard.index,
                    host=state.name, kind=kind,
                    stale_lease=str(payload.get("lease")),
                )
                continue
            if kind == "heartbeat":
                with self._cond:
                    self.registry.counter("dispatch.heartbeats").inc()
                self._emit(
                    "dispatch.heartbeat", shard=shard.index,
                    host=state.name, seq=payload.get("seq", 0),
                )
                continue
            if kind == "result":
                if payload.get("ok"):
                    return payload.get("value")
                raise _TaskFailed(payload.get("error", "unknown error"))
            raise ShardTransportError(
                f"unexpected {kind!r} frame from {state.name} while "
                f"waiting on lease {lease}",
                host=state.name, shard=shard.index,
            )

    # -- failure handling ---------------------------------------------

    def _handle_task_failure(
        self, state: _HostState, pending: _PendingShard, exc: _TaskFailed
    ) -> None:
        """The task itself raised on the worker: budget it like the
        local executor budgets attempts."""
        pending.task_failures += 1
        with self._cond:
            self.registry.counter("dispatch.task_failures").inc()
        self._emit(
            "dispatch.shard_task_failed", shard=pending.shard.index,
            host=state.name, attempts=pending.attempts,
            error=str(exc),
        )
        if pending.task_failures >= self.retry.max_attempts:
            failure = WorkerFailureError(
                f"task {pending.shard.label} failed after "
                f"{pending.task_failures} attempt(s): {exc}",
                task_index=pending.shard.index,
                label=pending.shard.label,
                attempts=pending.task_failures,
                last_error=str(exc),
            )
            self.ledger.record(
                pending.shard.index, "failed", label=pending.shard.label,
                attempts=pending.attempts, detail=str(exc),
            )
            with self._cond:
                if self._failure is None:
                    self._failure = failure
                self._cond.notify_all()
            return
        self._requeue(pending, f"task failure: {exc}")

    def _handle_transport_failure(
        self, state: _HostState, pending: _PendingShard, exc: BaseException
    ) -> None:
        """The *transport* failed: retire the host, requeue the shard
        (transport loss does not consume the task's attempt budget —
        the task never got a chance to be wrong)."""
        with self._cond:
            if isinstance(exc, LeaseExpiredError):
                self.registry.counter("dispatch.lease_expiries").inc()
            elif isinstance(exc, ShardTransportError):
                self.registry.counter("dispatch.transport_errors").inc()
        self._retire_host(state, exc)
        pending.redispatches += 1
        self._requeue(pending, f"{type(exc).__name__}: {exc}")

    def _requeue(self, pending: _PendingShard, reason: str) -> None:
        delay = self.retry.backoff_delay(
            max(1, pending.attempts), rng=self._rng
        )
        if delay > 0.0:
            self._sleep(delay)
        with self._cond:
            self.registry.counter("dispatch.redispatches").inc()
            self._queue.append(pending)
            self._cond.notify_all()
        self.ledger.record(
            pending.shard.index, "requeued", label=pending.shard.label,
            attempts=pending.attempts,
        )
        self._emit(
            "dispatch.shard_requeued", shard=pending.shard.index,
            attempts=pending.attempts, reason=reason,
            backoff_seconds=delay,
        )

"""Persistent dispatch ledger: what happened to every shard, on disk.

The coordinator rewrites one JSON document on every shard state
transition using the REPROSNAP atomic-write primitive
(:func:`repro.resilience.snapshot.atomic_write_bytes`), so a crashed
or SIGKILLed coordinator always leaves a *complete, parseable* ledger
behind — never a truncated one.  The ledger is the audit trail and
the resume story's witness: re-running an interrupted sweep serves
completed shards from the content-addressed cache (the digests are in
here), and ``repro dispatch status`` renders this file.

Shard states form a small machine::

    queued ──> leased ──> completed
                 │  ^
                 v  │ (re-dispatch, attempts += 1)
              requeued
                 │
                 v
       local (degraded drain)      failed (budget exhausted)

plus ``cached`` for shards the executor satisfied from the result
cache without dispatching at all.

The ledger deliberately stores *digests*, not result values — results
live in the cache, addressed by the same digest, so the ledger stays
small and the two artefacts cross-check each other.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.resilience.snapshot import atomic_write_bytes

#: Bumped when the ledger document layout changes; a loader seeing an
#: unknown schema refuses rather than misreads.
LEDGER_SCHEMA = 1

#: Shard states the ledger may record.
SHARD_STATES = (
    "queued",
    "leased",
    "requeued",
    "completed",
    "cached",
    "local",
    "failed",
)


class DispatchLedger:
    """One sweep's dispatch ledger, persisted atomically on mutation.

    ``path=None`` gives an in-memory ledger (tests, callers that only
    want the status document) — same API, no I/O.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path else None
        # Coordinator host threads record transitions concurrently; the
        # lock makes each mutate-and-flush atomic so a racing flush can
        # never rename a stale snapshot over a fuller one.
        self._lock = threading.Lock()
        self.doc: Dict[str, Any] = {
            "ledger_schema": LEDGER_SCHEMA,
            "kind": "",
            "hosts": [],
            "degraded": False,
            "shards": {},
        }

    # -- mutation ----------------------------------------------------

    def begin(self, kind: str, hosts: List[str], shard_count: int) -> None:
        """Start (or restart) a sweep: reset the document and persist."""
        with self._lock:
            self.doc["kind"] = kind
            self.doc["hosts"] = list(hosts)
            self.doc["degraded"] = False
            self.doc["shards"] = {}
            self.doc["shard_count"] = shard_count
            self._flush()

    def record(
        self,
        shard: int,
        state: str,
        label: str = "",
        host: str = "",
        attempts: int = 0,
        digest: str = "",
        detail: str = "",
    ) -> None:
        """Record a shard transition and persist the whole document."""
        if state not in SHARD_STATES:
            raise ConfigurationError(
                f"unknown ledger shard state {state!r} "
                f"(expected one of {SHARD_STATES})"
            )
        with self._lock:
            entry: Dict[str, Any] = dict(
                self.doc["shards"].get(str(shard), {})
            )
            entry["state"] = state
            if label:
                entry["label"] = label
            if host:
                entry["host"] = host
            if attempts:
                entry["attempts"] = attempts
            if digest:
                entry["digest"] = digest
            if detail:
                entry["detail"] = detail
            elif state != "failed":
                entry.pop("detail", None)
            self.doc["shards"][str(shard)] = entry
            self._flush()

    def set_degraded(self, degraded: bool = True) -> None:
        with self._lock:
            self.doc["degraded"] = bool(degraded)
            self._flush()

    # -- queries -----------------------------------------------------

    def states(self) -> Dict[int, str]:
        """Shard index -> current state."""
        with self._lock:
            return {
                int(index): entry.get("state", "")
                for index, entry in self.doc["shards"].items()
            }

    def counts(self) -> Dict[str, int]:
        """State -> number of shards currently in it (zero-filled)."""
        counts = {state: 0 for state in SHARD_STATES}
        with self._lock:
            for entry in self.doc["shards"].values():
                state = entry.get("state", "")
                if state in counts:
                    counts[state] += 1
        return counts

    # -- persistence -------------------------------------------------

    def _flush(self) -> None:
        if self._path is None:
            return
        payload = json.dumps(
            self.doc, sort_keys=True, indent=2
        ).encode("utf-8") + b"\n"
        atomic_write_bytes(str(self._path), payload)

    @classmethod
    def load(cls, path: str) -> "DispatchLedger":
        """Read a persisted ledger back (for ``repro dispatch status``)."""
        ledger = cls(None)
        raw = Path(path).read_text(encoding="utf-8")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"ledger {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or "ledger_schema" not in doc:
            raise ConfigurationError(f"{path} is not a dispatch ledger")
        if doc["ledger_schema"] != LEDGER_SCHEMA:
            raise ConfigurationError(
                f"ledger schema {doc['ledger_schema']!r} != {LEDGER_SCHEMA} "
                f"(written by a different release?)"
            )
        doc.setdefault("shards", {})
        doc.setdefault("hosts", [])
        doc.setdefault("degraded", False)
        doc.setdefault("kind", "")
        ledger.doc = doc
        ledger._path = Path(path)
        return ledger

"""Worker task functions for the parallel sweep executor.

Each task here is the unit one worker process executes: a module-level
function (so ``spawn`` can pickle a reference to it) of one plain-JSON
payload dict, returning a plain-JSON result dict.  Keeping both sides
JSON-typed gives three properties at once:

* the payload digests canonically for the result cache
  (:func:`repro.parallel.cache.config_digest`);
* the result round-trips through the cache without loss, so a cache
  hit is byte-equivalent to a fresh run;
* the sequential (``jobs=1``) and pooled paths run the *same code* on
  the *same values* — jobs-invariance holds by construction, and the
  differential tests only have to confirm it survives the process
  boundary.

Every simulation task also returns the full
:func:`~repro.sim.stats.report_digest` of its run, so sweep outputs
can be compared point-by-point across ``--jobs`` values from the CLI.

Heavy imports (the simulator stack) happen inside the functions: the
parent builds payloads without them, and each spawned worker pays the
import cost once for its lifetime, not once per task.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _defaults_from(payload: Dict[str, Any]):
    from repro.analysis.experiments import ExperimentDefaults
    from repro.core.bins import BinSpec

    spec = BinSpec(
        edges=tuple(payload["spec_edges"]),
        replenish_period=int(payload["spec_period"]),
    )
    return ExperimentDefaults(
        accesses=int(payload["accesses"]),
        cycles=int(payload["cycles"]),
        seed=int(payload["seed"]),
        spec=spec,
    ), spec


def _event_times(gaps: Sequence[int]) -> List[int]:
    out, t = [], 0
    for gap in gaps:
        t += gap
        out.append(t)
    return out


#: Bucket edges (cycles) of the per-point run-length histogram in the
#: shard registry documents.
_POINT_CYCLE_EDGES = (
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000,
)


def _registry_doc(*reports) -> Dict[str, Any]:
    """The worker's serialized registry snapshot for one task.

    Every simulation task attaches this under ``"obs_registry"``; the
    executor strips it from the visible result and folds it into the
    cluster-level registry (``SweepExecutor.merged_registry``), so a
    ``repro sweep --serve`` scrape aggregates all shards as one
    system.  Only jobs-invariant, report-derived quantities appear —
    the merged exposition must be byte-identical across ``--jobs``.
    """
    from repro.obs.export import serialize_registry
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    points = registry.counter("sweep.points")
    cycles = registry.counter("sweep.cycles")
    retired = registry.counter("sweep.retired_instructions")
    demand = registry.counter("sweep.demand_requests")
    fake = registry.counter("sweep.fake_requests")
    row_hits = registry.counter("sweep.row_hits")
    row_misses = registry.counter("sweep.row_misses")
    point_cycles = registry.histogram(
        "sweep.point_cycles", _POINT_CYCLE_EDGES
    )
    for report in reports:
        points.inc()
        cycles.inc(report.cycles_run)
        row_hits.inc(report.row_hits)
        row_misses.inc(report.row_misses)
        point_cycles.record(report.cycles_run)
        for core in report.cores:
            retired.inc(core.retired_instructions)
            demand.inc(core.demand_requests)
            fake.inc(
                core.fake_requests_sent + core.fake_responses_sent
            )
    return serialize_registry(registry)


def make_run_payload(benchmark: str, defaults, spec=None) -> Dict[str, Any]:
    """The shared payload core: benchmark + run geometry + spec."""
    spec = spec if spec is not None else defaults.spec
    return {
        "benchmark": benchmark,
        "accesses": defaults.accesses,
        "cycles": defaults.cycles,
        "seed": defaults.seed,
        "spec_edges": list(spec.edges),
        "spec_period": spec.replenish_period,
    }


# ---------------------------------------------------------------------------
# alone runs (sweep stage 0: baselines and intrinsic profiles)
# ---------------------------------------------------------------------------


def alone_base_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one benchmark alone, unshaped; return its intrinsic profile.

    The result carries everything later stages derive from the base
    run — IPC, cycle count, and the intrinsic request gap sequence —
    so a cached base run reconstructs the sweep's anchors without
    re-simulating.
    """
    from repro.analysis.experiments import run_alone
    from repro.sim.stats import report_digest

    defaults, _spec = _defaults_from(payload)
    report = run_alone(
        payload["benchmark"], defaults,
        core_slot=int(payload.get("core_slot", 0)),
    )
    stats = report.core(0)
    return {
        "ipc": stats.ipc,
        "cycles_run": report.cycles_run,
        "gaps": list(stats.request_intrinsic.gaps),
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }


def alone_ipc_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Alone-IPC measurement at a mix slot (Figure 13 denominators)."""
    from repro.analysis.experiments import run_alone
    from repro.sim.stats import report_digest

    defaults, _spec = _defaults_from(payload)
    report = run_alone(
        payload["benchmark"], defaults,
        core_slot=int(payload.get("core_slot", 0)),
    )
    return {
        "ipc": report.core(0).ipc,
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }


# ---------------------------------------------------------------------------
# trade-off sweep points (Figure 2)
# ---------------------------------------------------------------------------


def tradeoff_point_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One shaped point of the Figure 2 trade-off sweep.

    Runs the benchmark alone under the payload's credit configuration
    and reports IPC plus the full detectability-lab score set — the
    windowed-rate MI between the intrinsic and shaped request streams
    and the zoo's AUC / XCorr / spectral probes against the
    configuration's own target distribution.  ``bias_correction`` is
    always on — every point of the sweep, anchors included, must use
    one estimator configuration or the curve is not mutually
    comparable (the ISSUE-5 anchor bug).
    """
    from repro.analysis.experiments import run_alone
    from repro.core.bins import BinConfiguration
    from repro.security.detect import detect_report
    from repro.security.mutual_information import windowed_rate_mi
    from repro.sim.stats import report_digest
    from repro.sim.system import RequestShapingPlan

    defaults, spec = _defaults_from(payload)
    config = BinConfiguration(tuple(payload["credits"]))
    report = run_alone(
        payload["benchmark"], defaults,
        request_plan=RequestShapingPlan(config=config, spec=spec),
    )
    stats = report.core(0)
    mi = windowed_rate_mi(
        _event_times(stats.request_intrinsic.gaps),
        _event_times(stats.request_shaped.gaps),
        int(payload["window_cycles"]),
        report.cycles_run,
        bias_correction=True,
    )
    zoo = detect_report(
        label=str(payload["label"]),
        intrinsic_gaps=stats.request_intrinsic.gaps,
        observed_gaps=stats.request_shaped.gaps,
        spec=spec,
        target_frequencies=config.normalized(),
        seed=int(payload.get("detect_seed", payload["seed"])),
        window_cycles=int(payload["window_cycles"]),
        mi_bits=mi,
    )
    return {
        "label": payload["label"],
        "ipc": stats.ipc,
        "mi": mi,
        "auc": zoo.auc,
        "auc_logistic": zoo.auc_logistic,
        "auc_stumps": zoo.auc_stumps,
        "xcorr": zoo.xcorr,
        "spectral": zoo.spectral,
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }


def detect_point_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One configuration of the attacker-zoo detectability suite.

    With ``payload["credits"]`` the benchmark runs under that shaping
    configuration; without it the run is unshaped (the observed stream
    IS the intrinsic one — the covert-channel worst case).
    ``payload["target_credits"]`` is always present: the distribution
    the zoo's classifiers test the observed stream against.
    """
    from repro.analysis.experiments import run_alone
    from repro.core.bins import BinConfiguration
    from repro.security.detect import detect_report
    from repro.sim.stats import report_digest
    from repro.sim.system import RequestShapingPlan

    defaults, spec = _defaults_from(payload)
    plan = None
    if payload.get("credits") is not None:
        plan = RequestShapingPlan(
            config=BinConfiguration(tuple(payload["credits"])), spec=spec
        )
    report = run_alone(payload["benchmark"], defaults, request_plan=plan)
    stats = report.core(0)
    observed_gaps = (
        stats.request_shaped.gaps if plan is not None
        else stats.request_intrinsic.gaps
    )
    target = BinConfiguration(
        tuple(payload["target_credits"])
    ).normalized()
    zoo = detect_report(
        label=str(payload["label"]),
        intrinsic_gaps=stats.request_intrinsic.gaps,
        observed_gaps=observed_gaps,
        spec=spec,
        target_frequencies=target,
        seed=int(payload.get("detect_seed", payload["seed"])),
        window_cycles=int(payload["window_cycles"]),
    )
    return {
        "label": payload["label"],
        "ipc": stats.ipc,
        "mi": zoo.mi_bits,
        "auc": zoo.auc,
        "auc_logistic": zoo.auc_logistic,
        "auc_stumps": zoo.auc_stumps,
        "xcorr": zoo.xcorr,
        "spectral": zoo.spectral,
        "segments": zoo.segments,
        "report_digest": zoo.digest(),
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }


# ---------------------------------------------------------------------------
# mix slowdown points (TP / FS sweeps, scalability)
# ---------------------------------------------------------------------------


def mix_slowdown_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one protected mix; report per-core IPCs and avg slowdown.

    ``payload["names"]`` is the program mix, ``scheduler`` /
    ``scheduler_kwargs`` / ``bank_partitioning`` pick the baseline,
    optional ``request_plans`` (core-id string -> credit list) installs
    per-core Camouflage shapers, and ``alone_ipcs`` provides the
    slowdown denominators.  ``slip_fraction`` is included when the
    scheduler exposes one (the FS leak proxy).  Optional
    ``payload["detect"]`` (``{"core": K, "seed": S}``) scores core K's
    request streams against the zoo; requires a ``request_plans``
    entry for that core (its credits are the target distribution).
    """
    from repro.analysis.experiments import (
        ExperimentDefaults,  # noqa: F401 — via _defaults_from
        _avg_slowdown,
        _build_mix,
    )
    from repro.core.bins import BinConfiguration
    from repro.sim.stats import report_digest
    from repro.sim.system import RequestShapingPlan

    defaults, spec = _defaults_from(payload)
    request_plans = None
    if payload.get("request_plans"):
        request_plans = {
            int(core): RequestShapingPlan(
                config=BinConfiguration(tuple(plan["credits"])),
                spec=spec,
                generate_fake=bool(plan.get("generate_fake", True)),
            )
            for core, plan in payload["request_plans"].items()
        }
    system = _build_mix(
        list(payload["names"]), defaults,
        request_plans=request_plans,
        scheduler=payload.get("scheduler", "frfcfs"),
        scheduler_kwargs=payload.get("scheduler_kwargs") or {},
        bank_partitioning=bool(payload.get("bank_partitioning", False)),
    )
    report = system.run(defaults.cycles, stop_when_done=False)
    ipcs = [core.ipc for core in report.cores]
    result: Dict[str, Any] = {
        "ipcs": ipcs,
        "slowdown": _avg_slowdown(ipcs, list(payload["alone_ipcs"])),
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }
    slip = getattr(system.scheduler, "slip_fraction", None)
    if callable(slip):
        result["slip_fraction"] = slip()
    if payload.get("detect"):
        from repro.security.detect import detect_report

        detect_cfg = payload["detect"]
        core_id = int(detect_cfg["core"])
        stats = report.core(core_id)
        target = BinConfiguration(tuple(
            payload["request_plans"][str(core_id)]["credits"]
        )).normalized()
        zoo = detect_report(
            label=f"core{core_id}",
            intrinsic_gaps=stats.request_intrinsic.gaps,
            observed_gaps=stats.request_shaped.gaps,
            spec=spec,
            target_frequencies=target,
            seed=int(detect_cfg.get("seed", payload["seed"])),
            window_cycles=detect_cfg.get("window_cycles"),
        )
        result["mi"] = zoo.mi_bits
        result["auc"] = zoo.auc
        result["xcorr"] = zoo.xcorr
        result["spectral"] = zoo.spectral
    return result


def noc_latency_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Single-core mean memory latency at one NoC hop latency."""
    from repro.sim.stats import report_digest
    from repro.sim.system import SystemBuilder
    from repro.workloads.spec import make_trace

    defaults, _spec = _defaults_from(payload)
    builder = SystemBuilder(seed=defaults.seed)
    builder.with_noc(latency=int(payload["noc_latency"]))
    builder.add_core(
        make_trace(payload["benchmark"], defaults.accesses,
                   seed=defaults.seed)
    )
    report = builder.build().run(defaults.cycles, stop_when_done=False)
    return {
        "mean_latency": report.core(0).mean_memory_latency(),
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }


# ---------------------------------------------------------------------------
# mesh-position leakage points
# ---------------------------------------------------------------------------


def mesh_position_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Two-world distinguishability at one mesh position.

    Runs the adversary next to each candidate victim at
    ``payload["position"]`` and returns the distinguishability of its
    latency samples between the worlds (one point of
    :func:`repro.analysis.sweeps.mesh_position_leakage`).
    """
    from repro.analysis.experiments import staircase_config
    from repro.core.bins import BinSpec
    from repro.security.attacks import corunner_distinguishability
    from repro.sim.stats import report_digest
    from repro.sim.system import RequestShapingPlan, SystemBuilder
    from repro.workloads.spec import make_trace

    defaults, _spec = _defaults_from(payload)
    spec = BinSpec(replenish_period=512)
    position = int(payload["position"])
    num_cores = int(payload["num_cores"])
    shaped = bool(payload["shaped"])

    def run_world(victim_name: str):
        builder = SystemBuilder(seed=defaults.seed).with_noc(topology="mesh")
        for core in range(num_cores):
            if core == 0:
                builder.add_core(
                    make_trace("gcc", defaults.accesses, seed=1)
                )
            elif core == position:
                plan = None
                if shaped:
                    plan = RequestShapingPlan(
                        config=staircase_config(spec, 1 / 16), spec=spec
                    )
                builder.add_core(
                    make_trace(victim_name, defaults.accesses,
                               seed=2 + core, base_address=core << 33),
                    request_shaping=plan,
                )
            else:
                builder.add_core(
                    make_trace("sjeng", defaults.accesses // 4,
                               seed=50 + core, base_address=core << 33)
                )
        report = builder.build().run(defaults.cycles, stop_when_done=False)
        return report

    world_a = run_world(payload["victims"][0])
    world_b = run_world(payload["victims"][1])
    return {
        "position": position,
        "distinguishability": corunner_distinguishability(
            world_a.core(0).memory_latencies,
            world_b.core(0).memory_latencies,
        ),
        "digest_a": report_digest(world_a),
        "digest_b": report_digest(world_b),
        "obs_registry": _registry_doc(world_a, world_b),
    }


# ---------------------------------------------------------------------------
# GA population fitness
# ---------------------------------------------------------------------------


def ga_fitness_task(
    payload: Dict[str, Any], task_seed: Optional[int] = None
) -> Dict[str, Any]:
    """Offline fitness of one genome: slowdown plus a leakage penalty.

    The genome (a credit vector) shapes the benchmark's requests; the
    cost is ``slowdown + zoo_score(mi, auc, xcorr)`` — the Figure 2
    trade-off collapsed to a scalar, which is what the offline GA
    minimises when searching shaping configurations without a live
    system.  With the default weights (``mi_weight=1``, ``auc_weight``
    and ``xcorr_weight`` 0) this is exactly the historical
    ``slowdown + mi_weight * windowed_mi``; non-zero zoo weights turn
    the fitness multi-objective, scoring each genome against the
    trained-classifier and cross-correlation attackers with the
    genome's own normalized credits as the target distribution.
    ``task_seed`` (the executor's per-genome substream seed) seeds the
    evaluation run when the payload does not pin one, so every genome
    is scored on a decorrelated, reproducible stream.
    """
    from repro.analysis.experiments import ExperimentDefaults, run_alone
    from repro.core.bins import BinConfiguration, BinSpec
    from repro.security.detect import detect_report, zoo_score
    from repro.security.mutual_information import windowed_rate_mi
    from repro.sim.stats import report_digest
    from repro.sim.system import RequestShapingPlan

    spec = BinSpec(
        edges=tuple(payload["spec_edges"]),
        replenish_period=int(payload["spec_period"]),
    )
    seed = payload.get("seed")
    if seed is None:
        seed = 0 if task_seed is None else task_seed % (1 << 31)
    defaults = ExperimentDefaults(
        accesses=int(payload["accesses"]),
        cycles=int(payload["cycles"]),
        seed=int(seed),
        spec=spec,
    )
    config = BinConfiguration(tuple(payload["genome"]))
    report = run_alone(
        payload["benchmark"], defaults,
        request_plan=RequestShapingPlan(config=config, spec=spec),
    )
    stats = report.core(0)
    base_ipc = float(payload["base_ipc"])
    slowdown = base_ipc / stats.ipc if stats.ipc > 0 else 1e6
    mi = windowed_rate_mi(
        _event_times(stats.request_intrinsic.gaps),
        _event_times(stats.request_shaped.gaps),
        int(payload["window_cycles"]),
        report.cycles_run,
        bias_correction=True,
    )
    auc_weight = float(payload.get("auc_weight", 0.0))
    xcorr_weight = float(payload.get("xcorr_weight", 0.0))
    result: Dict[str, Any] = {
        "slowdown": slowdown,
        "mi": mi,
        "digest": report_digest(report),
        "obs_registry": _registry_doc(report),
    }
    auc = xcorr = 0.0
    if auc_weight > 0.0 or xcorr_weight > 0.0:
        zoo = detect_report(
            label="genome",
            intrinsic_gaps=stats.request_intrinsic.gaps,
            observed_gaps=stats.request_shaped.gaps,
            spec=spec,
            target_frequencies=config.normalized(),
            seed=int(payload.get("detect_seed", seed)),
            window_cycles=int(payload["window_cycles"]),
            mi_bits=mi,
        )
        auc, xcorr = zoo.auc, zoo.xcorr
        result["auc"] = auc
        result["xcorr"] = xcorr
    result["fitness"] = slowdown + zoo_score(
        mi, auc, xcorr,
        mi_weight=float(payload.get("mi_weight", 1.0)),
        auc_weight=auc_weight,
        xcorr_weight=xcorr_weight,
    )
    return result


def ga_population_evaluator(executor, payload_base: Dict[str, Any]):
    """A ``map_evaluate`` for :meth:`GeneticAlgorithm.step`.

    Wraps ``executor`` (a :class:`~repro.parallel.SweepExecutor`) so
    one generation's fitness runs fan out as :func:`ga_fitness_task`
    shards — each genome under ``payload_base`` plus its own
    deterministic ``task_seed`` (the executor's lifetime counter keeps
    seeds stable across generations and cache states).  Returns
    fitnesses in population order, which is all the GA's breeding
    loop needs for bit-identical evolution at any ``jobs`` value.
    """

    def map_evaluate(genomes) -> List[float]:
        payloads = []
        for genome in genomes:
            payload = dict(payload_base)
            payload["genome"] = [int(g) for g in genome]
            payloads.append(payload)
        rows = executor.map(
            ga_fitness_task, payloads, kind="ga-fitness",
            labels=[f"genome{i}" for i in range(len(payloads))],
        )
        return [row["fitness"] for row in rows]

    return map_evaluate

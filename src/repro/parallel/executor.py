"""Deterministic fan-out of independent simulation points.

:class:`SweepExecutor` runs a list of tasks — module-level functions
applied to picklable payloads — either inline (``jobs=1``) or across
worker processes (``jobs>1``, ``spawn`` start method), and merges the
results **in submission order**.  Combined with the facts that every
task is a pure function of its payload and that per-task RNG
substreams are derived from the submission index alone
(:meth:`~repro.common.rng.DeterministicRng.substream`), the merged
output is bit-identical for every ``jobs`` value: parallelism is an
execution detail, never an observable one.  docs/parallel.md states
the full determinism contract.

Layered on top:

* a content-addressed result cache (:mod:`repro.parallel.cache`) —
  tasks whose input digest already has a stored result are not run at
  all, which turns a repeated sweep into pure file reads;
* worker-failure retry and per-attempt timeouts via
  :class:`repro.resilience.retry.RetryPolicy` — a worker process dying
  (OOM killer, BrokenProcessPool) re-runs only the affected shards;
* per-shard progress events through :mod:`repro.obs` — lifecycle
  events land in the process-global diagnostics ring
  (:mod:`repro.obs.diag`) and, when a tracer is attached, in that
  tracer under :data:`~repro.obs.events.CATEGORY_PARALLEL`.

The ``spawn`` start method is deliberate: it is the only start method
available everywhere, and it guarantees workers build their state from
the pickled payload alone — a forked copy of a warm parent could
smuggle in mutated globals and break the jobs-invariance contract.

Pool reuse and chunking
-----------------------
``spawn`` pays a real price: each worker is a fresh interpreter that
re-imports the simulator stack before it can run its first task.  The
original executor built a brand-new pool per :meth:`SweepExecutor.map`
call and shipped one future per task, so short sweeps spent more time
spawning and pickling than simulating (BENCH_parallel.json recorded a
0.75x *slowdown* at ``jobs=4``).  Two fixes, neither observable in the
merged output:

* **a warm persistent pool** — one module-level ``spawn`` pool is kept
  alive across ``map`` calls (rebuilt only when more workers are
  needed or the pool broke), with an ``initializer`` that pre-imports
  the simulator stack so the first real task in each worker does not
  pay the import latency.  Worker reuse is safe for the same reason
  parallelism is: tasks are pure functions of their payloads and may
  not mutate module state they expect to see again.
* **task chunking** — tasks are grouped into contiguous chunks (one
  future per chunk, ``fn`` pickled once per chunk) and key/value pairs
  shared by every payload in a chunk are factored out and shipped
  once, instead of re-serializing the full sweep spec per point.
  Workers rebuild each payload as ``{**shared, **delta}``; dict
  equality is order-insensitive and tasks are functions of payload
  *values*, so results are unchanged.  Cache digests are computed
  parent-side from the original payloads and never see the split.

Failure handling keeps per-task granularity: a chunk worker catches
each task's exception and returns it in-band, so retries and
:class:`~repro.common.errors.WorkerFailureError` still name the exact
shard that failed, and a retry re-runs only that shard.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import inspect
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigurationError,
    ShardTimeoutError,
    WorkerFailureError,
)
from repro.common.rng import DeterministicRng
from repro.obs import diag
from repro.obs.events import CATEGORY_PARALLEL
from repro.obs.tracer import NULL_TRACER
from repro.parallel.cache import ResultCache, cache_key, config_digest
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy, run_attempts

#: Chunks per worker in one ``map`` call.  Two rounds per worker keeps
#: the amortization (``fn`` + the factored-out shared spec pickle once
#: per chunk) while leaving slack for uneven task costs.
_CHUNK_ROUNDS = 2


def _call_task(fn: Callable[..., Any], payload: Any,
               task_seed: Optional[int]) -> Any:
    """Worker-side trampoline (module-level so ``spawn`` can pickle it)."""
    if task_seed is None:
        return fn(payload)
    return fn(payload, task_seed=task_seed)


def _call_task_chunk(
    fn: Callable[..., Any],
    shared: Optional[Dict[str, Any]],
    items: Sequence[Tuple[Any, Optional[int]]],
) -> List[Tuple[bool, Any]]:
    """Run a chunk of tasks in one worker round-trip.

    ``items`` holds ``(delta, task_seed)`` pairs; when ``shared`` is
    not None each payload is rebuilt as ``{**shared, **delta}`` (the
    chunk-common keys were factored out parent-side so they pickle
    once per chunk, not once per task).  Per-task exceptions are
    returned in-band as ``(False, exception)`` so the parent can retry
    and report the exact shard that failed instead of losing the whole
    chunk.
    """
    out: List[Tuple[bool, Any]] = []
    for delta, task_seed in items:
        if shared is None:
            payload = delta
        else:
            payload = dict(shared)
            payload.update(delta)
        try:
            out.append((True, _call_task(fn, payload, task_seed)))
        except BaseException as exc:  # returned, not raised: in-band
            out.append((False, exc))
    return out


def _split_common(
    payloads: Sequence[Any],
) -> Tuple[Optional[Dict[str, Any]], List[Any]]:
    """Factor the key/value pairs shared by every payload in a chunk.

    Returns ``(shared, deltas)`` where each original payload equals
    ``{**shared, **delta}``.  Only dict payloads participate; the
    identical-type guard keeps ``1``/``True``-style coercions from
    swapping a value's type during reconstruction.
    """
    if len(payloads) < 2 or not all(isinstance(p, dict) for p in payloads):
        return None, list(payloads)
    first = payloads[0]
    shared = {
        key: value
        for key, value in first.items()
        if all(
            key in p and type(p[key]) is type(value) and p[key] == value
            for p in payloads[1:]
        )
    }
    if not shared:
        return None, list(payloads)
    deltas = [
        {k: v for k, v in p.items() if k not in shared} for p in payloads
    ]
    return shared, deltas


def _warm_worker() -> None:  # pragma: no cover - runs in spawned workers
    """Pool initializer: pre-import the simulator stack.

    A ``spawn`` worker starts as a bare interpreter; importing the
    analysis/simulation modules here means the first real task pays
    only simulation time, not import time.  Best-effort: a failed
    import just leaves the lazy imports inside the tasks to do it.
    """
    try:
        import repro.analysis.experiments  # noqa: F401
        import repro.sim.system  # noqa: F401
    # An exception escaping a pool initializer breaks the entire pool
    # (every future fails), while a missed pre-import only costs time:
    # swallowing anything here is strictly safer than surfacing it.
    # repro-lint: disable-next-line=RL006
    except Exception:
        pass


# The warm pool is deliberately module-global mutable state: the whole
# point is reuse across SweepExecutor instances.  It never influences
# results (workers are stateless between pure tasks), only latency.
_POOL: Optional[concurrent.futures.ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _warm_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The shared spawn pool, rebuilt only when too small or broken."""
    global _POOL, _POOL_WORKERS
    pool = _POOL
    if (
        pool is not None
        and not getattr(pool, "_broken", False)
        and _POOL_WORKERS >= workers
    ):
        return pool
    if pool is not None:
        pool.shutdown(wait=False)
    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context("spawn"),
        initializer=_warm_worker,
    )
    _POOL = pool
    _POOL_WORKERS = workers
    return pool


def _discard_pool() -> None:
    """Drop the warm pool (after breakage, or at interpreter exit)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False)
    _POOL = None
    _POOL_WORKERS = 0


def _terminate_pool() -> None:
    """Drop the warm pool *and* kill its worker processes.

    ``shutdown(wait=False)`` alone leaves a wedged worker running its
    stuck task forever; after a shard timeout the only way to reclaim
    the CPU is to terminate the processes outright.  Queued futures on
    the old pool fail with ``BrokenProcessPool`` and retry on a fresh
    pool — pure tasks make that safe.
    """
    pool = _POOL
    processes = list(getattr(pool, "_processes", {}).values()) if pool else []
    _discard_pool()
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError, AttributeError):
            pass  # already exited / never fully started


atexit.register(_discard_pool)


def _wants_task_seed(fn: Callable[..., Any]) -> bool:
    """Does ``fn`` declare a ``task_seed`` keyword parameter?"""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "task_seed" in parameters


@dataclass
class _Shard:
    """Parent-side bookkeeping for one submitted task."""

    index: int
    payload: Any
    label: str
    task_seed: Optional[int]
    digest: Optional[str] = None
    cached: bool = False


class SweepExecutor:
    """Order-preserving, cache-aware parallel map over sweep points.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task inline
        in the calling process — no pool, no pickling round-trip —
        and is the reference ordering the parallel path must match.
    seed:
        Root of the per-task substream derivation.  Task *i* of the
        executor's lifetime receives
        ``DeterministicRng(seed).substream(i)``'s seed (only passed to
        task functions that declare a ``task_seed`` keyword).  The
        counter advances for cache-hit tasks too, so a warm cache
        never shifts later tasks' seeds.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.  Only
        ``map`` calls that pass ``kind`` participate in caching.
    retry:
        :class:`RetryPolicy` for worker attempts (default: 2 attempts,
        no timeout).
    tracer:
        Optional :class:`~repro.obs.tracer.EventTracer`; lifecycle
        events are always mirrored into :mod:`repro.obs.diag`.
    dispatch:
        Optional :class:`~repro.parallel.dispatch.DispatchCoordinator`.
        When set, shards that miss the cache run on remote worker
        hosts instead of the local pool; if every host is lost the
        coordinator drains the remainder back through this executor's
        local paths (degraded mode).  Placement never affects results
        — see docs/dispatch.md.
    """

    def __init__(
        self,
        jobs: int = 1,
        seed: int = 0,
        cache: Optional[Any] = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        tracer: Any = NULL_TRACER,
        dispatch: Optional[Any] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.retry = retry
        self.tracer = tracer
        self.dispatch = dispatch
        self._seed_root = DeterministicRng(seed)
        self._tasks_submitted = 0
        if isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.tasks_run = 0
        self.tasks_cached = 0
        self.retries = 0
        # Serialized per-task registry documents, absorbed from task
        # results in submission order — see merged_registry().
        self._shard_registries: List[Dict[str, Any]] = []

    # -- events ------------------------------------------------------------

    def _emit(self, name: str, index: int, **args: Any) -> None:
        diag.emit_diagnostic(
            name, category=CATEGORY_PARALLEL, task=index, **args
        )
        if self.tracer.enabled:
            self.tracer.emit(index, CATEGORY_PARALLEL, name, **args)

    # -- the one entry point ----------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        payloads: Sequence[Any],
        kind: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every payload; results in submission order.

        ``fn`` must be a module-level (picklable) function of one
        payload, optionally accepting a ``task_seed`` keyword.
        ``kind`` names the task family for the result cache; without
        it (or without a cache) every task runs.  ``labels`` are
        per-task names for events and failure messages.
        """
        if labels is not None and len(labels) != len(payloads):
            raise ConfigurationError("need one label per payload")
        wants_seed = _wants_task_seed(fn)
        shards: List[_Shard] = []
        for position, payload in enumerate(payloads):
            index = self._tasks_submitted
            self._tasks_submitted += 1
            shards.append(
                _Shard(
                    index=index,
                    payload=payload,
                    label=(labels[position] if labels is not None
                           else f"{kind or getattr(fn, '__name__', 'task')}"
                                f"[{index}]"),
                    task_seed=(self._seed_root.substream(index).seed
                               if wants_seed else None),
                )
            )

        results: Dict[int, Any] = {}
        to_run: List[_Shard] = []
        for shard in shards:
            if self.cache is not None and kind is not None:
                doc = self._key_doc(shard)
                shard.digest = config_digest(kind, doc)
                cached = self.cache.get(shard.digest)
                if cached is not None:
                    shard.cached = True
                    results[shard.index] = cached
                    self.tasks_cached += 1
                    self._emit("parallel.cache_hit", shard.index,
                               label=shard.label, digest=shard.digest)
                    continue
                self._emit("parallel.cache_miss", shard.index,
                           label=shard.label, digest=shard.digest)
            to_run.append(shard)
            self._emit("parallel.task_submit", shard.index,
                       label=shard.label)

        if to_run:
            if self.dispatch is not None:
                cached_shards = [s for s in shards if s.cached]
                self._run_dispatched(
                    fn, to_run, cached_shards, kind, results
                )
            elif self.jobs == 1 or len(to_run) == 1:
                self._run_inline(fn, to_run, results)
            else:
                self._run_pooled(fn, to_run, results)

        for shard in to_run:
            if self.cache is not None and shard.digest is not None:
                # The cached value keeps its obs_registry (absorption
                # below works on a copy), so cache hits replay their
                # shard registries exactly like fresh runs.
                self.cache.put(
                    shard.digest,
                    cache_key(kind, self._key_doc(shard)),
                    results[shard.index],
                )
        return [
            self._absorb_registry(results[shard.index]) for shard in shards
        ]

    def _absorb_registry(self, result: Any) -> Any:
        """Strip and collect a task result's ``obs_registry`` document.

        Simulation tasks embed their worker-local registry snapshot
        under this key (:mod:`repro.parallel.tasks`); it is executor
        metadata, not sweep output, so it must not leak into result
        consumers (``tradeoff_sweep`` passes task dicts verbatim into
        the CLI's canonical JSON).  Collection order is submission
        order — shards were just iterated in it — which makes
        :meth:`merged_registry` independent of ``jobs``.
        """
        if isinstance(result, dict) and "obs_registry" in result:
            self._shard_registries.append(result["obs_registry"])
            result = {
                key: value
                for key, value in result.items()
                if key != "obs_registry"
            }
        return result

    def merged_registry(self):
        """One cluster-level registry folded from every shard document.

        Counters and histogram buckets add across shards, gauges take
        the last write in submission order, and the executor's own
        ``parallel.*`` progress gauges ride along — byte-identical
        exposition for every ``jobs`` value (and for warm-cache
        replays, since cached results keep their shard documents).
        """
        from repro.obs.export import merge_serialized

        registry = merge_serialized(self._shard_registries)
        # No worker-count or wall-time families here: the merged
        # registry must render byte-identically for every ``jobs``
        # value, so only jobs-invariant quantities may appear.
        registry.gauge("parallel.tasks_submitted").set(self._tasks_submitted)
        registry.gauge("parallel.tasks_run").set(self.tasks_run)
        registry.gauge("parallel.tasks_cached").set(self.tasks_cached)
        registry.gauge("parallel.retries").set(self.retries)
        registry.gauge("parallel.shards_merged").set(
            len(self._shard_registries)
        )
        return registry

    def _key_doc(self, shard: _Shard) -> Any:
        if shard.task_seed is None:
            return shard.payload
        return {"payload": shard.payload, "task_seed": shard.task_seed}

    # -- execution strategies ---------------------------------------------

    def _run_dispatched(
        self,
        fn: Callable[..., Any],
        to_run: List[_Shard],
        cached_shards: List[_Shard],
        kind: Optional[str],
        results: Dict[int, Any],
    ) -> None:
        """Fan shards out through the dispatch coordinator.

        The coordinator owns placement and recovery; this method owns
        the executor-side accounting that keeps the ``parallel.*``
        gauges jobs- *and* placement-invariant: exactly one
        ``task_done`` per shard, whether the shard ran on a remote
        host or drained through the local paths in degraded mode (the
        local paths emit their own events, so remote completions are
        emitted here and drained shards are not double-counted).
        """
        drained: set = set()

        def local_runner(shard_list: List[_Shard]) -> Dict[int, Any]:
            local_results: Dict[int, Any] = {}
            drained.update(s.index for s in shard_list)
            if self.jobs == 1 or len(shard_list) == 1:
                self._run_inline(fn, shard_list, local_results)
            else:
                self._run_pooled(fn, shard_list, local_results)
            return local_results

        dispatched = self.dispatch.run(
            fn,
            to_run,
            kind=kind or "",
            cached_shards=cached_shards,
            local_runner=local_runner,
        )
        for shard in to_run:
            results[shard.index] = dispatched[shard.index]
            if shard.index not in drained:
                self.tasks_run += 1
                self._emit(
                    "parallel.task_done", shard.index, label=shard.label
                )

    def _shard_timeout(
        self, shard: _Shard, attempt: int, chunk_size: int
    ) -> ShardTimeoutError:
        """Build the typed timeout error for a wedged shard.

        Watchdog discipline (docs/resilience.md): the failure carries
        a structured dump of what was stuck, the event ring gets a
        mirror of it, and the wedged pool is terminated so the stuck
        worker cannot keep burning a core behind the sweep's back.
        """
        dump = {
            "shard": shard.index,
            "label": shard.label,
            "attempt": attempt,
            "timeout_seconds": self.retry.timeout_seconds,
            "chunk_size": chunk_size,
            "jobs": self.jobs,
            "pool_terminated": True,
        }
        self._emit(
            "parallel.shard_timeout", shard.index, label=shard.label,
            attempt=attempt, timeout_seconds=self.retry.timeout_seconds,
        )
        _terminate_pool()
        return ShardTimeoutError(
            f"shard {shard.label} exceeded its "
            f"{self.retry.timeout_seconds}s attempt budget "
            f"(attempt {attempt}, chunk of {chunk_size})",
            task_index=shard.index,
            label=shard.label,
            timeout_seconds=self.retry.timeout_seconds or 0.0,
            dump=dump,
        )

    def _run_inline(
        self, fn: Callable[..., Any], to_run: List[_Shard],
        results: Dict[int, Any],
    ) -> None:
        for shard in to_run:
            def attempt(_number: int, shard: _Shard = shard) -> Any:
                return _call_task(fn, shard.payload, shard.task_seed)

            results[shard.index] = run_attempts(
                attempt, self.retry,
                task_index=shard.index, label=shard.label,
                on_retry=lambda n, e, s=shard: self._on_retry(s, n, e),
            )
            self.tasks_run += 1
            self._emit("parallel.task_done", shard.index, label=shard.label)

    def _run_pooled(
        self, fn: Callable[..., Any], to_run: List[_Shard],
        results: Dict[int, Any],
    ) -> None:
        """Chunked execution on the warm persistent pool.

        Tasks are split into contiguous chunks — :data:`_CHUNK_ROUNDS`
        per worker, so each worker sees a couple of large futures
        instead of one tiny future per task — and every chunk's
        payloads have their common keys factored out parent-side
        (:func:`_split_common`).  Chunks are collected in submission
        order; within a chunk, per-task outcomes come back in-band, so
        a failure retries only its own shard (resubmitted singly, into
        a rebuilt pool if the old one broke).  The per-attempt timeout
        applies to the single-shard retries; the first attempt's chunk
        future gets it scaled by the chunk length.
        """
        workers = min(self.jobs, len(to_run))
        n_chunks = min(len(to_run), workers * _CHUNK_ROUNDS)
        base, extra = divmod(len(to_run), n_chunks)
        chunks: List[List[_Shard]] = []
        start = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(to_run[start:start + size])
            start += size

        pool = _warm_pool(workers)
        # A chunk slot holds either a Future or the exception submit
        # itself raised: a worker dying while later chunks are still
        # being submitted breaks the pool mid-loop, and that must cost
        # the affected shards one attempt, not the whole sweep.
        pending: List[Tuple[List[_Shard], Any]] = []
        for chunk in chunks:
            shared, deltas = _split_common([s.payload for s in chunk])
            items = [
                (delta, shard.task_seed)
                for delta, shard in zip(deltas, chunk)
            ]
            try:
                slot: Any = pool.submit(_call_task_chunk, fn, shared, items)
            except Exception as exc:  # BrokenProcessPool and kin
                slot = exc
            pending.append((chunk, slot))

        # First-attempt outcomes, (ok, value-or-exception) per shard.
        # A chunk-level failure (timeout, dead pool) charges every
        # shard in the chunk one attempt, matching the old per-future
        # accounting.
        outcomes: Dict[int, Tuple[bool, Any]] = {}
        for chunk, future in pending:
            if isinstance(future, BaseException):
                for shard in chunk:
                    outcomes[shard.index] = (False, future)
            else:
                timeout = self.retry.timeout_seconds
                if timeout is not None:
                    timeout *= len(chunk)
                try:
                    for shard, outcome in zip(
                        chunk, future.result(timeout)
                    ):
                        outcomes[shard.index] = outcome
                except concurrent.futures.TimeoutError as exc:
                    future.cancel()
                    for shard in chunk:
                        outcomes[shard.index] = (False, exc)
                except Exception as exc:  # BrokenProcessPool and kin
                    for shard in chunk:
                        outcomes[shard.index] = (False, exc)

            for shard in chunk:
                def attempt(number: int, shard: _Shard = shard,
                            chunk: List[_Shard] = chunk) -> Any:
                    nonlocal pool
                    if number == 1:
                        ok, value = outcomes[shard.index]
                        if ok:
                            return value
                        if isinstance(
                            value, concurrent.futures.TimeoutError
                        ):
                            raise self._shard_timeout(
                                shard, number, len(chunk)
                            ) from value
                        raise value
                    if pool is not _POOL or getattr(pool, "_broken", False):
                        # The warm pool broke or was terminated after
                        # a shard timeout: rebuild before retrying.
                        _discard_pool()
                        pool = _warm_pool(workers)
                    retry_future = pool.submit(
                        _call_task, fn, shard.payload, shard.task_seed
                    )
                    try:
                        return retry_future.result(
                            timeout=self.retry.timeout_seconds
                        )
                    except concurrent.futures.TimeoutError as exc:
                        retry_future.cancel()
                        raise self._shard_timeout(shard, number, 1) from exc

                try:
                    results[shard.index] = run_attempts(
                        attempt, self.retry,
                        task_index=shard.index, label=shard.label,
                        on_retry=lambda n, e, s=shard: self._on_retry(s, n, e),
                    )
                except WorkerFailureError as failure:
                    cause = failure.__cause__
                    if isinstance(cause, ShardTimeoutError):
                        # Every attempt hit the budget: surface the
                        # typed timeout (with its structured dump)
                        # rather than the generic retry wrapper.
                        cause.dump["attempts"] = failure.attempts
                        raise cause from failure
                    raise
                self.tasks_run += 1
                self._emit("parallel.task_done", shard.index,
                           label=shard.label)

    def _on_retry(self, shard: _Shard, number: int,
                  error: BaseException) -> None:
        self.retries += 1
        self._emit(
            "parallel.task_retry", shard.index, label=shard.label,
            attempt=number, error=f"{type(error).__name__}: {error}",
        )

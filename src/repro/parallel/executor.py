"""Deterministic fan-out of independent simulation points.

:class:`SweepExecutor` runs a list of tasks — module-level functions
applied to picklable payloads — either inline (``jobs=1``) or across
worker processes (``jobs>1``, ``spawn`` start method), and merges the
results **in submission order**.  Combined with the facts that every
task is a pure function of its payload and that per-task RNG
substreams are derived from the submission index alone
(:meth:`~repro.common.rng.DeterministicRng.substream`), the merged
output is bit-identical for every ``jobs`` value: parallelism is an
execution detail, never an observable one.  docs/parallel.md states
the full determinism contract.

Layered on top:

* a content-addressed result cache (:mod:`repro.parallel.cache`) —
  tasks whose input digest already has a stored result are not run at
  all, which turns a repeated sweep into pure file reads;
* worker-failure retry and per-attempt timeouts via
  :class:`repro.resilience.retry.RetryPolicy` — a worker process dying
  (OOM killer, BrokenProcessPool) re-runs only the affected shards;
* per-shard progress events through :mod:`repro.obs` — lifecycle
  events land in the process-global diagnostics ring
  (:mod:`repro.obs.diag`) and, when a tracer is attached, in that
  tracer under :data:`~repro.obs.events.CATEGORY_PARALLEL`.

The ``spawn`` start method is deliberate: it is the only start method
available everywhere, and it guarantees workers build their state from
the pickled payload alone — a forked copy of a warm parent could
smuggle in mutated globals and break the jobs-invariance contract.
"""

from __future__ import annotations

import concurrent.futures
import inspect
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.obs import diag
from repro.obs.events import CATEGORY_PARALLEL
from repro.obs.tracer import NULL_TRACER
from repro.parallel.cache import ResultCache, cache_key, config_digest
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy, run_attempts

try:  # py3.9 compatibility: the exception moved modules over time
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient stdlib layout
    BrokenProcessPool = RuntimeError  # type: ignore[misc,assignment]


def _call_task(fn: Callable[..., Any], payload: Any,
               task_seed: Optional[int]) -> Any:
    """Worker-side trampoline (module-level so ``spawn`` can pickle it)."""
    if task_seed is None:
        return fn(payload)
    return fn(payload, task_seed=task_seed)


def _wants_task_seed(fn: Callable[..., Any]) -> bool:
    """Does ``fn`` declare a ``task_seed`` keyword parameter?"""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    return "task_seed" in parameters


@dataclass
class _Shard:
    """Parent-side bookkeeping for one submitted task."""

    index: int
    payload: Any
    label: str
    task_seed: Optional[int]
    digest: Optional[str] = None
    cached: bool = False


class SweepExecutor:
    """Order-preserving, cache-aware parallel map over sweep points.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every task inline
        in the calling process — no pool, no pickling round-trip —
        and is the reference ordering the parallel path must match.
    seed:
        Root of the per-task substream derivation.  Task *i* of the
        executor's lifetime receives
        ``DeterministicRng(seed).substream(i)``'s seed (only passed to
        task functions that declare a ``task_seed`` keyword).  The
        counter advances for cache-hit tasks too, so a warm cache
        never shifts later tasks' seeds.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.  Only
        ``map`` calls that pass ``kind`` participate in caching.
    retry:
        :class:`RetryPolicy` for worker attempts (default: 2 attempts,
        no timeout).
    tracer:
        Optional :class:`~repro.obs.tracer.EventTracer`; lifecycle
        events are always mirrored into :mod:`repro.obs.diag`.
    """

    def __init__(
        self,
        jobs: int = 1,
        seed: int = 0,
        cache: Optional[Any] = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        tracer: Any = NULL_TRACER,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.retry = retry
        self.tracer = tracer
        self._seed_root = DeterministicRng(seed)
        self._tasks_submitted = 0
        if isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache: Optional[ResultCache] = cache
        self.tasks_run = 0
        self.tasks_cached = 0
        self.retries = 0

    # -- events ------------------------------------------------------------

    def _emit(self, name: str, index: int, **args: Any) -> None:
        diag.emit_diagnostic(
            name, category=CATEGORY_PARALLEL, task=index, **args
        )
        if self.tracer.enabled:
            self.tracer.emit(index, CATEGORY_PARALLEL, name, **args)

    # -- the one entry point ----------------------------------------------

    def map(
        self,
        fn: Callable[..., Any],
        payloads: Sequence[Any],
        kind: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every payload; results in submission order.

        ``fn`` must be a module-level (picklable) function of one
        payload, optionally accepting a ``task_seed`` keyword.
        ``kind`` names the task family for the result cache; without
        it (or without a cache) every task runs.  ``labels`` are
        per-task names for events and failure messages.
        """
        if labels is not None and len(labels) != len(payloads):
            raise ConfigurationError("need one label per payload")
        wants_seed = _wants_task_seed(fn)
        shards: List[_Shard] = []
        for position, payload in enumerate(payloads):
            index = self._tasks_submitted
            self._tasks_submitted += 1
            shards.append(
                _Shard(
                    index=index,
                    payload=payload,
                    label=(labels[position] if labels is not None
                           else f"{kind or getattr(fn, '__name__', 'task')}"
                                f"[{index}]"),
                    task_seed=(self._seed_root.substream(index).seed
                               if wants_seed else None),
                )
            )

        results: Dict[int, Any] = {}
        to_run: List[_Shard] = []
        for shard in shards:
            if self.cache is not None and kind is not None:
                doc = self._key_doc(shard)
                shard.digest = config_digest(kind, doc)
                cached = self.cache.get(shard.digest)
                if cached is not None:
                    shard.cached = True
                    results[shard.index] = cached
                    self.tasks_cached += 1
                    self._emit("parallel.cache_hit", shard.index,
                               label=shard.label, digest=shard.digest)
                    continue
                self._emit("parallel.cache_miss", shard.index,
                           label=shard.label, digest=shard.digest)
            to_run.append(shard)
            self._emit("parallel.task_submit", shard.index,
                       label=shard.label)

        if to_run:
            if self.jobs == 1 or len(to_run) == 1:
                self._run_inline(fn, to_run, results)
            else:
                self._run_pooled(fn, to_run, results)

        for shard in to_run:
            if self.cache is not None and shard.digest is not None:
                self.cache.put(
                    shard.digest,
                    cache_key(kind, self._key_doc(shard)),
                    results[shard.index],
                )
        return [results[shard.index] for shard in shards]

    def _key_doc(self, shard: _Shard) -> Any:
        if shard.task_seed is None:
            return shard.payload
        return {"payload": shard.payload, "task_seed": shard.task_seed}

    # -- execution strategies ---------------------------------------------

    def _run_inline(
        self, fn: Callable[..., Any], to_run: List[_Shard],
        results: Dict[int, Any],
    ) -> None:
        for shard in to_run:
            def attempt(_number: int, shard: _Shard = shard) -> Any:
                return _call_task(fn, shard.payload, shard.task_seed)

            results[shard.index] = run_attempts(
                attempt, self.retry,
                task_index=shard.index, label=shard.label,
                on_retry=lambda n, e, s=shard: self._on_retry(s, n, e),
            )
            self.tasks_run += 1
            self._emit("parallel.task_done", shard.index, label=shard.label)

    def _run_pooled(
        self, fn: Callable[..., Any], to_run: List[_Shard],
        results: Dict[int, Any],
    ) -> None:
        context = multiprocessing.get_context("spawn")
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(to_run)), mp_context=context
        )
        futures: Dict[int, concurrent.futures.Future] = {}

        def submit(shard: _Shard) -> None:
            futures[shard.index] = pool.submit(
                _call_task, fn, shard.payload, shard.task_seed
            )

        try:
            for shard in to_run:
                submit(shard)
            # Collect in submission order; retries resubmit into the
            # (possibly rebuilt) pool.  Order of *collection* cannot
            # influence results — tasks are independent — it only
            # defines the deterministic merge.
            for shard in to_run:
                def attempt(number: int, shard: _Shard = shard) -> Any:
                    nonlocal pool
                    if number > 1 or shard.index not in futures:
                        if getattr(pool, "_broken", False):
                            pool.shutdown(wait=False)
                            pool = concurrent.futures.ProcessPoolExecutor(
                                max_workers=min(self.jobs, len(to_run)),
                                mp_context=context,
                            )
                        submit(shard)
                    future = futures.pop(shard.index)
                    try:
                        return future.result(
                            timeout=self.retry.timeout_seconds
                        )
                    except concurrent.futures.TimeoutError:
                        future.cancel()
                        raise
                    except BrokenProcessPool:
                        # Every in-flight future died with the pool;
                        # forget them so retries resubmit cleanly.
                        futures.clear()
                        raise

                results[shard.index] = run_attempts(
                    attempt, self.retry,
                    task_index=shard.index, label=shard.label,
                    on_retry=lambda n, e, s=shard: self._on_retry(s, n, e),
                )
                self.tasks_run += 1
                self._emit("parallel.task_done", shard.index,
                           label=shard.label)
        finally:
            pool.shutdown(wait=False)

    def _on_retry(self, shard: _Shard, number: int,
                  error: BaseException) -> None:
        self.retries += 1
        self._emit(
            "parallel.task_retry", shard.index, label=shard.label,
            attempt=number, error=f"{type(error).__name__}: {error}",
        )

"""Versioned, deterministic snapshots of simulator state.

A snapshot is a single file with a small self-describing envelope:

``line 1``
    Magic + format version: ``REPROSNAP v1``.
``line 2``
    A JSON metadata object (``kind``, ``cycle``, ``txn_watermark``,
    ...) readable without unpickling anything — ``repro resume`` shows
    it, and version checks happen here.
``rest``
    A :mod:`pickle` payload of the object graph.

Why whole-graph pickle rather than a hand-rolled per-component codec:
the wired :class:`~repro.sim.system.System` is a web of *shared*
references (cores hold their request paths, response shapers hold the
scheduler, the monitor holds the shapers' histograms).  Pickle's memo
preserves that sharing exactly, so a restored system is isomorphic to
the saved one — the property the bit-identical resume guarantee rests
on.  The components were made pickle-clean for this (module-level
probe classes instead of builder closures, ``NULL_TRACER`` reducing to
its singleton).

One piece of state lives *outside* the object graph: the process-global
transaction-id counter (:func:`repro.memctrl.transaction.txn_id_watermark`).
Its watermark is stored in the metadata and re-applied on restore so a
resume in a fresh process mints exactly the ids the uninterrupted run
would have.

Snapshots are an internal persistence format, not an interchange
format: like any pickle they must only be loaded from trusted sources
(your own checkpoint directory).
"""

from __future__ import annotations

import io
import json
import os
import pickle
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import SnapshotError
from repro.memctrl.transaction import (
    advance_txn_id_watermark,
    txn_id_watermark,
)

#: First envelope line; the version suffix bumps on any layout change.
SNAPSHOT_MAGIC = b"REPROSNAP"
SNAPSHOT_VERSION = 1

#: ``kind`` values the library writes.
KIND_SYSTEM = "system"
KIND_TUNER = "tuner"


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` via a same-directory temp + rename.

    The REPROSNAP durability primitive, shared by snapshot files and
    the parallel result cache (:mod:`repro.parallel.cache`): a crash or
    a concurrent writer mid-write never leaves a truncated file under
    the final name, because :func:`os.replace` is atomic on POSIX and
    Windows.  Parent directories are created on demand.
    """
    tmp_path = path + ".tmp"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(tmp_path, "wb") as fh:
        fh.write(payload)
    os.replace(tmp_path, path)


def dump_snapshot(
    obj: Any,
    kind: str,
    cycle: int,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Serialise ``obj`` into the envelope format, returning the bytes."""
    meta: Dict[str, Any] = {
        "kind": kind,
        "cycle": int(cycle),
        "txn_watermark": txn_id_watermark(),
    }
    if extra_meta:
        meta.update(extra_meta)
    buffer = io.BytesIO()
    buffer.write(SNAPSHOT_MAGIC + b" v%d\n" % SNAPSHOT_VERSION)
    buffer.write(json.dumps(meta, sort_keys=True).encode("utf-8") + b"\n")
    try:
        pickle.dump(obj, buffer, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"object of kind {kind!r} is not snapshot-serialisable: {exc}"
        ) from exc
    return buffer.getvalue()


def save_snapshot(
    path: str,
    obj: Any,
    kind: str,
    cycle: int,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write a snapshot file atomically; returns its metadata.

    The payload lands in ``path + ".tmp"`` first and is renamed into
    place, so a crash mid-write never leaves a truncated snapshot under
    the final name.
    """
    payload = dump_snapshot(obj, kind, cycle, extra_meta)
    try:
        atomic_write_bytes(path, payload)
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot {path!r}: {exc}") from exc
    return parse_snapshot(payload)[0]


def parse_snapshot(payload: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Validate the envelope; returns ``(meta, pickle_bytes)``."""
    header, _, rest = payload.partition(b"\n")
    if not header.startswith(SNAPSHOT_MAGIC + b" "):
        raise SnapshotError(
            "not a repro snapshot (bad magic bytes); expected a file "
            "written by repro.resilience.snapshot"
        )
    version_token = header[len(SNAPSHOT_MAGIC) + 1:]
    if not version_token.startswith(b"v"):
        raise SnapshotError(f"malformed snapshot version field {version_token!r}")
    try:
        version = int(version_token[1:])
    except ValueError:
        raise SnapshotError(
            f"malformed snapshot version field {version_token!r}"
        ) from None
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot format v{version} is not supported by this build "
            f"(expected v{SNAPSHOT_VERSION})"
        )
    meta_line, _, pickled = rest.partition(b"\n")
    try:
        meta = json.loads(meta_line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot metadata: {exc}") from exc
    if not isinstance(meta, dict) or "kind" not in meta:
        raise SnapshotError("snapshot metadata must be an object with a 'kind'")
    if not pickled:
        raise SnapshotError("truncated snapshot: payload missing")
    return meta, pickled


def read_snapshot_info(path: str) -> Dict[str, Any]:
    """The metadata of a snapshot file, without unpickling the payload."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(65536)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    # Only the two header lines are needed; 64 KiB comfortably bounds
    # them while skipping the (potentially large) payload.
    header, _, rest = head.partition(b"\n")
    meta_line = rest.partition(b"\n")[0]
    return parse_snapshot(header + b"\n" + meta_line + b"\nx")[0]


def load_snapshot(
    path: str, expect_kind: Optional[str] = None
) -> Tuple[Any, Dict[str, Any]]:
    """Read and restore a snapshot file; returns ``(obj, meta)``.

    Re-applies the transaction-id watermark before unpickling, so any
    ids minted while the restored system runs continue the saved run's
    sequence.
    """
    try:
        with open(path, "rb") as fh:
            payload = fh.read()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    meta, pickled = parse_snapshot(payload)
    if expect_kind is not None and meta.get("kind") != expect_kind:
        raise SnapshotError(
            f"snapshot {path!r} holds a {meta.get('kind')!r} payload, "
            f"not the expected {expect_kind!r}"
        )
    watermark = meta.get("txn_watermark")
    if isinstance(watermark, int):
        advance_txn_id_watermark(watermark)
    try:
        obj = pickle.loads(pickled)
    except Exception as exc:
        raise SnapshotError(
            f"cannot restore snapshot {path!r}: {exc}"
        ) from exc
    return obj, meta


def snapshot_system(system, path: str) -> Dict[str, Any]:
    """Save a wired :class:`~repro.sim.system.System` mid-run."""
    return save_snapshot(
        path, system, KIND_SYSTEM, system.current_cycle,
        extra_meta={"num_cores": system.num_cores},
    )


def restore_system(path: str):
    """Load a system snapshot; returns the :class:`System`."""
    system, _ = load_snapshot(path, expect_kind=KIND_SYSTEM)
    return system

"""Canned adversity scenarios proving the resilience contract.

Each scenario assembles a small shaped system, injects one class of
adversity, and reports how the run ended.  The contract every scenario
must (and the tests verify) uphold: an injected fault ends in a
**typed error** or a **monitor-flagged degraded mode** — never a
silent shaping-guarantee violation.

Used by ``repro faults --scenario NAME`` and the CI fault-injection
smoke job; the returned dicts are JSON-serialisable so CI can archive
them as artifacts.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List

from repro.common.errors import (
    ConfigurationError,
    QueueOverflowError,
    TraceFormatError,
    WatchdogError,
)
from repro.core.bins import BinConfiguration
from repro.resilience.faults import (
    EpochBoundaryStress,
    LinkStall,
    QueueSaturation,
    TrafficBurst,
)
from repro.resilience.runtime import ResilienceConfig

#: The benchmark staircase distribution the CLI experiments use.
_STAIRCASE = (10, 9, 8, 7, 6, 5, 4, 3, 2, 1)


def _shaped_system(
    seed: int,
    resilience: ResilienceConfig,
    jitter: bool = False,
    epoch: bool = False,
    cycles_hint: int = 0,
):
    """A two-core system (shaped benchmark + unshaped co-runner) with
    tracing and the live shaping monitor attached."""
    from repro.sim.system import (
        EpochShapingPlan,
        RequestShapingPlan,
        ResponseShapingPlan,
        SystemBuilder,
    )
    from repro.workloads import make_trace

    config = BinConfiguration(_STAIRCASE)
    builder = SystemBuilder(seed=seed)
    if epoch:
        builder.add_core(
            make_trace("gcc", 300, seed=seed),
            epoch_shaping=EpochShapingPlan(epoch_cycles=2048),
            response_shaping=ResponseShapingPlan(config),
        )
    else:
        builder.add_core(
            make_trace("gcc", 300, seed=seed),
            request_shaping=RequestShapingPlan(config, jitter=jitter),
            response_shaping=ResponseShapingPlan(config, jitter=jitter),
        )
    builder.add_core(make_trace("mcf", 300, seed=seed + 1))
    builder.with_observability(
        trace=True, trace_limit=4096, monitor=True, monitor_interval=1024
    )
    builder.with_resilience(resilience)
    return builder.build()


def _monitor(system):
    return system.observability.monitor


def scenario_livelock(
    cycles: int = 80_000, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """A permanent request-link stall: the watchdog must catch it."""
    system = _shaped_system(
        seed=21,
        resilience=ResilienceConfig(
            watchdog_cycles=5_000,
            watchdog_dump_path=dump_path,
            faults=(LinkStall(start_cycle=2_000),),
        ),
    )
    try:
        system.run(cycles, engine=engine)
    except WatchdogError as exc:
        return {
            "scenario": "livelock",
            "outcome": "typed_error",
            "error": type(exc).__name__,
            "message": str(exc),
            "caught_at_cycle": exc.dump.get("cycle"),
            "dump_path": exc.dump_path,
            "dump": exc.dump,
        }
    return {
        "scenario": "livelock",
        "outcome": "silent_failure",
        "message": "seeded livelock ran to completion without tripping "
        "the watchdog",
    }


def scenario_flood(
    cycles: int = 60_000, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """Traffic bursts far above the configured rate: shaping must hold."""
    system = _shaped_system(
        seed=22,
        resilience=ResilienceConfig(
            faults=(
                TrafficBurst(core_id=0, start_cycle=1_000, count=200,
                             per_cycle=4),
                TrafficBurst(core_id=0, start_cycle=20_000, count=200,
                             per_cycle=8),
            ),
        ),
    )
    report = system.run(cycles, stop_when_done=False, engine=engine)
    monitor = _monitor(system)
    injected = system.resilience.injector.injected_bursts
    violations = [
        {"cycle": v.cycle, "core_id": v.core_id, "tvd": v.tvd_target}
        for v in monitor.violations
    ]
    return {
        "scenario": "flood",
        "outcome": "flagged_violation" if violations else "completed",
        "injected": injected,
        "cycles_run": report.cycles_run,
        "violations": violations,
        "monitor_samples": len(monitor.history),
    }


def scenario_saturate(
    cycles: int = 60_000, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """Drive the transaction queue to its bound; the bound must hold."""
    system = _shaped_system(
        seed=23,
        resilience=ResilienceConfig(
            faults=(
                QueueSaturation(core_id=1, start_cycle=500, count=300,
                                per_cycle=8),
            ),
        ),
    )
    peak_depth = 0
    capacity = system.controller.queue.capacity
    try:
        end = system.current_cycle + cycles
        while system.current_cycle < end and not system.all_cores_done():
            system.run(
                min(512, end - system.current_cycle),
                stop_when_done=True,
                engine=engine,
            )
            peak_depth = max(peak_depth, len(system.controller.queue))
    except QueueOverflowError as exc:
        return {
            "scenario": "saturate",
            "outcome": "typed_error",
            "error": type(exc).__name__,
            "message": str(exc),
            "capacity": exc.capacity,
            "depth": exc.depth,
        }
    return {
        "scenario": "saturate",
        "outcome": "completed",
        "injected": system.resilience.injector.injected_saturations,
        "peak_queue_depth": peak_depth,
        "queue_capacity": capacity,
        "bound_held": peak_depth <= capacity,
    }


def scenario_degrade(
    cycles: int = 120_000, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """Exhaust the jitter budget: strict-rate fallback must be flagged."""
    system = _shaped_system(
        seed=24,
        jitter=True,
        resilience=ResilienceConfig(jitter_budget=16),
    )
    report = system.run(cycles, stop_when_done=False, engine=engine)
    monitor = _monitor(system)
    degradations = [
        {
            "cycle": d.cycle,
            "core_id": d.core_id,
            "direction": d.direction,
            "reason": d.reason,
        }
        for d in monitor.degradations
    ]
    result = {
        "scenario": "degrade",
        "outcome": "degraded" if degradations else "completed",
        "cycles_run": report.cycles_run,
        "degradations": degradations,
        "violations": len(monitor.violations),
    }
    if dump_path:
        import json

        directory = os.path.dirname(dump_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(dump_path, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
        result["dump_path"] = dump_path
    return result


def scenario_epoch_stress(
    cycles: int = 40_000, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """Burst right before epoch boundaries: AIMD feedback under fire."""
    system = _shaped_system(
        seed=25,
        epoch=True,
        resilience=ResilienceConfig(
            faults=(
                EpochBoundaryStress(core_id=0, epochs=6, burst=4, lead=16),
            ),
        ),
    )
    report = system.run(cycles, stop_when_done=False, engine=engine)
    shaper = system.request_paths[0]
    return {
        "scenario": "epoch-stress",
        "outcome": "completed",
        "injected": system.resilience.injector.injected_epoch_stress,
        "cycles_run": report.cycles_run,
        "epochs_elapsed": shaper.controller.epochs_elapsed,
        "rate_changes": len(shaper.controller.rate_history),
        "leakage_bound_bits": shaper.leakage_bound_bits(),
    }


def scenario_malformed_trace(
    cycles: int = 0, dump_path: str = "", engine: str = "cycle"
) -> Dict[str, Any]:
    """A malformed trace file must fail typed, with file/line context."""
    import tempfile

    from repro.cpu.trace_io import load_trace

    with tempfile.NamedTemporaryFile(
        "w", suffix=".trace", delete=False, encoding="utf-8"
    ) as fh:
        fh.write("# repro-trace v1\n")
        fh.write("10 0x1000 R\n")
        fh.write("not-a-number 0x2000 R\n")
        path = fh.name
    try:
        load_trace(path)
    except TraceFormatError as exc:
        return {
            "scenario": "malformed-trace",
            "outcome": "typed_error",
            "error": type(exc).__name__,
            "message": str(exc),
            "source": exc.source,
            "line": exc.line,
        }
    finally:
        os.unlink(path)
    return {
        "scenario": "malformed-trace",
        "outcome": "silent_failure",
        "message": "malformed trace loaded without error",
    }


SCENARIOS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "livelock": scenario_livelock,
    "flood": scenario_flood,
    "saturate": scenario_saturate,
    "degrade": scenario_degrade,
    "epoch-stress": scenario_epoch_stress,
    "malformed-trace": scenario_malformed_trace,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def run_scenario(
    name: str,
    cycles: int = 0,
    dump_path: str = "",
    engine: str = "cycle",
) -> Dict[str, Any]:
    """Run one named scenario; unknown names raise ConfigurationError."""
    try:
        fn = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r} (known: {', '.join(scenario_names())})"
        ) from None
    kwargs: Dict[str, Any] = {"dump_path": dump_path, "engine": engine}
    if cycles > 0:
        kwargs["cycles"] = cycles
    return fn(**kwargs)

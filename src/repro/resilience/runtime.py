"""Resilience configuration and its per-system runtime.

:class:`ResilienceConfig` is the frozen user-facing knob set, attached
via :meth:`SystemBuilder.with_resilience`; :class:`ResilienceRuntime`
is the live object the built :class:`~repro.sim.system.System` carries:
it owns the fault injector and the periodic-checkpoint machinery the
run loop drives.  The runtime pickles with the system (a checkpoint of
a checkpointing run resumes checkpointing).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.obs.events import CATEGORY_RESILIENCE
from repro.obs.tracer import NULL_TRACER
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.resilience.snapshot import snapshot_system


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything :meth:`SystemBuilder.with_resilience` can switch on.

    ``checkpoint_every``
        Snapshot the whole system every N cycles (0 disables).  Under
        the next-event engine, clock jumps are capped at checkpoint
        boundaries so snapshots land exactly on multiples of N —
        behaviour-preserving by the engine's no-state-change guarantee.
    ``checkpoint_dir`` / ``checkpoint_keep``
        Where snapshots go and how many of the most recent to retain.
    ``watchdog_cycles`` / ``watchdog_dump_path``
        Stall budget (``None`` defers to ``System.run``'s argument;
        0 disables) and an optional JSON dump file written when the
        watchdog trips.
    ``jitter_budget``
        Per-shaper bound on jitter draws; on exhaustion the shaper
        degrades to strict constant-rate release, flagged by the
        ShapingMonitor (see docs/resilience.md).
    ``faults`` / ``fault_seed``
        Fault specs for the injection harness and the seed salt for
        its private RNG stream.
    """

    checkpoint_every: int = 0
    checkpoint_dir: str = "checkpoints"
    checkpoint_keep: int = 3
    watchdog_cycles: Optional[int] = None
    watchdog_dump_path: str = ""
    jitter_budget: Optional[int] = None
    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)
    fault_seed: int = 0xFA

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if self.checkpoint_every and not self.checkpoint_dir:
            raise ConfigurationError(
                "checkpointing needs a checkpoint_dir"
            )
        if self.checkpoint_keep < 1:
            raise ConfigurationError("checkpoint_keep must be >= 1")
        if self.watchdog_cycles is not None and self.watchdog_cycles < 0:
            raise ConfigurationError("watchdog_cycles must be >= 0")
        if self.jitter_budget is not None and self.jitter_budget < 0:
            raise ConfigurationError("jitter_budget must be >= 0")
        # Tolerate a list in user code; store canonically as a tuple.
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))


class ResilienceRuntime:
    """The live resilience state of one built system."""

    def __init__(
        self,
        config: ResilienceConfig,
        rng: DeterministicRng,
        address_space_bytes: int = 1 << 30,
        line_bytes: int = 64,
    ) -> None:
        self.config = config
        self.injector: Optional[FaultInjector] = None
        if config.faults:
            self.injector = FaultInjector(
                config.faults,
                rng.fork(0xFA17 + config.fault_seed),
                address_space_bytes=address_space_bytes,
                line_bytes=line_bytes,
            )
        self.tracer = NULL_TRACER
        self.checkpoints_taken = 0
        self.last_checkpoint_path = ""
        self._written: List[str] = []

    def attach_tracer(self, tracer) -> None:
        self.tracer = tracer
        if self.injector is not None:
            self.injector.attach_tracer(tracer)

    # -- checkpointing ----------------------------------------------------

    def checkpoint_path(self, cycle: int) -> str:
        return os.path.join(
            self.config.checkpoint_dir, f"checkpoint-{cycle:012d}.snap"
        )

    def next_checkpoint_boundary(self, cycle: int) -> int:
        """Smallest checkpoint multiple strictly after ``cycle``."""
        every = self.config.checkpoint_every
        return (cycle // every + 1) * every

    def take_checkpoint(self, system) -> str:
        """Snapshot ``system`` at its current cycle; prune old files.

        All runtime bookkeeping (counter, retention list, trace event)
        is applied *before* the snapshot is written, so the snapshot
        contains its own checkpoint record — a resumed run's event
        stream and runtime state then match the uninterrupted run's
        exactly.
        """
        path = self.checkpoint_path(system.current_cycle)
        self.checkpoints_taken += 1
        self.last_checkpoint_path = path
        if path not in self._written:
            self._written.append(path)
        while len(self._written) > self.config.checkpoint_keep:
            stale = self._written.pop(0)
            try:
                os.remove(stale)
            except OSError:
                # Pruning is best-effort: a checkpoint someone moved or
                # deleted out from under us is not an error.
                pass
        if self.tracer.enabled:
            self.tracer.emit(
                system.current_cycle, CATEGORY_RESILIENCE,
                "resilience.checkpoint",
                ordinal=self.checkpoints_taken,
            )
        snapshot_system(system, path)
        return path

"""repro.resilience: checkpoint/restore, stall watchdog, fault harness.

The robustness layer (DESIGN.md §4, docs/resilience.md): deterministic
whole-system snapshots so long runs survive restarts bit-identically,
a forward-progress watchdog with structured diagnostic dumps, and a
fault-injection harness with explicit graceful-degradation policies.
"""

from repro.resilience.faults import (
    EpochBoundaryStress,
    FaultInjector,
    LinkStall,
    QueueSaturation,
    TrafficBurst,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    run_attempts,
)
from repro.resilience.runtime import ResilienceConfig, ResilienceRuntime
from repro.resilience.scenarios import run_scenario, scenario_names
from repro.resilience.snapshot import (
    SNAPSHOT_VERSION,
    atomic_write_bytes,
    load_snapshot,
    read_snapshot_info,
    restore_system,
    save_snapshot,
    snapshot_system,
)
from repro.resilience.watchdog import Watchdog, diagnostic_dump

__all__ = [
    "EpochBoundaryStress",
    "FaultInjector",
    "LinkStall",
    "QueueSaturation",
    "TrafficBurst",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
    "run_attempts",
    "ResilienceConfig",
    "ResilienceRuntime",
    "run_scenario",
    "scenario_names",
    "SNAPSHOT_VERSION",
    "atomic_write_bytes",
    "load_snapshot",
    "read_snapshot_info",
    "restore_system",
    "save_snapshot",
    "snapshot_system",
    "Watchdog",
    "diagnostic_dump",
]

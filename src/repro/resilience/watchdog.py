"""Stall watchdog: detect no-progress livelock/deadlock, dump, abort.

Progress is defined exactly as the run loop always has: the sum of
retired instructions plus delivered real fills.  When that sum stays
flat for more than ``cycles`` consecutive cycles while cores still
have work, the system is wedged — an unserviceable shaping
configuration, a shaper↔memctrl queue cycle, or an injected fault —
and the watchdog aborts cleanly with a
:class:`~repro.common.errors.WatchdogError` carrying a structured
diagnostic dump (also emitted through :mod:`repro.obs` and optionally
written to a JSON file).

Engine note: under the next-event engine the run loop caps every clock
jump at :meth:`Watchdog.horizon`, so a frozen system still trips the
progress check at the same cycle the per-cycle loop would — skipped
spans are progress-free by construction, which keeps the two engines
bit-identical even in runs that abort.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.common.errors import WatchdogError
from repro.obs.events import CATEGORY_RESILIENCE
from repro.obs.tracer import NULL_TRACER


class Watchdog:
    """Forward-progress supervisor for one :meth:`System.run` call."""

    def __init__(self, cycles: int, dump_path: str = "",
                 tracer=NULL_TRACER) -> None:
        self.cycles = cycles
        self.dump_path = dump_path
        self.tracer = tracer
        self._last_progress_cycle = 0
        self._last_retired = 0
        self._last_delivered = 0
        self._metrics = None

    def bind_metrics(self, registry) -> None:
        """Mirror the near-stall margin into registry gauges.

        ``watchdog.stall_margin`` is the headroom left before the
        progress check trips — ``cycles - (current - last_progress)``;
        a value sliding toward zero on ``/metrics`` is the live
        warning that a shaping configuration is starving a core.  The
        margin depends on the observe cadence, which differs between
        engines, so the run loop binds this only when a serve
        publisher is attached — never in the deterministic
        cross-engine paths (the watchdog *trip* cycle itself stays
        engine-invariant regardless).
        """
        self._metrics = registry
        registry.gauge("watchdog.limit_cycles").set(self.cycles)
        registry.gauge("watchdog.stall_margin").set(self.cycles)

    def reset(self, system) -> None:
        """Re-arm against the system's current progress counters."""
        self._last_progress_cycle = system.current_cycle
        self._last_retired = sum(
            c.retired_instructions for c in system.cores
        )
        self._last_delivered = sum(len(lat) for lat in system._latencies)

    def horizon(self, cycle: int) -> int:
        """The furthest cycle a next-event skip may reach in one jump.

        Never past the point the progress check must run: a frozen
        (deadlocked) system must still trip it, exactly as the
        per-cycle loop would while spinning through the same span.
        """
        return max(cycle + 1, self._last_progress_cycle + self.cycles + 1)

    def observe(self, system) -> None:
        """Progress check; raises :class:`WatchdogError` on a stall."""
        retired = sum(c.retired_instructions for c in system.cores)
        delivered = sum(len(lat) for lat in system._latencies)
        if retired != self._last_retired or delivered != self._last_delivered:
            self._last_retired = retired
            self._last_delivered = delivered
            self._last_progress_cycle = system.current_cycle
            if self._metrics is not None:
                self._metrics.gauge("watchdog.stall_margin").set(self.cycles)
            return
        if self._metrics is not None:
            self._metrics.gauge("watchdog.stall_margin").set(
                self.cycles
                - (system.current_cycle - self._last_progress_cycle)
            )
        if (
            system.current_cycle - self._last_progress_cycle > self.cycles
            and not system.all_cores_done()
        ):
            self.trip(system)

    def trip(self, system) -> None:
        """Capture the diagnostic dump and abort."""
        pending = [
            (c.core_id, c.outstanding_misses,
             system.request_paths[c.core_id].occupancy)
            for c in system.cores
            if not c.done
        ]
        dump = diagnostic_dump(system, self.cycles)
        dump_path = ""
        if self.dump_path:
            dump_path = self.dump_path
            directory = os.path.dirname(dump_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(dump_path, "w", encoding="utf-8") as fh:
                json.dump(dump, fh, indent=2, sort_keys=True)
        if self.tracer.enabled:
            self.tracer.emit(
                system.current_cycle, CATEGORY_RESILIENCE, "watchdog.stall",
                stalled_for=self.cycles,
                pending_cores=len(pending),
            )
        raise WatchdogError(
            f"no forward progress for {self.cycles} cycles "
            f"at cycle {system.current_cycle}; pending cores "
            f"(id, outstanding, shaper occupancy): {pending} — "
            "likely an unserviceable shaping configuration",
            dump=dump,
            dump_path=dump_path,
        )


def diagnostic_dump(system, stalled_for: int = 0) -> Dict[str, Any]:
    """A JSON-serialisable picture of where the system is wedged.

    Covers every station of the pipeline a transaction can be stuck
    at: core miss state, shaper buffers and credit registers, NoC port
    occupancy, the controller's staging/transaction/write queues,
    in-flight bursts and per-core egress.
    """
    controller = system.controller
    cores = []
    for core in system.cores:
        path = system.request_paths[core.core_id]
        entry: Dict[str, Any] = {
            "core_id": core.core_id,
            "done": core.done,
            "retired_instructions": core.retired_instructions,
            "outstanding_misses": core.outstanding_misses,
            "request_path_occupancy": path.occupancy,
            "response_path_occupancy": system.response_paths[
                core.core_id
            ].occupancy,
            "egress_pending": controller.pending_response_count(core.core_id),
        }
        shaper = getattr(path, "shaper", None)
        if shaper is not None:
            entry["request_shaper"] = {
                "credits": list(shaper.credits_remaining()),
                "unused": list(shaper.unused_remaining()),
                "next_replenish_cycle": shaper.next_replenish_cycle,
                "degraded": shaper.degraded,
            }
        resp_shaper = getattr(
            system.response_paths[core.core_id], "shaper", None
        )
        if resp_shaper is not None:
            entry["response_shaper"] = {
                "credits": list(resp_shaper.credits_remaining()),
                "unused": list(resp_shaper.unused_remaining()),
                "next_replenish_cycle": resp_shaper.next_replenish_cycle,
                "degraded": resp_shaper.degraded,
            }
        cores.append(entry)
    dump: Dict[str, Any] = {
        "kind": "watchdog_dump",
        "cycle": system.current_cycle,
        "stalled_for": stalled_for,
        "cores": cores,
        "memctrl": {
            "can_accept": controller.can_accept(),
            "queue_depth": len(controller.queue),
            "queue_capacity": controller.queue.capacity,
            "write_queue_depth": (
                len(controller.write_queue)
                if controller.write_queue is not None
                else None
            ),
            "staging_depth": len(system._mc_staging),
            "in_flight": len(controller._in_flight),
            "refresh_pending": sorted(
                list(pair) for pair in controller._refresh_pending
            ),
        },
        "noc": {
            "request_link_grants": system.request_link.total_grants,
            "response_link_grants": system.response_link.total_grants,
        },
    }
    if system.resilience is not None and system.resilience.injector is not None:
        dump["faults"] = system.resilience.injector.stats()
    return dump

"""Fault/adversity injection: bursts, saturation, stalls, epoch stress.

Each fault is a frozen *spec* naming when and how hard to hit the
system; a :class:`FaultInjector` executes all specs deterministically
at the start of each tick (``System.tick`` calls
:meth:`FaultInjector.on_cycle` before any component runs, so the
injection order relative to normal work is fixed and identical under
both engines).  The injector also participates in the next-event
protocol: it reports its upcoming injection cycles and pins the system
to per-cycle stepping while a fault is actively mutating state, which
keeps fault runs bit-identical between ``engine="cycle"`` and
``engine="next_event"``.

The harness exists to *prove* the resilience contract: every injected
adversity must end in a typed error (e.g.
:class:`~repro.common.errors.QueueOverflowError` from a producer bug,
:class:`~repro.common.errors.WatchdogError` from a seeded livelock) or
a monitor-flagged degraded mode — never a silent shaping-guarantee
violation.  Injected traffic uses ``FAKE_READ`` transactions, which
carry no architectural state, so a survived fault run still retires
exactly the workload's instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.memctrl.transaction import MemoryTransaction, TransactionType
from repro.obs.events import CATEGORY_RESILIENCE
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class TrafficBurst:
    """Flood one core's request shaper with extra intrinsic traffic.

    From ``start_cycle``, up to ``per_cycle`` extra transactions are
    submitted to the core's request path each cycle (honouring its
    ``can_accept`` backpressure) until ``count`` have been injected.
    The transactions ride the shaper's *real*-release path like demand
    misses but are ``FAKE_READ``-kinded, so their eventual responses
    carry no architectural state back into the core.  Exercises shaper
    buffering under intrinsic rates far above the configured
    distribution — the shaped output must stay on target.
    """

    core_id: int = 0
    start_cycle: int = 0
    count: int = 64
    per_cycle: int = 4

    def __post_init__(self) -> None:
        _check_positive(self, count=self.count, per_cycle=self.per_cycle)


@dataclass(frozen=True)
class QueueSaturation:
    """Push the memory controller toward its transaction-queue bound.

    From ``start_cycle``, up to ``per_cycle`` fake reads per cycle are
    placed in the controller's staging area until ``count`` are
    injected.  Staged work drains into the controller only while
    ``can_accept`` holds, so the 32-entry bound is exercised — and the
    explicit :class:`~repro.common.errors.QueueOverflowError` semantics
    verified — without ever bypassing backpressure.
    """

    core_id: int = 0
    start_cycle: int = 0
    count: int = 64
    per_cycle: int = 8

    def __post_init__(self) -> None:
        _check_positive(self, count=self.count, per_cycle=self.per_cycle)


@dataclass(frozen=True)
class LinkStall:
    """Hold the request NoC's destination not-ready (seeded wedge).

    While active, the memory controller refuses arrivals, so requests
    pile up in the link and shapers and the cores eventually starve.
    ``duration=None`` makes the stall permanent — the canonical seeded
    livelock the watchdog must catch and dump.
    """

    start_cycle: int = 0
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("LinkStall duration must be positive")

    @property
    def end_cycle(self) -> Optional[int]:
        if self.duration is None:
            return None
        return self.start_cycle + self.duration

    def active(self, cycle: int) -> bool:
        if cycle < self.start_cycle:
            return False
        return self.duration is None or cycle < self.start_cycle + self.duration


@dataclass(frozen=True)
class EpochBoundaryStress:
    """Burst traffic right before a core's epoch-rate boundaries.

    For each of the next ``epochs`` boundaries of the core's
    :class:`~repro.core.epoch_shaper.EpochRateShaper`, ``burst``
    transactions are submitted in the ``lead`` cycles preceding the
    boundary — the worst moment for the AIMD rate-feedback decision.
    Requires the target core to use epoch shaping.
    """

    core_id: int = 0
    epochs: int = 4
    burst: int = 8
    lead: int = 16

    def __post_init__(self) -> None:
        _check_positive(
            self, epochs=self.epochs, burst=self.burst, lead=self.lead
        )


FaultSpec = Union[TrafficBurst, QueueSaturation, LinkStall, EpochBoundaryStress]


def _check_positive(spec, **fields) -> None:
    for name, value in fields.items():
        if value <= 0:
            raise ConfigurationError(
                f"{type(spec).__name__}.{name} must be positive: {value}"
            )


class _BurstState:
    """Mutable progress of one injection spec (picklable)."""

    __slots__ = ("spec", "remaining", "epochs_left")

    def __init__(self, spec) -> None:
        self.spec = spec
        self.remaining = getattr(spec, "count", 0)
        self.epochs_left = getattr(spec, "epochs", 0)


class FaultInjector:
    """Deterministic executor for a set of fault specs."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        rng: DeterministicRng,
        address_space_bytes: int = 1 << 30,
        line_bytes: int = 64,
    ) -> None:
        self.specs = tuple(specs)
        self._rng = rng
        self._address_space = address_space_bytes
        self._line_bytes = line_bytes
        self._bursts = [
            _BurstState(s) for s in self.specs if isinstance(s, TrafficBurst)
        ]
        self._saturations = [
            _BurstState(s) for s in self.specs if isinstance(s, QueueSaturation)
        ]
        self._stalls = [s for s in self.specs if isinstance(s, LinkStall)]
        self._epoch_stress = [
            _BurstState(s)
            for s in self.specs
            if isinstance(s, EpochBoundaryStress)
        ]
        self.tracer = NULL_TRACER
        # Statistics (exported into watchdog dumps and scenario reports).
        self.injected_bursts = 0
        self.injected_saturations = 0
        self.injected_epoch_stress = 0

    # -- wiring ----------------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        self.tracer = tracer

    # -- System.tick integration ----------------------------------------

    def request_link_stalled(self, cycle: int) -> bool:
        """True while any :class:`LinkStall` holds the MC not-ready."""
        return any(s.active(cycle) for s in self._stalls)

    def on_cycle(self, system, cycle: int) -> None:
        """Run all due injections (called at the top of ``tick``)."""
        for state in self._bursts:
            self._run_burst(system, cycle, state)
        for state in self._saturations:
            self._run_saturation(system, cycle, state)
        for state in self._epoch_stress:
            self._run_epoch_stress(system, cycle, state)

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next-event contract: injection cycles are events.

        Returns ``cycle`` while any fault is actively injecting or
        stalling (pins per-cycle stepping), else the earliest future
        start/stop edge, else ``None``.
        """
        events: List[int] = []
        for state in self._bursts + self._saturations:
            if state.remaining <= 0:
                continue
            if cycle >= state.spec.start_cycle:
                return cycle
            events.append(state.spec.start_cycle)
        for stall in self._stalls:
            if stall.active(cycle):
                return cycle
            if cycle < stall.start_cycle:
                events.append(stall.start_cycle)
            end = stall.end_cycle
            if end is not None and cycle < end:
                events.append(end)
        for state in self._epoch_stress:
            if state.epochs_left > 0:
                # The boundary cycle depends on the live shaper; pin to
                # per-cycle stepping while boundaries remain so the
                # lead-window check runs every cycle.
                return cycle
        return min(events) if events else None

    def stats(self) -> Dict[str, Any]:
        return {
            "specs": len(self.specs),
            "injected_bursts": self.injected_bursts,
            "injected_saturations": self.injected_saturations,
            "injected_epoch_stress": self.injected_epoch_stress,
            "bursts_remaining": sum(s.remaining for s in self._bursts),
            "saturations_remaining": sum(
                s.remaining for s in self._saturations
            ),
            "stalls": [
                {"start_cycle": s.start_cycle, "duration": s.duration}
                for s in self._stalls
            ],
        }

    # -- injections ------------------------------------------------------

    def _fake_address(self) -> int:
        max_line = max(1, self._address_space // self._line_bytes)
        return self._rng.randint(0, max_line - 1) * self._line_bytes

    def _emit(self, cycle: int, name: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(cycle, CATEGORY_RESILIENCE, name, **args)

    def _run_burst(self, system, cycle: int, state: _BurstState) -> None:
        spec = state.spec
        if state.remaining <= 0 or cycle < spec.start_cycle:
            return
        path = system.request_paths[spec.core_id]
        injected = 0
        while injected < spec.per_cycle and state.remaining > 0:
            if not path.can_accept(spec.core_id):
                break
            txn = MemoryTransaction(
                core_id=spec.core_id,
                address=self._fake_address(),
                kind=TransactionType.FAKE_READ,
                created_cycle=cycle,
            )
            path.submit(txn, cycle)
            state.remaining -= 1
            injected += 1
            self.injected_bursts += 1
        if injected:
            self._emit(
                cycle, "fault.burst",
                core_id=spec.core_id, injected=injected,
                remaining=state.remaining,
            )

    def _run_saturation(self, system, cycle: int, state: _BurstState) -> None:
        spec = state.spec
        if state.remaining <= 0 or cycle < spec.start_cycle:
            return
        injected = 0
        while injected < spec.per_cycle and state.remaining > 0:
            txn = MemoryTransaction(
                core_id=spec.core_id,
                address=self._fake_address(),
                kind=TransactionType.FAKE_READ,
                created_cycle=cycle,
            )
            system._mc_staging.append(txn)
            state.remaining -= 1
            injected += 1
            self.injected_saturations += 1
        if injected:
            self._emit(
                cycle, "fault.saturation",
                core_id=spec.core_id, injected=injected,
                staging_depth=len(system._mc_staging),
            )

    def _run_epoch_stress(self, system, cycle: int, state: _BurstState) -> None:
        spec = state.spec
        if state.epochs_left <= 0:
            return
        path = system.request_paths[spec.core_id]
        controller = getattr(path, "controller", None)
        if controller is None:
            raise ConfigurationError(
                f"EpochBoundaryStress targets core {spec.core_id}, whose "
                "request path is not an EpochRateShaper"
            )
        boundary = controller.next_boundary
        if not boundary - spec.lead <= cycle < boundary:
            return
        injected = 0
        for _ in range(spec.burst):
            if not path.can_accept(spec.core_id):
                break
            txn = MemoryTransaction(
                core_id=spec.core_id,
                address=self._fake_address(),
                kind=TransactionType.FAKE_READ,
                created_cycle=cycle,
            )
            path.submit(txn, cycle)
            injected += 1
            self.injected_epoch_stress += 1
        if cycle == boundary - 1:
            state.epochs_left -= 1
        if injected:
            self._emit(
                cycle, "fault.epoch_stress",
                core_id=spec.core_id, injected=injected,
                boundary=boundary,
            )

"""Retry/timeout policy for operations that may fail transiently.

The parallel sweep executor (:mod:`repro.parallel.executor`) delegates
its worker-failure handling here so the policy is a reusable,
independently tested resilience primitive rather than scheduling code:
a bounded number of attempts, an optional per-attempt timeout, and a
structured :class:`~repro.common.errors.WorkerFailureError` when the
budget runs out.

Determinism note: retrying a *deterministic* task is safe by
construction — a repro simulation task is a pure function of its
payload and seed, so attempt N produces the same result attempt 1
would have.  The policy therefore never changes results, only whether
a transient fault (worker killed by the OS, pool torn down) becomes a
run-ending error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.common.errors import ConfigurationError, WorkerFailureError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a task, and how long one attempt may take.

    ``max_attempts``
        Total attempts including the first (1 = no retries).
    ``timeout_seconds``
        Per-attempt wall-clock budget, or ``None`` for unbounded.
        Enforced by the caller's wait primitive (the executor passes it
        to ``Future.result``); :func:`run_attempts` treats a
        ``TimeoutError`` like any other attempt failure.
    """

    max_attempts: int = 2
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")


#: The executor default: one retry, no timeout.
DEFAULT_RETRY_POLICY = RetryPolicy()


def run_attempts(
    attempt: Callable[[int], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    task_index: int = -1,
    label: str = "",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``attempt(attempt_number)`` until it succeeds or the budget ends.

    ``attempt`` receives the 1-based attempt number (so the callee can
    log or re-derive state); any exception it raises consumes one
    attempt.  ``on_retry(next_attempt_number, error)`` fires before
    each re-attempt.  After ``policy.max_attempts`` failures a
    :class:`WorkerFailureError` carrying the shard identity and the
    last cause is raised.
    """
    last_error: Optional[BaseException] = None
    for number in range(1, policy.max_attempts + 1):
        try:
            return attempt(number)
        except Exception as exc:  # noqa: BLE001 — the boundary this exists for
            last_error = exc
            if number < policy.max_attempts and on_retry is not None:
                on_retry(number + 1, exc)
    raise WorkerFailureError(
        f"task {label or task_index} failed after "
        f"{policy.max_attempts} attempt(s): {last_error}",
        task_index=task_index,
        label=label,
        attempts=policy.max_attempts,
        last_error=f"{type(last_error).__name__}: {last_error}",
    ) from last_error

"""Retry/timeout/backoff policy for operations that may fail transiently.

The parallel sweep executor (:mod:`repro.parallel.executor`) and the
multi-host dispatch coordinator (:mod:`repro.parallel.dispatch`)
delegate their worker-failure handling here so the policy is a
reusable, independently tested resilience primitive rather than
scheduling code: a bounded number of attempts, an optional per-attempt
timeout, an optional exponential backoff between attempts, and a
structured :class:`~repro.common.errors.WorkerFailureError` when the
budget runs out.

Backoff is *injectable*: :func:`run_attempts` takes ``sleep`` and
``rng`` parameters so tests (and the deterministic dispatch chaos
harness) can observe the exact delays the policy computes without ever
sleeping for real.  The defaults preserve the historical behaviour —
``backoff_seconds=0.0`` means no sleeping at all, and only when a
policy actually requests backoff does the real ``time.sleep`` come
into play.

Determinism note: retrying a *deterministic* task is safe by
construction — a repro simulation task is a pure function of its
payload and seed, so attempt N produces the same result attempt 1
would have.  The policy therefore never changes results, only whether
a transient fault (worker killed by the OS, pool torn down, a dispatch
host lost mid-shard) becomes a run-ending error.  Jitter, when
enabled, perturbs only *when* an attempt runs, never *what* it
computes, and draws from a caller-provided RNG so even the delays are
replayable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.common.errors import ConfigurationError, WorkerFailureError
from repro.common.rng import DeterministicRng

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a task, how long one attempt may take, and
    how long to wait between attempts.

    ``max_attempts``
        Total attempts including the first (1 = no retries).
    ``timeout_seconds``
        Per-attempt wall-clock budget, or ``None`` for unbounded.
        Enforced by the caller's wait primitive (the executor passes it
        to ``Future.result``); :func:`run_attempts` treats a
        ``TimeoutError`` like any other attempt failure.
    ``backoff_seconds``
        Base delay before the *second* attempt.  ``0.0`` (the default)
        disables backoff entirely — no sleep callable is ever invoked.
    ``backoff_factor``
        Multiplier applied per additional failure: the delay before
        attempt ``n+1`` is ``backoff_seconds * backoff_factor**(n-1)``.
    ``backoff_max_seconds``
        Cap on any single delay, or ``None`` for uncapped growth.
    ``jitter_fraction``
        Fraction of the (capped) delay added as uniform random jitter:
        the final delay is ``d * (1 + U[0, jitter_fraction))``.  Jitter
        draws from the ``rng`` passed to :func:`run_attempts` /
        :meth:`backoff_delay`, keeping delays replayable.
    """

    max_attempts: int = 2
    timeout_seconds: Optional[float] = None
    backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_seconds: Optional[float] = None
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive")
        if self.backoff_seconds < 0:
            raise ConfigurationError("backoff_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.backoff_max_seconds is not None and self.backoff_max_seconds < 0:
            raise ConfigurationError("backoff_max_seconds must be >= 0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")

    def backoff_delay(
        self, failed_attempts: int, rng: Optional[DeterministicRng] = None
    ) -> float:
        """Delay in seconds before the attempt after ``failed_attempts``
        failures (``failed_attempts >= 1``).

        Pure given its inputs: exponential growth from
        ``backoff_seconds``, capped at ``backoff_max_seconds``, plus
        jitter drawn from ``rng`` when ``jitter_fraction > 0``.  With
        jitter enabled but no ``rng`` supplied the deterministic
        midpoint (half the jitter range) is used, so callers that do
        not care about jitter spread still get reproducible delays.
        """
        if failed_attempts < 1:
            raise ConfigurationError("failed_attempts must be >= 1")
        if self.backoff_seconds == 0.0:
            return 0.0
        delay = self.backoff_seconds * self.backoff_factor ** (failed_attempts - 1)
        if self.backoff_max_seconds is not None:
            delay = min(delay, self.backoff_max_seconds)
        if self.jitter_fraction > 0.0:
            if rng is not None:
                fraction = rng.random() * self.jitter_fraction
            else:
                fraction = self.jitter_fraction / 2.0
            delay *= 1.0 + fraction
        return delay


#: The executor default: one retry, no timeout, no backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()


def _default_sleep(seconds: float) -> None:
    """Real wall-clock sleep; only reached when a policy enables backoff."""
    # repro-lint: disable-next-line=RL001 — retry backoff is wall-clock
    time.sleep(seconds)


def run_attempts(
    attempt: Callable[[int], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    task_index: int = -1,
    label: str = "",
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Optional[Callable[[float], None]] = None,
    rng: Optional[DeterministicRng] = None,
) -> T:
    """Call ``attempt(attempt_number)`` until it succeeds or the budget ends.

    ``attempt`` receives the 1-based attempt number (so the callee can
    log or re-derive state); any exception it raises consumes one
    attempt.  ``on_retry(next_attempt_number, error)`` fires before
    each re-attempt, *before* any backoff delay.  When the policy
    requests backoff, ``sleep(delay)`` is called with the value of
    :meth:`RetryPolicy.backoff_delay`; pass a recording stub to test
    retry schedules without real delays (``rng`` feeds the jitter
    draw).  After ``policy.max_attempts`` failures a
    :class:`WorkerFailureError` carrying the shard identity and the
    last cause is raised.
    """
    sleeper = sleep if sleep is not None else _default_sleep
    last_error: Optional[BaseException] = None
    for number in range(1, policy.max_attempts + 1):
        try:
            return attempt(number)
        except Exception as exc:  # noqa: BLE001 — the boundary this exists for
            last_error = exc
            if number < policy.max_attempts:
                if on_retry is not None:
                    on_retry(number + 1, exc)
                delay = policy.backoff_delay(number, rng=rng)
                if delay > 0.0:
                    sleeper(delay)
    raise WorkerFailureError(
        f"task {label or task_index} failed after "
        f"{policy.max_attempts} attempt(s): {last_error}",
        task_index=task_index,
        label=label,
        attempts=policy.max_attempts,
        last_error=f"{type(last_error).__name__}: {last_error}",
    ) from last_error

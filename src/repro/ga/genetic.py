"""Generic integer-vector genetic algorithm.

Minimization GA over fixed-length vectors of bounded non-negative
integers — the natural encoding of Camouflage bin configurations.
Deliberately dependency-free so it can also be unit-tested against
analytic objectives.

Operators:

* **Selection** — tournament of size 2 over the evaluated population.
* **Crossover** — uniform (per-gene coin flip) with probability
  ``crossover_rate``, otherwise clone of the first parent.
* **Mutation** — each gene independently resampled near its current
  value (geometric-scale step) with probability ``mutation_rate``.
* **Elitism** — the best ``elite_count`` individuals survive verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng

Genome = Tuple[int, ...]


@dataclass(frozen=True)
class GaConfig:
    """Hyper-parameters of the search (paper: 20-30 children, 20 gens)."""

    genome_length: int
    max_gene: int
    population_size: int = 20
    generations: int = 20
    mutation_rate: float = 0.15
    crossover_rate: float = 0.8
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.genome_length <= 0:
            raise ConfigurationError("genome_length must be positive")
        if self.max_gene <= 0:
            raise ConfigurationError("max_gene must be positive")
        if self.population_size < 2:
            raise ConfigurationError("population_size must be at least 2")
        if self.generations <= 0:
            raise ConfigurationError("generations must be positive")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must be a probability")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must be a probability")
        if not 0 <= self.elite_count < self.population_size:
            raise ConfigurationError(
                "elite_count must be smaller than the population"
            )


class GeneticAlgorithm:
    """Evolve integer genomes to minimize a fitness callback.

    The search state (population, generation counter, best-so-far,
    RNG) lives on the instance and the whole object pickles, so an
    in-progress search can be checkpointed after any generation and
    resumed bit-identically (see repro.resilience / docs/resilience.md).
    Drive it either with :meth:`evolve` (the whole search in one call)
    or :meth:`initialize` + repeated :meth:`step` for external loops
    that checkpoint between generations.
    """

    def __init__(self, config: GaConfig, rng: DeterministicRng) -> None:
        self.config = config
        self._rng = rng
        self.history: List[float] = []  # best fitness per generation
        self._population: List[Genome] = []
        self._generation = 0
        self._best: Optional[Tuple[Genome, float]] = None

    # -- genome helpers -------------------------------------------------

    def random_genome(self) -> Genome:
        """A fresh random genome with at least one non-zero gene."""
        cfg = self.config
        genome = tuple(
            self._rng.randint(0, cfg.max_gene) for _ in range(cfg.genome_length)
        )
        return self._repair(genome)

    def _repair(self, genome: Genome) -> Genome:
        """Ensure validity: at least one positive gene (no dead shaper)."""
        if any(g > 0 for g in genome):
            return genome
        index = self._rng.randint(0, len(genome) - 1)
        fixed = list(genome)
        fixed[index] = 1
        return tuple(fixed)

    def mutate(self, genome: Genome) -> Genome:
        """Per-gene geometric-scale perturbation."""
        cfg = self.config
        out = list(genome)
        for i, gene in enumerate(out):
            if self._rng.random() < cfg.mutation_rate:
                # Step size proportional to the gene's magnitude keeps
                # exploration meaningful at both ends of the range.
                span = max(1, gene // 2, cfg.max_gene // 16)
                out[i] = max(0, min(cfg.max_gene,
                                    gene + self._rng.randint(-span, span)))
        return self._repair(tuple(out))

    def crossover(self, a: Genome, b: Genome) -> Genome:
        """Uniform crossover (falls back to cloning parent ``a``)."""
        if self._rng.random() >= self.config.crossover_rate:
            return a
        child = tuple(
            x if self._rng.random() < 0.5 else y for x, y in zip(a, b)
        )
        return self._repair(child)

    def _tournament(
        self, scored: Sequence[Tuple[Genome, float]]
    ) -> Genome:
        a = self._rng.choice(scored)
        b = self._rng.choice(scored)
        return a[0] if a[1] <= b[1] else b[0]

    # -- main loop ------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Generations fully evaluated and bred so far."""
        return self._generation

    @property
    def best(self) -> Optional[Tuple[Genome, float]]:
        """Best (genome, fitness) found so far, or None before step 1."""
        return self._best

    @property
    def done(self) -> bool:
        return self._generation >= self.config.generations

    def initialize(
        self, seed_population: Optional[Sequence[Genome]] = None
    ) -> None:
        """(Re)build the starting population; resets search state."""
        cfg = self.config
        population: List[Genome] = list(seed_population or [])
        for genome in population:
            if len(genome) != cfg.genome_length:
                raise ConfigurationError(
                    "seed genome length does not match the configuration"
                )
        while len(population) < cfg.population_size:
            population.append(self.random_genome())
        self._population = population[: cfg.population_size]
        self._generation = 0
        self._best = None
        self.history = []

    def step(
        self,
        evaluate: Optional[Callable[[Genome], float]] = None,
        map_evaluate: Optional[
            Callable[[Sequence[Genome]], Sequence[float]]
        ] = None,
    ) -> Tuple[Genome, float]:
        """Evaluate and breed one generation; returns best-so-far.

        Exactly one evaluator must be given: ``evaluate`` scores one
        genome at a time, ``map_evaluate`` scores the whole population
        in one call (order-preserving) — the hook the parallel layer
        uses to fan a generation's fitness runs across worker
        processes (:func:`repro.parallel.tasks.ga_population_evaluator`).
        Breeding consumes the instance RNG identically either way, so
        the two forms produce bit-identical searches for equal scores.

        The unit of checkpointing: after any completed step the whole
        instance can be pickled and the search resumed later with
        further :meth:`step` calls — the remaining generations are
        bit-identical to an uninterrupted run.
        """
        if not self._population:
            raise ConfigurationError(
                "step() before initialize(): no population"
            )
        if (evaluate is None) == (map_evaluate is None):
            raise ConfigurationError(
                "step() needs exactly one of evaluate / map_evaluate"
            )
        cfg = self.config
        if map_evaluate is not None:
            fitnesses = list(map_evaluate(list(self._population)))
            if len(fitnesses) != len(self._population):
                raise ConfigurationError(
                    "map_evaluate returned "
                    f"{len(fitnesses)} scores for "
                    f"{len(self._population)} genomes"
                )
            scored = list(zip(self._population, fitnesses))
        else:
            assert evaluate is not None
            scored = [
                (genome, evaluate(genome)) for genome in self._population
            ]
        scored.sort(key=lambda pair: pair[1])
        if self._best is None or scored[0][1] < self._best[1]:
            self._best = scored[0]
        self.history.append(scored[0][1])

        next_population: List[Genome] = [
            genome for genome, _ in scored[: cfg.elite_count]
        ]
        while len(next_population) < cfg.population_size:
            parent_a = self._tournament(scored)
            parent_b = self._tournament(scored)
            child = self.mutate(self.crossover(parent_a, parent_b))
            next_population.append(child)
        self._population = next_population
        self._generation += 1
        assert self._best is not None
        return self._best

    def evolve(
        self,
        evaluate: Optional[Callable[[Genome], float]] = None,
        seed_population: Optional[Sequence[Genome]] = None,
        on_generation: Optional[Callable[["GeneticAlgorithm"], None]] = None,
        map_evaluate: Optional[
            Callable[[Sequence[Genome]], Sequence[float]]
        ] = None,
    ) -> Tuple[Genome, float]:
        """Run the search to completion; returns (best genome, fitness).

        ``evaluate`` maps a genome to a cost (lower is better) and is
        called once per individual per generation — for the online
        tuner each call is a live simulation window, so the total
        budget is ``population_size × generations`` windows.
        ``map_evaluate`` is the population-at-a-time alternative
        (see :meth:`step`); pass exactly one of the two.

        ``on_generation`` is invoked with the instance after each
        generation (checkpoint hook).  On a fresh instance the
        population is initialized from ``seed_population``; on one
        restored mid-search the remaining generations run and
        ``seed_population`` is ignored.
        """
        if self._generation == 0 and not self._population:
            self.initialize(seed_population)
        best = self._best
        while not self.done:
            best = self.step(evaluate, map_evaluate=map_evaluate)
            if on_generation is not None:
                on_generation(self)
        assert best is not None
        return best

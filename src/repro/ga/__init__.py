"""Genetic-algorithm bin-configuration tuning (paper section IV-C).

The BDC search space is ``MAX_CREDITS^20`` (two 10-bin vectors); the
paper tunes it with an *online* genetic algorithm that alternates
profiling (each program at highest priority, to get its
no-interference service rate for the MISE slowdown model) with child
evaluation windows on live hardware.

* :class:`GeneticAlgorithm` — generic integer-vector GA (selection,
  uniform crossover, per-gene mutation, elitism).
* :func:`mise_slowdown` — MISE's slowdown estimate from α (memory
  stall fraction) and the two service rates.
* :class:`OnlineGaTuner` — the Figure 8 protocol driven against a live
  :class:`~repro.sim.System`.
"""

from repro.ga.genetic import GaConfig, GeneticAlgorithm
from repro.ga.mise import MiseMeasurement, mise_slowdown
from repro.ga.online import (
    OnlineGaTuner,
    ShaperHandle,
    TunerConfig,
    resume_tuner,
    save_tuner,
)
from repro.ga.phase import PhaseDetector, PhaseDetectorConfig

__all__ = [
    "GaConfig",
    "GeneticAlgorithm",
    "MiseMeasurement",
    "OnlineGaTuner",
    "PhaseDetector",
    "PhaseDetectorConfig",
    "ShaperHandle",
    "TunerConfig",
    "mise_slowdown",
    "resume_tuner",
    "save_tuner",
]

"""The online GA tuner — the paper's Figure 8 protocol.

One reconfiguration consists of a CONFIG phase followed by a RUN
phase.  The CONFIG phase iterates generations; each generation begins
with a *highest-priority-mode* (HPM) profiling pass — every program
briefly owns the memory scheduler so its no-interference service rate
can be measured — followed by one live evaluation window per child
configuration, scored with the MISE average-slowdown model.  The best
configuration found is then installed for the RUN phase.

The tuner drives a live :class:`~repro.sim.System` whose scheduler is
a :class:`~repro.memctrl.schedulers.PriorityFrFcfsScheduler` (needed
for HPM) and whose protected cores carry Camouflage shapers exposed as
:class:`ShaperHandle`s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.core.bins import BinConfiguration, MAX_CREDITS_PER_BIN
from repro.ga.genetic import GaConfig, GeneticAlgorithm, Genome
from repro.ga.mise import mise_slowdown
from repro.memctrl.schedulers import PriorityFrFcfsScheduler
from repro.sim.system import System


@dataclass(frozen=True)
class ShaperHandle:
    """One tunable shaper: a genome segment maps onto its bins."""

    name: str
    num_bins: int
    reconfigure: Callable[[BinConfiguration], None]


@dataclass(frozen=True)
class TunerConfig:
    """Online-tuning knobs (paper defaults: 20k-cycle children)."""

    epoch_cycles: int = 20000
    profile_cycles: int = 4000
    settle_cycles: int = 4096
    max_gene: int = 64
    population_size: int = 20
    generations: int = 20
    mutation_rate: float = 0.15
    crossover_rate: float = 0.8
    elite_count: int = 2

    def __post_init__(self) -> None:
        if self.epoch_cycles <= 0 or self.profile_cycles <= 0:
            raise ConfigurationError("cycle windows must be positive")
        if self.settle_cycles < 0:
            raise ConfigurationError("settle_cycles must be non-negative")
        if self.max_gene > MAX_CREDITS_PER_BIN:
            raise ConfigurationError(
                f"max_gene exceeds the 10-bit credit register "
                f"({self.max_gene} > {MAX_CREDITS_PER_BIN})"
            )


@dataclass
class TuningResult:
    """Outcome of one CONFIG phase."""

    best_genome: Genome
    best_fitness: float
    fitness_history: List[float] = field(default_factory=list)
    config_phase_cycles: int = 0


class OnlineGaTuner:
    """Drives the Figure 8 CONFIG phase against a live system."""

    def __init__(
        self,
        system: System,
        handles: Sequence[ShaperHandle],
        config: Optional[TunerConfig] = None,
        seed: int = 99,
        alone_ipcs: Optional[Sequence[float]] = None,
    ) -> None:
        """``alone_ipcs`` switches the objective from the online MISE
        estimate to direct average slowdown against pre-measured
        unshaped-alone IPCs.  MISE (the paper's online objective) is
        blind to slowdown the shapers themselves introduce — it
        compares highest-priority and shared *service rates*, which a
        tight config depresses equally — so experiments that already
        know the alone IPCs (Figure 13) get a sharper search by
        providing them.
        """
        if not handles:
            raise ConfigurationError("at least one shaper handle is required")
        if not isinstance(system.scheduler, PriorityFrFcfsScheduler):
            raise ConfigurationError(
                "online tuning needs a priority-capable scheduler "
                "(build the system with with_scheduler('priority'))"
            )
        self.system = system
        self.handles = list(handles)
        self.config = config or TunerConfig()
        self._rng = DeterministicRng(seed)
        self._alone_rates: List[float] = [0.0] * system.num_cores
        self._alone_ipcs = list(alone_ipcs) if alone_ipcs is not None else None
        if self._alone_ipcs is not None and len(
            self._alone_ipcs
        ) != system.num_cores:
            raise ConfigurationError("need one alone IPC per core")
        self._evaluations = 0
        # In-progress CONFIG phase (non-None only mid-tune): pickled
        # with the tuner by save_tuner so a checkpointed search resumes
        # at the generation it stopped after.
        self._ga: Optional[GeneticAlgorithm] = None
        self._tune_start_cycle = 0

    # -- genome mapping ----------------------------------------------------

    @property
    def genome_length(self) -> int:
        return sum(h.num_bins for h in self.handles)

    def apply_genome(self, genome: Genome) -> None:
        """Split the genome into per-shaper segments and install them."""
        if len(genome) != self.genome_length:
            raise ConfigurationError(
                f"genome length {len(genome)} != expected {self.genome_length}"
            )
        offset = 0
        for handle in self.handles:
            segment = list(genome[offset : offset + handle.num_bins])
            offset += handle.num_bins
            if sum(segment) == 0:
                # A dead shaper would deadlock its core; give the
                # largest bin one credit (slowest legal configuration).
                segment[-1] = 1
            handle.reconfigure(BinConfiguration(tuple(segment)))

    # -- measurement ---------------------------------------------------------

    def _measure_window(self, cycles: int):
        """Run ``cycles``; per-core (service_rate, alpha, ipc) deltas."""
        sys = self.system
        before_delivered = [sys.delivered_count(c) for c in range(sys.num_cores)]
        before_stall = [core.memory_stall_cycles for core in sys.cores]
        before_cycles = [core.cycles for core in sys.cores]
        before_retired = [core.retired_instructions for core in sys.cores]
        sys.run(cycles, stop_when_done=False)
        rates, alphas, ipcs = [], [], []
        for c in range(sys.num_cores):
            delivered = sys.delivered_count(c) - before_delivered[c]
            rates.append(delivered / cycles)
            active = sys.cores[c].cycles - before_cycles[c]
            stalls = sys.cores[c].memory_stall_cycles - before_stall[c]
            alphas.append(stalls / active if active else 0.0)
            retired = sys.cores[c].retired_instructions - before_retired[c]
            ipcs.append(retired / cycles)
        return rates, alphas, ipcs

    def _profile_alone_rates(self) -> None:
        """HPM pass: each core gets exclusive priority for a window."""
        scheduler = self.system.scheduler
        assert isinstance(scheduler, PriorityFrFcfsScheduler)
        for core_id in range(self.system.num_cores):
            scheduler.set_exclusive(core_id)
            rates, _alphas, _ipcs = self._measure_window(
                self.config.profile_cycles
            )
            self._alone_rates[core_id] = rates[core_id]
        scheduler.set_exclusive(None)

    def _evaluate(self, genome: Genome) -> float:
        """One child window: install, run, score by average slowdown."""
        if self._alone_ipcs is None and (
            self._evaluations % self.config.population_size == 0
        ):
            self._profile_alone_rates()
        self._evaluations += 1
        self.apply_genome(genome)
        if self.config.settle_cycles:
            # Let the new configuration reach steady state first: the
            # fake-traffic generator lags one replenishment period, so
            # measuring immediately flatters configurations whose fake
            # load has not arrived yet.
            self.system.run(self.config.settle_cycles, stop_when_done=False)
        rates, alphas, ipcs = self._measure_window(self.config.epoch_cycles)
        if self._alone_ipcs is not None:
            slowdowns = [
                alone / ipc if ipc > 0 else 1e6
                for alone, ipc in zip(self._alone_ipcs, ipcs)
                if alone > 0
            ]
        else:
            slowdowns = [
                mise_slowdown(alpha, alone, shared)
                for alpha, alone, shared in zip(
                    alphas, self._alone_rates, rates
                )
            ]
        return sum(slowdowns) / len(slowdowns)

    # -- entry point ---------------------------------------------------------------

    def tune(
        self,
        seed_genomes: Optional[Sequence[Genome]] = None,
        checkpoint_path: Optional[str] = None,
    ) -> TuningResult:
        """Run the CONFIG phase and install the winning configuration.

        ``checkpoint_path`` persists the whole tuner — live system, GA
        population, RNG streams, evaluation counters — after every
        generation (atomic snapshot envelope, kind ``"tuner"``).  A run
        killed mid-search restarts with :func:`resume_tuner` and calls
        :meth:`tune` again: the completed generations are not redone
        and ``seed_genomes`` is ignored, the search simply continues.
        """
        cfg = self.config
        if self._ga is None:
            self._ga = GeneticAlgorithm(
                GaConfig(
                    genome_length=self.genome_length,
                    max_gene=cfg.max_gene,
                    population_size=cfg.population_size,
                    generations=cfg.generations,
                    mutation_rate=cfg.mutation_rate,
                    crossover_rate=cfg.crossover_rate,
                    elite_count=cfg.elite_count,
                ),
                self._rng.fork(1),
            )
            self._ga.initialize(seed_genomes)
            self._tune_start_cycle = self.system.current_cycle
        ga = self._ga
        while not ga.done:
            ga.step(self._evaluate)
            if checkpoint_path:
                save_tuner(self, checkpoint_path)
        assert ga.best is not None
        best_genome, best_fitness = ga.best
        self.apply_genome(best_genome)
        result = TuningResult(
            best_genome=best_genome,
            best_fitness=best_fitness,
            fitness_history=list(ga.history),
            config_phase_cycles=(
                self.system.current_cycle - self._tune_start_cycle
            ),
        )
        self._ga = None  # CONFIG phase complete; next tune() starts fresh
        if checkpoint_path:
            # The final snapshot records the finished state (RUN-phase
            # ready), so a post-completion resume does not re-search.
            save_tuner(self, checkpoint_path)
        return result


def save_tuner(tuner: OnlineGaTuner, path: str) -> None:
    """Atomically snapshot a tuner (and its live system) to ``path``."""
    from repro.resilience.snapshot import KIND_TUNER, save_snapshot

    generation = tuner._ga.generation if tuner._ga is not None else -1
    save_snapshot(
        path, tuner, KIND_TUNER, tuner.system.current_cycle,
        extra_meta={"generation": generation},
    )


def resume_tuner(path: str) -> OnlineGaTuner:
    """Restore a tuner checkpoint written by :func:`save_tuner`."""
    from repro.resilience.snapshot import KIND_TUNER, load_snapshot

    tuner, _ = load_snapshot(path, expect_kind=KIND_TUNER)
    return tuner

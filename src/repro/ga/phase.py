"""Online program-phase detection for GA reconfiguration triggers.

The paper's online GA reconfigures "after a fixed amount of time or
after a program phase change" (section IV-C).  This module supplies
the phase-change signal: a windowed CUSUM-style detector over a core's
memory demand rate.

The detector is deliberately hardware-plausible: it needs one counter
(misses this window), an EWMA register, and a comparison — the kind of
logic that fits next to the shaper's credit registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class PhaseDetectorConfig:
    """Detection knobs.

    A phase change fires when the current window's demand deviates
    from the EWMA baseline by more than ``threshold_ratio`` (relative)
    *and* at least ``min_abs_delta`` events (absolute floor, so idle
    noise does not trigger), with a ``holdoff_windows`` refractory
    period after each detection while the EWMA re-converges.
    """

    window_cycles: int = 2048
    ewma_alpha: float = 0.25
    threshold_ratio: float = 0.6
    min_abs_delta: float = 4.0
    holdoff_windows: int = 2

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.threshold_ratio <= 0:
            raise ConfigurationError("threshold_ratio must be positive")
        if self.min_abs_delta < 0:
            raise ConfigurationError("min_abs_delta must be non-negative")
        if self.holdoff_windows < 0:
            raise ConfigurationError("holdoff_windows must be non-negative")


class PhaseDetector:
    """Streaming detector over per-window demand counts."""

    def __init__(self, config: Optional[PhaseDetectorConfig] = None) -> None:
        self.config = config or PhaseDetectorConfig()
        self._ewma: Optional[float] = None
        self._holdoff = 0
        self._window_count = 0
        self._next_boundary = self.config.window_cycles
        self.detections: List[int] = []  # cycles at which changes fired

    # -- event feed ------------------------------------------------------

    def note_demand(self) -> None:
        """One memory demand event in the current window."""
        self._window_count += 1

    def tick(self, cycle: int) -> bool:
        """Advance; returns True when a phase change fires this cycle."""
        fired = False
        while cycle >= self._next_boundary:
            fired |= self._close_window(self._next_boundary)
            self._next_boundary += self.config.window_cycles
        return fired

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next window boundary: the only cycle a detection can fire.

        Between boundaries the detector's observable state cannot
        change (``note_demand`` only bumps a counter read at the
        boundary), so this is a sound lower bound for the next-event
        engine (DESIGN.md §4).
        """
        return max(self._next_boundary, cycle)

    # -- internals -----------------------------------------------------------

    def _close_window(self, boundary_cycle: int) -> bool:
        count = float(self._window_count)
        self._window_count = 0
        cfg = self.config
        if self._ewma is None:
            self._ewma = count
            return False
        fired = False
        if self._holdoff > 0:
            self._holdoff -= 1
        else:
            baseline = self._ewma
            delta = abs(count - baseline)
            relative = delta / max(baseline, 1.0)
            if relative >= cfg.threshold_ratio and delta >= cfg.min_abs_delta:
                fired = True
                self.detections.append(boundary_cycle)
                self._holdoff = cfg.holdoff_windows
                # Snap the baseline to the new level immediately so the
                # same transition does not re-fire after the holdoff.
                self._ewma = count
        self._ewma = (
            cfg.ewma_alpha * count + (1.0 - cfg.ewma_alpha) * self._ewma
        )
        return fired

    @property
    def baseline(self) -> Optional[float]:
        """Current EWMA demand per window (None until the first closes)."""
        return self._ewma


def detect_phases_from_timestamps(
    timestamps, total_cycles: int,
    config: Optional[PhaseDetectorConfig] = None,
) -> List[int]:
    """Offline convenience: run the detector over an event timeline."""
    detector = PhaseDetector(config)
    events = sorted(timestamps)
    index = 0
    for cycle in range(0, total_cycles + 1):
        while index < len(events) and events[index] <= cycle:
            detector.note_demand()
            index += 1
        detector.tick(cycle)
    return list(detector.detections)

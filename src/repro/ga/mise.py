"""MISE slowdown estimation (Subramanian et al., HPCA 2013).

The paper's online GA scores bin configurations by *average slowdown*,
estimated with MISE's online model (section IV-C): an application's
execution time splits into a memory-stall fraction α and a compute
fraction (1 − α); only the stall fraction scales with memory service
rate, so

    slowdown = (1 − α) + α · (service_rate_alone / service_rate_shared)

where ``service_rate_alone`` is measured by briefly running the
application at highest priority in the memory scheduler (its requests
never wait behind others — a proxy for running alone).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class MiseMeasurement:
    """One profiling window's raw numbers for one application."""

    alpha: float
    service_rate_alone: float
    service_rate_shared: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0,1]: {self.alpha}")
        if self.service_rate_alone < 0 or self.service_rate_shared < 0:
            raise ConfigurationError("service rates must be non-negative")

    @property
    def slowdown(self) -> float:
        return mise_slowdown(
            self.alpha, self.service_rate_alone, self.service_rate_shared
        )


def mise_slowdown(
    alpha: float, service_rate_alone: float, service_rate_shared: float
) -> float:
    """MISE slowdown estimate; see module docstring.

    A zero shared rate with a non-zero alone rate means the shared
    window starved completely; the estimate saturates rather than
    dividing by zero so the GA can still rank such configurations
    (they score terribly, as they should).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in [0,1]: {alpha}")
    if service_rate_alone < 0 or service_rate_shared < 0:
        raise ConfigurationError("service rates must be non-negative")
    if service_rate_alone == 0:
        # The app issued no memory traffic: memory cannot slow it down.
        return 1.0
    if service_rate_shared == 0:
        return 1.0 + alpha * 1e6  # starved: effectively infinite
    ratio = service_rate_alone / service_rate_shared
    return (1.0 - alpha) + alpha * ratio

"""USIMM-style trace-driven out-of-order core.

Model summary (per cycle):

* **Fetch** — up to ``width`` instructions enter the instruction
  window, bounded by ``window_size``.  When the next instruction is a
  memory op it probes the cache hierarchy immediately (out-of-order
  issue): on-chip hits complete after the hit latency; LLC misses
  allocate an MSHR (merging same-line misses) and emit a
  :class:`~repro.memctrl.transaction.MemoryTransaction` into the
  request sink (the ReqC shaper, or the NoC when unshaped).  Fetch
  stalls when the window, the MSHR file, or the request sink is full.
* **Retire** — up to ``width`` instructions retire in order; a load
  blocks retirement until its fill arrives (stores retire once issued,
  as with a store buffer).

The ratio "cycles stalled on memory / total cycles" is exactly the α
of the MISE slowdown model the paper's genetic algorithm uses, so the
core tracks it natively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.cache.hierarchy import AccessOutcome, CacheHierarchy
from repro.cache.mshr import MshrFile
from repro.common.errors import ConfigurationError, ProtocolError
from repro.cpu.trace import MemoryTrace
from repro.memctrl.transaction import MemoryTransaction, TransactionType


@dataclass(frozen=True)
class CoreConfig:
    """Pipeline parameters (paper Table II defaults)."""

    width: int = 4
    window_size: int = 128
    mshr_entries: int = 8

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"width must be positive: {self.width}")
        if self.window_size < self.width:
            raise ConfigurationError("window must hold at least one fetch group")
        if self.mshr_entries <= 0:
            raise ConfigurationError("mshr_entries must be positive")


@dataclass
class _PendingLoad:
    """An in-window load: sequence number and completion cycle."""

    seq: int
    completion_cycle: Optional[int]  # None while waiting for a fill
    line_address: int


class Core:
    """One trace-driven core with private caches and MSHRs.

    The ``request_sink`` is any object with ``can_accept(core_id)`` and
    ``submit(txn, cycle)``; the system wires either a Camouflage
    request shaper or a plain NoC adapter here.
    """

    def __init__(
        self,
        core_id: int,
        trace: MemoryTrace,
        hierarchy: CacheHierarchy,
        request_sink,
        config: Optional[CoreConfig] = None,
    ) -> None:
        self.core_id = core_id
        self.config = config or CoreConfig()
        self.trace = trace
        self.hierarchy = hierarchy
        self.request_sink = request_sink
        self.mshrs = MshrFile(self.config.mshr_entries)

        # Trace cursor.
        self._record_index = 0
        self._trace_length = len(trace)
        self._nonmem_remaining = (
            trace[0].nonmem_insts if self._trace_length else 0
        )

        # Window state.
        self._seq_fetched = 0
        self._seq_retired = 0
        self._pending_loads: Deque[_PendingLoad] = deque()
        # Loads waiting for a fill, by line address.
        self._waiting_by_line: Dict[int, List[_PendingLoad]] = {}

        # Statistics.
        self.cycles = 0
        self.memory_stall_cycles = 0
        self.fetch_stall_cycles = 0
        self.finish_cycle: Optional[int] = None
        self.demand_requests = 0
        self.writeback_requests = 0

    # -- observers -------------------------------------------------------

    @property
    def done(self) -> bool:
        """All trace instructions fetched and retired."""
        return (
            self._record_index >= self._trace_length
            and self._seq_retired == self._seq_fetched
        )

    @property
    def retired_instructions(self) -> int:
        return self._seq_retired

    @property
    def window_occupancy(self) -> int:
        return self._seq_fetched - self._seq_retired

    @property
    def outstanding_misses(self) -> int:
        return len(self.mshrs)

    def ipc(self) -> float:
        """Retired instructions per cycle so far."""
        return self._seq_retired / self.cycles if self.cycles else 0.0

    def memory_stall_fraction(self) -> float:
        """MISE's α: fraction of cycles stalled on memory."""
        return self.memory_stall_cycles / self.cycles if self.cycles else 0.0

    # -- per-cycle operation ----------------------------------------------

    def tick(self, cycle: int) -> None:
        """Fetch and retire for one cycle."""
        if self.done:
            return
        self.cycles += 1
        self._fetch(cycle)
        self._retire(cycle)
        if self.done and self.finish_cycle is None:
            self.finish_cycle = cycle

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Next cycle this core's :meth:`tick` does more than stall.

        Contract for the next-event engine: returns ``cycle`` when the
        core would fetch, probe the caches or retire *this* cycle; a
        future cycle when its only pending event is a known completion
        (an on-chip hit latency expiring); ``None`` when it is done or
        blocked on an external fill.  In the latter two cases every
        skipped tick is pure bookkeeping replayed by :meth:`skip_idle`.
        """
        if self.done:
            return None
        if (
            self._record_index < self._trace_length
            and self.window_occupancy < self.config.window_size
        ):
            probe = self._compute_span_probe_cycle(cycle)
            if probe is not None:
                return probe
            # Fetch would do externally visible work: probe the
            # hierarchy (which mutates cache state even on a
            # structural stall, so it must happen every cycle).
            return cycle
        if self._pending_loads and self._pending_loads[0].seq == self._seq_retired:
            head = self._pending_loads[0]
            if head.completion_cycle is None:
                return None  # waiting on a memory fill
            return max(cycle, head.completion_cycle)
        if self._seq_retired < self._seq_fetched:
            return cycle  # head instructions can retire now
        return None

    def _compute_span_probe_cycle(self, cycle: int) -> Optional[int]:
        """Cycle of the next hierarchy probe during pure compute, if known.

        While the core is streaming non-memory instructions with no
        pending loads in the window and at least a full fetch group of
        window headroom, every tick deterministically fetches and
        retires exactly ``width`` instructions (occupancy is
        non-increasing, so the headroom guard holds for the whole
        span).  The next tick that touches shared state — the cache
        probe for the record's memory access — is therefore exactly
        ``nonmem_remaining // width`` ticks away.  Returns ``None``
        when the current cycle is not in that regime or the probe is
        due now.
        """
        if self._pending_loads or self._nonmem_remaining <= 0:
            return None
        if self.window_occupancy + self.config.width > self.config.window_size:
            return None
        ticks = self._nonmem_remaining // self.config.width
        if ticks <= 0:
            return None
        return cycle + ticks

    def skip_idle(self, cycle: int, target: int) -> None:
        """Replay ticks over ``[cycle, target)`` in closed form.

        Only legal when :meth:`next_event_cycle` stayed above ``target``
        for the whole span.  Two skippable regimes exist: pure compute
        (each tick fetches and retires exactly ``width`` non-memory
        instructions) and a retire stall on an incomplete head load
        (each tick counts one cycle and one memory-stall cycle).
        """
        if self.done or target <= cycle:
            return
        span = target - cycle
        if self._compute_span_probe_cycle(cycle) is not None:
            advanced = span * self.config.width
            self.cycles += span
            self._seq_fetched += advanced
            self._seq_retired += advanced
            self._nonmem_remaining -= advanced
            return
        self.cycles += span
        self.memory_stall_cycles += span

    def _fetch(self, cycle: int) -> None:
        budget = self.config.width
        while budget > 0 and self._record_index < self._trace_length:
            if self.window_occupancy >= self.config.window_size:
                return
            if self._nonmem_remaining > 0:
                take = min(
                    budget,
                    self._nonmem_remaining,
                    self.config.window_size - self.window_occupancy,
                )
                self._seq_fetched += take
                self._nonmem_remaining -= take
                budget -= take
                continue
            # Next instruction is the record's memory access.
            if not self._issue_memory_access(cycle):
                self.fetch_stall_cycles += 1
                return
            budget -= 1
            self._record_index += 1
            if self._record_index < self._trace_length:
                self._nonmem_remaining = self.trace[self._record_index].nonmem_insts

    def _issue_memory_access(self, cycle: int) -> bool:
        """Probe the caches for the current record; False ⇒ stall fetch."""
        record = self.trace[self._record_index]
        result = self.hierarchy.access(record.address, record.is_write)
        seq = self._seq_fetched
        if result.outcome is not AccessOutcome.MISS:
            if not record.is_write:
                self._pending_loads.append(
                    _PendingLoad(seq, cycle + result.latency, result.line_address)
                )
            self._seq_fetched += 1
            return True

        line = result.line_address
        existing = self.mshrs.lookup(line)
        if existing is not None:
            self.mshrs.merge(line, seq, record.is_write)
        else:
            if self.mshrs.is_full:
                return False
            if not self.request_sink.can_accept(self.core_id):
                return False
            self.mshrs.allocate(line, cycle, seq, record.is_write)
            txn = MemoryTransaction(
                core_id=self.core_id,
                address=line,
                kind=TransactionType.READ,
                created_cycle=cycle,
            )
            self.request_sink.submit(txn, cycle)
            self.demand_requests += 1
        if not record.is_write:
            load = _PendingLoad(seq, None, line)
            self._pending_loads.append(load)
            self._waiting_by_line.setdefault(line, []).append(load)
        self._seq_fetched += 1
        return True

    def _retire(self, cycle: int) -> None:
        budget = self.config.width
        while budget > 0 and self._seq_retired < self._seq_fetched:
            if self._pending_loads and self._pending_loads[0].seq == self._seq_retired:
                head = self._pending_loads[0]
                if head.completion_cycle is None or head.completion_cycle > cycle:
                    if budget == self.config.width:
                        self.memory_stall_cycles += 1
                    return
                self._pending_loads.popleft()
            self._seq_retired += 1
            budget -= 1

    # -- response handling -----------------------------------------------------

    def receive_fill(self, txn: MemoryTransaction, cycle: int) -> None:
        """A memory response arrived for this core.

        Fake transactions and write-backs carry no architectural state:
        they are dropped.  Demand fills release their MSHR entry, wake
        every load waiting on the line, and install the line into the
        caches (possibly generating write-back transactions, submitted
        through the same request sink as demand traffic).
        """
        if txn.core_id != self.core_id:
            raise ProtocolError(
                f"core {self.core_id} received a fill for core {txn.core_id}"
            )
        if txn.is_fake or txn.is_write:
            return
        line = txn.address
        entry = self.mshrs.release(line)
        for load in self._waiting_by_line.pop(line, []):
            load.completion_cycle = cycle
        writebacks = self.hierarchy.fill(line, entry.is_write)
        for victim_address in writebacks:
            self._emit_writeback(victim_address, cycle)

    def _emit_writeback(self, address: int, cycle: int) -> None:
        """Send a dirty victim to memory (best effort, buffered by sink)."""
        txn = MemoryTransaction(
            core_id=self.core_id,
            address=address,
            kind=TransactionType.WRITE,
            created_cycle=cycle,
        )
        if self.request_sink.can_accept(self.core_id):
            self.request_sink.submit(txn, cycle)
            self.writeback_requests += 1
        # A full sink drops the writeback: timing-wise this models an
        # eviction buffer absorbing it; the line's data payload is not
        # simulated so correctness is unaffected.

"""Instruction trace format for the trace-driven core.

A trace is a sequence of :class:`TraceRecord`s; each record is "run
``nonmem_insts`` non-memory instructions, then perform one memory
access".  This is the classic compressed format used by trace-driven
memory-system simulators (USIMM, SDSim's front end): the non-memory
portion only matters through its length, while every memory access is
explicit so the cache hierarchy sees the true address stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.common.errors import ConfigurationError, TraceFormatError


@dataclass(frozen=True)
class TraceRecord:
    """``nonmem_insts`` plain instructions followed by one memory op."""

    nonmem_insts: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.nonmem_insts < 0:
            raise ConfigurationError(
                f"nonmem_insts must be non-negative, got {self.nonmem_insts}"
            )
        if self.address < 0:
            raise ConfigurationError(f"negative address {self.address:#x}")

    @property
    def instruction_count(self) -> int:
        """Instructions this record contributes (non-memory + the access)."""
        return self.nonmem_insts + 1


class MemoryTrace:
    """An immutable sequence of trace records with summary accessors."""

    def __init__(self, records: Iterable[TraceRecord], name: str = "trace") -> None:
        self._records: List[TraceRecord] = list(records)
        self.name = name
        for index, record in enumerate(self._records):
            if not isinstance(record, TraceRecord):
                raise TraceFormatError(
                    f"trace {name!r} record {index + 1} is not a "
                    f"TraceRecord: {record!r}",
                    source=f"<records:{name}>", line=index + 1,
                )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        return tuple(self._records)

    @property
    def total_instructions(self) -> int:
        """Total instruction count across all records."""
        return sum(r.instruction_count for r in self._records)

    @property
    def memory_accesses(self) -> int:
        return len(self._records)

    @property
    def write_fraction(self) -> float:
        if not self._records:
            return 0.0
        return sum(1 for r in self._records if r.is_write) / len(self._records)

    def mpki(self) -> float:
        """Memory accesses per kilo-instruction (intensity summary)."""
        insts = self.total_instructions
        return 1000.0 * self.memory_accesses / insts if insts else 0.0

    def truncated(self, max_accesses: int) -> "MemoryTrace":
        """A prefix of this trace with at most ``max_accesses`` records."""
        return MemoryTrace(self._records[:max_accesses], name=self.name)

    def repeated(self, times: int) -> "MemoryTrace":
        """This trace concatenated with itself ``times`` times."""
        if times <= 0:
            raise ConfigurationError(f"repeat count must be positive: {times}")
        return MemoryTrace(self._records * times, name=self.name)

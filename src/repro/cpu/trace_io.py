"""Trace persistence: save and load traces as portable text files.

Format (one record per line, ``#`` comments allowed)::

    # repro-trace v1 name=mcf
    12 0x7f3a40 R
    0 0x7f3a80 W

Files ending in ``.gz`` are transparently gzip-compressed.  The format
is deliberately trivial so traces captured from other tools (Pin,
DynamoRIO, gem5 scripts) can be converted with a one-liner and driven
through this simulator.
"""

from __future__ import annotations

import gzip
import io
import zlib
from pathlib import Path
from typing import Union

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.cpu.trace import MemoryTrace, TraceRecord

_HEADER_PREFIX = "# repro-trace v1"


def _open(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="ascii")
    return open(path, mode, encoding="ascii")


def save_trace(trace: MemoryTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzip if the name ends in .gz)."""
    path = Path(path)
    with _open(path, "w") as handle:
        handle.write(f"{_HEADER_PREFIX} name={trace.name}\n")
        for record in trace:
            kind = "W" if record.is_write else "R"
            handle.write(
                f"{record.nonmem_insts} {record.address:#x} {kind}\n"
            )


def load_trace(path: Union[str, Path]) -> MemoryTrace:
    """Read a trace previously written by :func:`save_trace`.

    Raises :class:`~repro.common.errors.TraceFormatError` (a
    :class:`~repro.common.errors.ConfigurationError` subclass) on any
    malformed line, carrying the file path and 1-based line number as
    ``source``/``line`` attributes; undecodable or corrupt-gzip files
    fail the same way with ``line=0``.
    """
    path = Path(path)
    source = str(path)
    name = path.stem
    records = []
    try:
        with _open(path, "r") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if line.startswith(_HEADER_PREFIX):
                        for token in line.split():
                            if token.startswith("name="):
                                name = token[len("name="):]
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise TraceFormatError(
                        f"{path}:{line_number}: expected "
                        f"'<gap> <address> <R|W>', got {line!r}",
                        source=source, line=line_number,
                    )
                gap_text, address_text, kind = parts
                if kind not in ("R", "W"):
                    raise TraceFormatError(
                        f"{path}:{line_number}: access kind must be R or W, "
                        f"got {kind!r}",
                        source=source, line=line_number,
                    )
                try:
                    gap = int(gap_text)
                    address = int(address_text, 0)
                except ValueError as error:
                    raise TraceFormatError(
                        f"{path}:{line_number}: {error}",
                        source=source, line=line_number,
                    ) from None
                try:
                    record = TraceRecord(
                        nonmem_insts=gap, address=address,
                        is_write=kind == "W",
                    )
                except ConfigurationError as error:
                    # TraceRecord's own range checks (negative gap or
                    # address), re-raised with the file/line context the
                    # record constructor cannot know.
                    raise TraceFormatError(
                        f"{path}:{line_number}: {error}",
                        source=source, line=line_number,
                    ) from None
                records.append(record)
    except (
        UnicodeDecodeError, gzip.BadGzipFile, zlib.error, EOFError,
    ) as error:
        raise TraceFormatError(
            f"{path}: not a readable trace file: {error}", source=source
        ) from None
    return MemoryTrace(records, name=name)


def trace_to_string(trace: MemoryTrace) -> str:
    """The text-format serialization as a string (for tests/pipes)."""
    buffer = io.StringIO()
    buffer.write(f"{_HEADER_PREFIX} name={trace.name}\n")
    for record in trace:
        kind = "W" if record.is_write else "R"
        buffer.write(f"{record.nonmem_insts} {record.address:#x} {kind}\n")
    return buffer.getvalue()

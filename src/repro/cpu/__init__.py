"""Trace-driven out-of-order core model.

A USIMM-style approximation of the paper's 4-wide, 128-entry-window
core (Table II): instructions enter a fixed-size window at fetch width,
memory instructions probe the cache hierarchy as they enter, loads
block retirement until their line returns, and the MSHR file bounds
memory-level parallelism.  This captures what matters for the timing
channel — how memory latency turns into program slowdown — without
simulating a full pipeline.
"""

from repro.cpu.core import Core, CoreConfig
from repro.cpu.trace import MemoryTrace, TraceRecord

__all__ = ["Core", "CoreConfig", "MemoryTrace", "TraceRecord"]

"""Two-level private cache hierarchy (L1 + L2/LLC).

The hierarchy answers one question for the core: *does this access hit
on chip, and if so with what latency?*  On an L2 miss the caller is
handed the line address to turn into a memory transaction; dirty
victims produce write-back transactions.  Inclusive allocation: fills
install into both levels (L1 victims that are dirty are absorbed by
writing them into L2 rather than memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.cache.cache import CacheConfig, SetAssociativeCache


class AccessOutcome(Enum):
    """Where in the hierarchy an access was satisfied."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"
    MISS = "miss"


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes and latencies for the two levels (paper Table II defaults)."""

    l1: CacheConfig = CacheConfig(size_bytes=32 * 1024, ways=4)
    l2: CacheConfig = CacheConfig(size_bytes=128 * 1024, ways=8)
    l1_latency: int = 1
    l2_latency: int = 8


@dataclass(frozen=True)
class HierarchyAccess:
    """Result of one access: outcome, on-chip latency, write-backs."""

    outcome: AccessOutcome
    latency: int
    line_address: int
    writebacks: tuple = ()


class CacheHierarchy:
    """Private L1 + L2 for one core."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        if self.config.l1.line_bytes != self.config.l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        self.l1 = SetAssociativeCache(self.config.l1)
        self.l2 = SetAssociativeCache(self.config.l2)

    def line_address(self, address: int) -> int:
        return self.l2.line_address(address)

    def access(self, address: int, is_write: bool) -> HierarchyAccess:
        """Probe L1 then L2.

        A MISS outcome means the caller must fetch the line from
        memory (allocating an MSHR and later calling :meth:`fill`).
        An L2 hit promotes the line into L1, possibly evicting an L1
        victim into L2 (absorbed on chip, no memory traffic).
        """
        line = self.line_address(address)
        if self.l1.access(line, is_write):
            return HierarchyAccess(AccessOutcome.L1_HIT,
                                   self.config.l1_latency, line)
        if self.l2.access(line, is_write):
            victim = self.l1.fill(line, dirty=is_write)
            if victim is not None and victim.dirty:
                self.l2.fill(victim.address, dirty=True)
            return HierarchyAccess(AccessOutcome.L2_HIT,
                                   self.config.l2_latency, line)
        return HierarchyAccess(AccessOutcome.MISS, 0, line)

    def fill(self, line_address: int, is_write: bool) -> List[int]:
        """Install a fetched line into L2 and L1.

        Returns the addresses of dirty L2 victims that must be written
        back to memory.
        """
        writebacks: List[int] = []
        l2_victim = self.l2.fill(line_address, dirty=is_write)
        if l2_victim is not None:
            if l2_victim.dirty:
                writebacks.append(l2_victim.address)
            # Inclusion: a line leaving L2 must leave L1 too.
            self.l1.invalidate(l2_victim.address)
        l1_victim = self.l1.fill(line_address, dirty=is_write)
        if l1_victim is not None and l1_victim.dirty:
            absorbed = self.l2.fill(l1_victim.address, dirty=True)
            if absorbed is not None:
                if absorbed.dirty:
                    writebacks.append(absorbed.address)
                self.l1.invalidate(absorbed.address)
        return writebacks

    @property
    def llc_miss_count(self) -> int:
        return self.l2.misses

    @property
    def llc_access_count(self) -> int:
        return self.l2.hits + self.l2.misses

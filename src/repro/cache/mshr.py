"""Miss Status Holding Registers.

The MSHR file bounds memory-level parallelism (8 entries per core in
the paper's Table II) and merges concurrent misses to the same line so
only one memory transaction is sent.  When the file is full the core
must stall — one of the two stall sources in the core model (the other
is the instruction window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError, ProtocolError


@dataclass
class MshrEntry:
    """One outstanding line miss and the instructions waiting on it."""

    line_address: int
    allocated_cycle: int
    is_write: bool
    waiting_instructions: List[int] = field(default_factory=list)

    def merge(self, instruction_seq: int, is_write: bool) -> None:
        """Fold another miss to the same line into this entry."""
        self.waiting_instructions.append(instruction_seq)
        self.is_write = self.is_write or is_write


class MshrFile:
    """Fixed-capacity MSHR file with same-line merging."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"MSHR capacity must be positive: {capacity}")
        self._capacity = capacity
        self._entries: Dict[int, MshrEntry] = {}
        self.allocations = 0
        self.merges = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self._capacity

    def lookup(self, line_address: int) -> Optional[MshrEntry]:
        return self._entries.get(line_address)

    def oldest_allocation_cycle(self) -> Optional[int]:
        """Allocation cycle of the oldest outstanding miss, if any."""
        if not self._entries:
            return None
        return min(e.allocated_cycle for e in self._entries.values())

    def allocate(
        self, line_address: int, cycle: int, instruction_seq: int, is_write: bool
    ) -> MshrEntry:
        """Allocate a new entry (caller must have checked ``is_full``)."""
        if line_address in self._entries:
            raise ProtocolError(
                f"allocate for line {line_address:#x} that already has an entry"
            )
        if self.is_full:
            raise ProtocolError("allocate into a full MSHR file")
        entry = MshrEntry(
            line_address=line_address,
            allocated_cycle=cycle,
            is_write=is_write,
            waiting_instructions=[instruction_seq],
        )
        self._entries[line_address] = entry
        self.allocations += 1
        return entry

    def merge(self, line_address: int, instruction_seq: int, is_write: bool) -> None:
        """Attach an instruction to an existing entry for its line."""
        entry = self._entries.get(line_address)
        if entry is None:
            raise ProtocolError(f"merge into missing entry {line_address:#x}")
        entry.merge(instruction_seq, is_write)
        self.merges += 1

    def release(self, line_address: int) -> MshrEntry:
        """Free the entry when its fill arrives; returns the entry."""
        entry = self._entries.pop(line_address, None)
        if entry is None:
            raise ProtocolError(
                f"release of line {line_address:#x} with no MSHR entry"
            )
        return entry

    def outstanding_lines(self) -> List[int]:
        return list(self._entries.keys())

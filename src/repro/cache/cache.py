"""Set-associative cache with true-LRU replacement.

The model tracks tags and dirty bits only (no data payloads — the
simulator is timing-oriented).  Replacement is true LRU per set,
implemented with an ordered dict per set so both hit promotion and
victim selection are O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.util import is_power_of_two, log2_int


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("size_bytes", "ways", "line_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if not is_power_of_two(self.line_bytes):
            raise ConfigurationError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class EvictedLine:
    """A victim line pushed out by a fill."""

    address: int
    dirty: bool


class SetAssociativeCache:
    """Tag store of one cache level with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._offset_bits = log2_int(config.line_bytes)
        self._index_bits = log2_int(config.num_sets)
        # Per set: OrderedDict mapping tag -> dirty flag; order = LRU
        # (first item is least recently used).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    # -- address helpers --------------------------------------------------

    def line_address(self, address: int) -> int:
        """The address of the line containing ``address``."""
        return address & ~(self.config.line_bytes - 1)

    def _split(self, address: int):
        line = address >> self._offset_bits
        index = line & (self.config.num_sets - 1)
        tag = line >> self._index_bits
        return index, tag

    def _rebuild(self, index: int, tag: int) -> int:
        line = (tag << self._index_bits) | index
        return line << self._offset_bits

    # -- operations ---------------------------------------------------------

    def lookup(self, address: int) -> bool:
        """Non-destructive presence check (no LRU update)."""
        index, tag = self._split(address)
        return tag in self._sets[index]

    def access(self, address: int, is_write: bool) -> bool:
        """Access a line; returns True on hit (and promotes to MRU)."""
        index, tag = self._split(address)
        entries = self._sets[index]
        if tag in entries:
            entries.move_to_end(tag)
            if is_write:
                entries[tag] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, address: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line; returns the evicted victim, if any.

        Filling a line that is already resident just refreshes its LRU
        position (and ORs in the dirty bit), which can happen when two
        misses to the same line raced in the MSHR file.
        """
        index, tag = self._split(address)
        entries = self._sets[index]
        victim: Optional[EvictedLine] = None
        if tag in entries:
            entries[tag] = entries[tag] or dirty
            entries.move_to_end(tag)
            return None
        if len(entries) >= self.config.ways:
            victim_tag, victim_dirty = entries.popitem(last=False)
            victim = EvictedLine(
                address=self._rebuild(index, victim_tag), dirty=victim_dirty
            )
            self.evictions += 1
            if victim_dirty:
                self.writebacks += 1
        entries[tag] = dirty
        return victim

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns whether it was resident."""
        index, tag = self._split(address)
        return self._sets[index].pop(tag, None) is not None

    def resident_lines(self) -> int:
        """Total lines currently cached (for occupancy assertions)."""
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

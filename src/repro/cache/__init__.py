"""Cache hierarchy substrate: set-associative caches, MSHRs, L1+L2.

Per-core private L1 (32 KB, 4-way) and L2/LLC (128 KB, 8-way) with
write-back/write-allocate policy and an 8-entry MSHR file, matching the
paper's Table II.  The hierarchy filters the core's access stream down
to the LLC misses that become memory transactions — the traffic
Camouflage shapes.
"""

from repro.cache.cache import CacheConfig, EvictedLine, SetAssociativeCache
from repro.cache.hierarchy import AccessOutcome, CacheHierarchy, HierarchyConfig
from repro.cache.mshr import MshrEntry, MshrFile

__all__ = [
    "AccessOutcome",
    "CacheConfig",
    "CacheHierarchy",
    "EvictedLine",
    "HierarchyConfig",
    "MshrEntry",
    "MshrFile",
    "SetAssociativeCache",
]

"""Parameterized synthetic memory-trace generation.

The generator produces :class:`~repro.cpu.trace.MemoryTrace`s from a
small set of interpretable knobs:

* **Intensity** — mean non-memory instructions between accesses
  (``gap_mean``); MPKI = 1000 / (gap_mean + 1).
* **Burstiness** — a two-state (ON/OFF) Markov modulation of the gap:
  in OFF state gaps stretch by ``off_gap_multiplier``.  This produces
  the bursty phase behaviour that the covert channel exploits and that
  distinguishes e.g. apache from a steady streamer.
* **Spatial locality** — with probability ``seq_prob`` the next access
  is the next cache line (row-buffer friendly streaming); otherwise it
  jumps uniformly inside the working set (row-buffer hostile pointer
  chasing).
* **Working set** — addresses are confined to ``working_set_bytes``
  above a per-trace base; sets larger than the LLC produce memory
  traffic, smaller ones get filtered on chip.

All draws come from a :class:`~repro.common.rng.DeterministicRng`, so
a (parameters, seed) pair is a complete, reproducible workload
description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.cpu.trace import MemoryTrace, TraceRecord


@dataclass(frozen=True)
class TraceParameters:
    """Knobs of the synthetic generator (see module docstring)."""

    gap_mean: float = 100.0
    seq_prob: float = 0.5
    working_set_bytes: int = 4 * 1024 * 1024
    write_fraction: float = 0.25
    p_enter_off: float = 0.02
    p_exit_off: float = 0.1
    off_gap_multiplier: float = 8.0
    line_bytes: int = 64
    base_address: int = 0

    def __post_init__(self) -> None:
        if self.gap_mean < 0:
            raise ConfigurationError("gap_mean must be non-negative")
        for name in ("seq_prob", "write_fraction", "p_enter_off", "p_exit_off"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be a probability: {value}")
        if self.working_set_bytes < self.line_bytes:
            raise ConfigurationError("working set smaller than one line")
        if self.off_gap_multiplier < 1.0:
            raise ConfigurationError("off_gap_multiplier must be >= 1")

    @property
    def mpki(self) -> float:
        """Approximate memory accesses per kilo-instruction."""
        return 1000.0 / (self.gap_mean + 1.0)

    @property
    def working_set_lines(self) -> int:
        return self.working_set_bytes // self.line_bytes


class SyntheticTraceGenerator:
    """Stateful generator producing one reproducible trace."""

    def __init__(self, params: TraceParameters, rng: DeterministicRng) -> None:
        self.params = params
        self._rng = rng
        self._pointer = self._random_line()
        self._in_off_state = False

    def _random_line(self) -> int:
        line = self._rng.randint(0, self.params.working_set_lines - 1)
        return self.params.base_address + line * self.params.line_bytes

    def _next_gap(self) -> int:
        mean = self.params.gap_mean
        if self._in_off_state:
            mean *= self.params.off_gap_multiplier
        if mean <= 0:
            return 0
        # Geometric gaps give an exponential-like inter-access pattern
        # with integer support, matching miss-gap measurements from
        # real traces far better than a constant.
        p = 1.0 / (mean + 1.0)
        return self._rng.geometric(p) - 1

    def _advance_markov(self) -> None:
        if self._in_off_state:
            if self._rng.random() < self.params.p_exit_off:
                self._in_off_state = False
        else:
            if self._rng.random() < self.params.p_enter_off:
                self._in_off_state = True

    def _next_address(self) -> int:
        p = self.params
        if self._rng.random() < p.seq_prob:
            self._pointer += p.line_bytes
            limit = p.base_address + p.working_set_bytes
            if self._pointer >= limit:
                self._pointer = p.base_address
        else:
            self._pointer = self._random_line()
        return self._pointer

    def record(self) -> TraceRecord:
        """Generate the next trace record."""
        self._advance_markov()
        return TraceRecord(
            nonmem_insts=self._next_gap(),
            address=self._next_address(),
            is_write=self._rng.random() < self.params.write_fraction,
        )

    def trace(self, num_accesses: int, name: str = "synthetic") -> MemoryTrace:
        """Generate a complete trace of ``num_accesses`` memory ops."""
        if num_accesses <= 0:
            raise ConfigurationError("num_accesses must be positive")
        return MemoryTrace(
            (self.record() for _ in range(num_accesses)), name=name
        )

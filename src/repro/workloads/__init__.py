"""Workload and trace generation.

The paper drives SDSim with SPECInt-2006 and Apache traces captured
via GEM5; those toolchains are unavailable offline, so this package
provides *parameterized synthetic equivalents* (documented substitution
— DESIGN.md section 2): each named benchmark maps to a
:class:`BenchmarkProfile` whose memory intensity, burstiness, spatial
locality and working-set size are chosen to preserve the qualitative
ordering the paper's evaluation depends on (mcf ≫ astar in intensity,
libquantum streaming, sjeng compute-bound, …).

Also here: the covert-channel sender of the paper's Algorithm 1, which
encodes a key in memory-traffic bursts.
"""

from repro.workloads.covert import CovertChannelConfig, covert_sender_trace
from repro.workloads.phased import (
    Phase,
    PhasedTraceGenerator,
    two_phase_trace,
)
from repro.workloads.spec import (
    BENCHMARK_NAMES,
    BenchmarkProfile,
    benchmark_profile,
    make_trace,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, TraceParameters

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkProfile",
    "CovertChannelConfig",
    "Phase",
    "PhasedTraceGenerator",
    "SyntheticTraceGenerator",
    "TraceParameters",
    "benchmark_profile",
    "covert_sender_trace",
    "make_trace",
    "two_phase_trace",
]

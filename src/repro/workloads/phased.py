"""Phase-structured workloads.

Real programs move through phases — gcc parses then optimizes, a web
server alternates idle and burst periods — and the paper leans on this
twice: phases are what a bus observer infers (Figure 4's key leak is a
phase pattern), and the online GA "reconfigures the request/response
hardware bins after a fixed amount of time or after a program phase
change" (section IV-C).

:class:`PhasedTraceGenerator` concatenates segments, each drawn from
its own :class:`~repro.workloads.synthetic.TraceParameters`, producing
traces whose memory intensity shifts at known boundaries — ground
truth for the phase detector in :mod:`repro.ga.phase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.cpu.trace import MemoryTrace, TraceRecord
from repro.workloads.synthetic import SyntheticTraceGenerator, TraceParameters


@dataclass(frozen=True)
class Phase:
    """One program phase: generator parameters plus its length."""

    params: TraceParameters
    accesses: int

    def __post_init__(self) -> None:
        if self.accesses <= 0:
            raise ConfigurationError("phase must contain accesses")


class PhasedTraceGenerator:
    """Concatenate per-phase synthetic segments into one trace."""

    def __init__(self, phases: Sequence[Phase], rng: DeterministicRng) -> None:
        if not phases:
            raise ConfigurationError("at least one phase is required")
        self.phases = list(phases)
        self._rng = rng

    def trace(self, name: str = "phased") -> MemoryTrace:
        records: List[TraceRecord] = []
        for index, phase in enumerate(self.phases):
            generator = SyntheticTraceGenerator(
                phase.params, self._rng.fork(index)
            )
            records.extend(
                generator.record() for _ in range(phase.accesses)
            )
        return MemoryTrace(records, name=name)

    def boundaries(self) -> List[int]:
        """Record indices at which a new phase starts (excluding 0)."""
        out, total = [], 0
        for phase in self.phases[:-1]:
            total += phase.accesses
            out.append(total)
        return out


def two_phase_trace(
    quiet_gap: float = 300.0,
    busy_gap: float = 30.0,
    accesses_per_phase: int = 1500,
    repeats: int = 2,
    seed: int = 7,
    working_set_bytes: int = 8 * 1024 * 1024,
    base_address: int = 0,
) -> Tuple[MemoryTrace, List[int]]:
    """A quiet/busy alternation — the classic phase benchmark.

    Returns the trace and the ground-truth phase boundaries (record
    indices).
    """
    quiet = TraceParameters(
        gap_mean=quiet_gap, working_set_bytes=working_set_bytes,
        base_address=base_address, p_enter_off=0.0,
    )
    busy = TraceParameters(
        gap_mean=busy_gap, working_set_bytes=working_set_bytes,
        base_address=base_address, p_enter_off=0.0,
    )
    phases = []
    for _ in range(repeats):
        phases.append(Phase(quiet, accesses_per_phase))
        phases.append(Phase(busy, accesses_per_phase))
    generator = PhasedTraceGenerator(phases, DeterministicRng(seed))
    return generator.trace(name="two-phase"), generator.boundaries()

"""SPEC-2006-like benchmark profiles (documented substitution).

The paper evaluates SPECInt 2006 plus the Apache web server.  Real
traces require proprietary suites and a GEM5 toolchain, so each name
maps to a :class:`BenchmarkProfile` — synthetic-generator parameters
chosen from published characterizations of the suite:

* **Intensity ordering** (approximate LLC-MPKI from the SPEC2006
  characterization literature): mcf ≫ libquantum > omnetpp > astar >
  apache > bzip2 > gcc > hmmer > gobmk > sjeng ≈ h264ref.  The paper's
  experiments lean on exactly this contrast (mcf as the intense
  co-runner, astar as the moderate one).
* **Access style**: libquantum streams sequentially (row-buffer
  friendly); mcf and omnetpp pointer-chase (row-buffer hostile); the
  rest sit between.
* **Burstiness**: apache serves requests in bursts (strong ON/OFF);
  gcc alternates between parse and optimize phases.

These preserve the *relative* behaviours the evaluation's conclusions
rest on; absolute cycle counts are not comparable to the paper's
testbed (see DESIGN.md section 2).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.cpu.trace import MemoryTrace
from repro.workloads.synthetic import SyntheticTraceGenerator, TraceParameters

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """A named workload: generator parameters plus provenance notes."""

    name: str
    params: TraceParameters
    notes: str


_PROFILES = {
    "astar": BenchmarkProfile(
        name="astar",
        params=TraceParameters(
            gap_mean=100.0, seq_prob=0.35, working_set_bytes=8 * MB,
            write_fraction=0.25, p_enter_off=0.02, p_exit_off=0.08,
            off_gap_multiplier=6.0,
        ),
        notes="path-finding: moderate intensity, mixed locality; the "
              "paper's 'application under protection' with lower traffic",
    ),
    "mcf": BenchmarkProfile(
        name="mcf",
        params=TraceParameters(
            gap_mean=36.0, seq_prob=0.10, working_set_bytes=64 * MB,
            write_fraction=0.30, p_enter_off=0.005, p_exit_off=0.2,
            off_gap_multiplier=3.0,
        ),
        notes="network simplex: the most memory-intensive SPECint, "
              "pointer chasing, huge working set; gap calibrated so a "
              "3-copy mix heavily loads but does not hard-saturate one "
              "DDR3 channel, as in the paper's testbed",
    ),
    "bzip": BenchmarkProfile(
        name="bzip",
        params=TraceParameters(
            gap_mean=160.0, seq_prob=0.60, working_set_bytes=4 * MB,
            write_fraction=0.35, p_enter_off=0.03, p_exit_off=0.10,
            off_gap_multiplier=5.0,
        ),
        notes="compression: block-structured streaming with sort jumps",
    ),
    "gcc": BenchmarkProfile(
        name="gcc",
        params=TraceParameters(
            gap_mean=200.0, seq_prob=0.50, working_set_bytes=2 * MB,
            write_fraction=0.30, p_enter_off=0.05, p_exit_off=0.05,
            off_gap_multiplier=10.0,
        ),
        notes="compiler: strongly phased (parse vs optimize) traffic",
    ),
    "h264ref": BenchmarkProfile(
        name="h264ref",
        params=TraceParameters(
            gap_mean=650.0, seq_prob=0.80, working_set_bytes=1 * MB,
            write_fraction=0.20, p_enter_off=0.02, p_exit_off=0.15,
            off_gap_multiplier=4.0,
        ),
        notes="video encoder: compute-bound, high locality on frames",
    ),
    "gobmk": BenchmarkProfile(
        name="gobmk",
        params=TraceParameters(
            gap_mean=480.0, seq_prob=0.40, working_set_bytes=1 * MB,
            write_fraction=0.25, p_enter_off=0.03, p_exit_off=0.10,
            off_gap_multiplier=5.0,
        ),
        notes="Go engine: branchy compute with small board state",
    ),
    "omnetpp": BenchmarkProfile(
        name="omnetpp",
        params=TraceParameters(
            gap_mean=48.0, seq_prob=0.20, working_set_bytes=16 * MB,
            write_fraction=0.35, p_enter_off=0.01, p_exit_off=0.2,
            off_gap_multiplier=3.0,
        ),
        notes="discrete-event sim: intense, heap-pointer chasing",
    ),
    "hmmer": BenchmarkProfile(
        name="hmmer",
        params=TraceParameters(
            gap_mean=320.0, seq_prob=0.70, working_set_bytes=512 * KB,
            write_fraction=0.30, p_enter_off=0.02, p_exit_off=0.15,
            off_gap_multiplier=4.0,
        ),
        notes="profile HMM search: regular table sweeps, mostly cached",
    ),
    "libquantum": BenchmarkProfile(
        name="libquantum",
        params=TraceParameters(
            gap_mean=38.0, seq_prob=0.95, working_set_bytes=32 * MB,
            write_fraction=0.40, p_enter_off=0.005, p_exit_off=0.3,
            off_gap_multiplier=2.0,
        ),
        notes="quantum sim: pure streaming over a large vector — the "
              "row-buffer-friendliest workload in the suite",
    ),
    "sjeng": BenchmarkProfile(
        name="sjeng",
        params=TraceParameters(
            gap_mean=650.0, seq_prob=0.30, working_set_bytes=512 * KB,
            write_fraction=0.25, p_enter_off=0.04, p_exit_off=0.10,
            off_gap_multiplier=6.0,
        ),
        notes="chess engine: compute-bound, hash-table scatter",
    ),
    "apache": BenchmarkProfile(
        name="apache",
        params=TraceParameters(
            gap_mean=120.0, seq_prob=0.50, working_set_bytes=8 * MB,
            write_fraction=0.30, p_enter_off=0.10, p_exit_off=0.08,
            off_gap_multiplier=12.0,
        ),
        notes="web server: strongly bursty request handling (ON/OFF)",
    ),
}

#: The paper's 11 evaluated applications, in figure order.
BENCHMARK_NAMES = (
    "astar", "bzip", "gcc", "h264ref", "gobmk", "libquantum",
    "sjeng", "mcf", "hmmer", "omnetpp", "apache",
)

#: Short display aliases used by some paper figures (libqt = libquantum).
_ALIASES = {"libqt": "libquantum", "bzip2": "bzip"}


def benchmark_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (aliases accepted)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _PROFILES[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def make_trace(
    name: str,
    num_accesses: int = 4000,
    seed: int = 1,
    base_address: int = 0,
) -> MemoryTrace:
    """Generate a reproducible trace for a named benchmark.

    ``base_address`` separates co-running instances' address spaces so
    they do not accidentally share cache lines (each VM has its own
    physical allocation in the paper's setting).
    """
    if num_accesses <= 0:
        raise ConfigurationError(
            f"num_accesses must be positive: {num_accesses}"
        )
    if base_address < 0:
        raise ConfigurationError(
            f"base_address must be non-negative: {base_address:#x}"
        )
    profile = benchmark_profile(name)
    params = profile.params
    if base_address:
        params = TraceParameters(
            gap_mean=params.gap_mean,
            seq_prob=params.seq_prob,
            working_set_bytes=params.working_set_bytes,
            write_fraction=params.write_fraction,
            p_enter_off=params.p_enter_off,
            p_exit_off=params.p_exit_off,
            off_gap_multiplier=params.off_gap_multiplier,
            line_bytes=params.line_bytes,
            base_address=base_address,
        )
    # zlib.crc32 is stable across processes (unlike built-in hash()).
    rng = DeterministicRng(seed).fork(zlib.crc32(profile.name.encode()))
    generator = SyntheticTraceGenerator(params, rng)
    return generator.trace(num_accesses, name=profile.name)

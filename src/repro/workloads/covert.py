"""Covert-channel sender — the paper's Algorithm 1.

The malicious program walks a secret key bit by bit.  For each **1**
bit it generates memory traffic for a fixed PULSE duration by writing
successive cache lines of a large buffer (guaranteed misses — the
buffer exceeds the LLC and the walk never revisits a line within one
pass); for each **0** bit it busy-waits for the same duration.  A
receiver observing the memory bus (or its own response latencies)
recovers the key from the bandwidth envelope.

This module produces the *trace* equivalent: ``1`` bits become runs of
closely spaced writes to consecutive lines, ``0`` bits become long
non-memory stretches (modelled as pure compute instructions touching a
single L1-resident line, so zero memory traffic is generated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.common.errors import ConfigurationError
from repro.cpu.trace import MemoryTrace, TraceRecord

MB = 1024 * 1024


@dataclass(frozen=True)
class CovertChannelConfig:
    """Timing parameters of the sender.

    ``pulse_cycles`` is the per-bit signalling duration (PULSE in
    Algorithm 1); ``access_gap_insts`` spaces the writes inside a
    1-pulse; ``width`` is the core's retire width, needed to convert
    idle cycles into non-memory instruction counts.

    The real sender paces itself by reading the clock ("while
    ElapsedTime < PULSE"), so its pulses always stay wall-clock
    aligned.  A fixed trace cannot re-check the clock, so the default
    ``access_gap_insts`` is chosen high enough that the miss stream
    stays below the memory system's sustainable rate — otherwise
    queueing stretches the 1-pulses and the bit boundaries drift.
    """

    pulse_cycles: int = 12000
    access_gap_insts: int = 64
    width: int = 4
    line_bytes: int = 64
    buffer_bytes: int = 16 * MB
    base_address: int = 1 << 32  # far from any co-runner's working set

    def __post_init__(self) -> None:
        if self.pulse_cycles <= 0:
            raise ConfigurationError("pulse_cycles must be positive")
        if self.access_gap_insts < 0:
            raise ConfigurationError("access_gap_insts must be non-negative")
        if self.width <= 0:
            raise ConfigurationError("width must be positive")
        if self.buffer_bytes < self.line_bytes:
            raise ConfigurationError("buffer smaller than one line")

    @property
    def accesses_per_pulse(self) -> int:
        """Writes emitted during one '1' pulse.

        Each access record carries ``access_gap_insts`` non-memory
        instructions retiring at ``width``/cycle, so one record spans
        roughly ``access_gap_insts / width`` cycles of compute.
        """
        cycles_per_access = max(1, self.access_gap_insts // self.width)
        return max(1, self.pulse_cycles // cycles_per_access)

    @property
    def idle_insts_per_pulse(self) -> int:
        """Non-memory instructions spanning one '0' pulse."""
        return self.pulse_cycles * self.width


def key_to_bits(key: int, bit_length: int) -> List[int]:
    """MSB-first bit vector of ``key`` (e.g. 0x2AAAAAAA, 32 bits)."""
    if bit_length <= 0:
        raise ConfigurationError("bit_length must be positive")
    if key < 0 or key >= (1 << bit_length):
        raise ConfigurationError(
            f"key {key:#x} does not fit in {bit_length} bits"
        )
    return [(key >> (bit_length - 1 - i)) & 1 for i in range(bit_length)]


def covert_sender_trace(
    key_bits: Sequence[int],
    config: CovertChannelConfig = CovertChannelConfig(),
) -> MemoryTrace:
    """Build the Algorithm-1 sender trace for a bit vector.

    The line pointer advances monotonically through the buffer across
    pulses (``NextCacheLine`` in the pseudocode), wrapping at the end,
    so every access inside a pulse is a fresh-line miss.
    """
    if not key_bits:
        raise ConfigurationError("key_bits must not be empty")
    if any(b not in (0, 1) for b in key_bits):
        raise ConfigurationError("key_bits must contain only 0/1")

    records: List[TraceRecord] = []
    next_line = 0
    total_lines = config.buffer_bytes // config.line_bytes
    # A single hot line used by the idle spin loop: it stays L1
    # resident after the first touch and generates no memory traffic.
    spin_address = config.base_address + config.buffer_bytes

    for bit in key_bits:
        if bit:
            for _ in range(config.accesses_per_pulse):
                address = config.base_address + next_line * config.line_bytes
                next_line = (next_line + 1) % total_lines
                records.append(
                    TraceRecord(
                        nonmem_insts=config.access_gap_insts,
                        address=address,
                        is_write=True,
                    )
                )
        else:
            records.append(
                TraceRecord(
                    nonmem_insts=config.idle_insts_per_pulse,
                    address=spin_address,
                    is_write=False,
                )
            )
    return MemoryTrace(records, name="covert-sender")
